#!/usr/bin/env python3
"""Quickstart: build an S-Node representation and query it.

Walks the whole public API in five minutes:

1. generate a synthetic Web repository (the WebBase stand-in),
2. build the S-Node representation (partition refinement -> numbering ->
   compressed graphs on disk),
3. read adjacency lists back through the store,
4. compare its size against the baseline representations,
5. run one of the paper's complex queries.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.baselines import (
    FlatFileRepresentation,
    HuffmanRepresentation,
    Link3Representation,
    SNodeRepresentation,
)
from repro.index import PageRankIndex, TextIndex
from repro.query import QueryEngine, query1_referred_universities
from repro.snode import BuildOptions, build_snode
from repro.webdata import generate_web


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="snode-quickstart-"))

    # 1. A synthetic Web crawl: 5000 pages with realistic link structure
    #    (link copying, host locality, directory-shaped URLs, topical text).
    print("generating repository ...")
    repository = generate_web(num_pages=5000, seed=42)
    print(
        f"  {repository.num_pages} pages, {repository.num_links} links, "
        f"{len(repository.domains())} domains"
    )

    # 2. Build the S-Node representation.
    print("building S-Node representation ...")
    build = build_snode(repository, workdir / "snode", BuildOptions())
    print(
        f"  {build.model.num_supernodes} supernodes, "
        f"{build.model.num_superedges} superedges "
        f"({build.model.negative_count} stored as negative graphs)"
    )
    print(f"  {build.bits_per_edge:.2f} bits/edge on disk")

    # 3. Random access: adjacency lists come back exactly as in the graph.
    page = repository.pages_in_domain("stanford.edu")[0]
    neighbors = build.translate_out(page)
    print(f"  page {page} ({repository.page(page).url}) links to {len(neighbors)} pages")
    assert neighbors == repository.graph.successors_list(page)

    # 4. Size comparison against the paper's baselines.
    print("comparing against baseline representations ...")
    huffman = HuffmanRepresentation(repository.graph)
    link3 = Link3Representation(repository, workdir / "link3")
    flat = FlatFileRepresentation(repository.graph, workdir / "flat")
    for representation in (
        SNodeRepresentation(build),
        link3,
        huffman,
        flat,
    ):
        print(f"  {representation.name:14s} {representation.bits_per_edge():6.2f} bits/edge")

    # 5. One complex query (Analysis 1 of the paper).
    print("running Analysis 1 (referred universities) on S-Node ...")
    backward = build_snode(
        repository, workdir / "snode_t", BuildOptions(transpose=True)
    )
    engine = QueryEngine(
        repository,
        TextIndex(repository),
        PageRankIndex(repository),
        SNodeRepresentation(build),
        SNodeRepresentation(backward),
    )
    result = query1_referred_universities(engine)
    print(f"  navigation took {result.navigation_seconds * 1000:.2f} ms")
    for domain, weight in result.payload["domains"][:5]:
        print(f"  {domain:20s} weight {weight:.3f}")

    link3.close()
    flat.close()
    build.store.close()
    backward.store.close()
    print(f"artifacts left under {workdir}")


if __name__ == "__main__":
    main()
