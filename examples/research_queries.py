#!/usr/bin/env python3
"""All six complex queries from the paper's Table 3 on one repository.

This is the workload the paper's introduction motivates: focused,
expressive queries that mix text predicates, PageRank and graph
navigation.  The script builds the S-Node representation (forward and
backlink), runs each query, and prints both the answers and the
navigation statistics (time + how many intranode/superedge graphs were
loaded — the paper's section 4.3 instrumentation).

Run:  python examples/research_queries.py [num_pages]
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

from repro.baselines import SNodeRepresentation
from repro.index import PageRankIndex, TextIndex
from repro.query import QueryEngine
from repro.query.workload import PAPER_QUERIES
from repro.snode import BuildOptions, build_snode
from repro.webdata import generate_web


def describe(name: str, payload: dict) -> list[str]:
    """Human-readable summary lines for each query's payload."""
    if name == "query1":
        return [
            f"    {domain:24s} weight {weight:.3f}"
            for domain, weight in payload["domains"][:5]
        ]
    if name == "query2":
        return [
            f"    {comic:12s} C1={stats['c1_word_pages']:3d} "
            f"C2={stats['c2_links']:3d} popularity={stats['popularity']}"
            for comic, stats in payload["popularity"].items()
        ]
    if name == "query3":
        return [
            f"    root set {payload['roots']} pages -> "
            f"base set {payload['base_set_size']} pages"
        ]
    if name == "query4":
        lines = []
        for university, pages in payload["by_university"].items():
            top = ", ".join(f"#{p}({c} in-links)" for p, c in pages[:3])
            lines.append(f"    {university:14s} {top or '(no matches)'}")
        return lines
    if name == "query5":
        return [
            f"    {len(payload['top'])} ranked .edu pages "
            f"from a {payload['set_size']}-page phrase set"
        ]
    if name == "query6":
        return [
            f"    S1={payload['set_a']} pages, S2={payload['set_b']} pages, "
            f"jointly-referenced targets: {len(payload['result'])}"
        ]
    return []


def main() -> None:
    num_pages = int(sys.argv[1]) if len(sys.argv) > 1 else 8000
    workdir = Path(tempfile.mkdtemp(prefix="snode-queries-"))

    print(f"generating {num_pages}-page repository ...")
    repository = generate_web(num_pages=num_pages, seed=7)

    print("building S-Node representations (WG and WGT) ...")
    forward = build_snode(repository, workdir / "fwd", BuildOptions())
    backward = build_snode(
        repository, workdir / "bwd", BuildOptions(transpose=True)
    )
    engine = QueryEngine(
        repository,
        TextIndex(repository),
        PageRankIndex(repository),
        SNodeRepresentation(forward),
        SNodeRepresentation(backward),
    )

    for name, query_fn in PAPER_QUERIES:
        forward.store.stats.reset()
        backward.store.stats.reset()
        result = query_fn(engine)
        intranode_f, superedge_f = forward.store.stats.distinct_loaded()
        intranode_b, superedge_b = backward.store.stats.distinct_loaded()
        print(
            f"\n{name}: navigation {result.navigation_seconds * 1000:.2f} ms, "
            f"loaded {intranode_f + intranode_b} intranode + "
            f"{superedge_f + superedge_b} superedge graphs"
        )
        for line in describe(name, result.payload):
            print(line)

    forward.store.close()
    backward.store.close()


if __name__ == "__main__":
    main()
