#!/usr/bin/env python3
"""End-to-end repository pipeline: crawl stream -> prefix datasets ->
S-Node builds -> integrity check.

Models how a Web repository operates over time (paper section 4's
experimental setup): the crawler appends pages to a bulk stream; analysts
cut crawl-prefix datasets off the front of the stream; each dataset gets
its own S-Node representation; and representations are verified after
being copied around.

Run:  python examples/repository_pipeline.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.snode.pair import SNodePair
from repro.snode.verify import verify_snode
from repro.webdata import generate_web
from repro.webdata.webbase import read_repository, write_stream


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="snode-pipeline-"))

    # The crawler's output: one bulk stream for the whole crawl.
    print("crawling (synthetically) ...")
    crawl = generate_web(num_pages=6000, seed=21)
    stream_path = workdir / "crawl.webbase"
    stream_bytes = write_stream(crawl, stream_path)
    print(
        f"  bulk stream: {stream_bytes / 1024:.0f} KiB for "
        f"{crawl.num_pages} pages ({8 * stream_bytes / crawl.num_links:.1f} "
        "bits/link incl. text)"
    )

    # Analysts cut crawl prefixes straight off the stream (the paper's
    # 25/50/75/100/115M-page datasets, scaled).
    for fraction in (0.5, 1.0):
        num_pages = int(crawl.num_pages * fraction)
        dataset = read_repository(stream_path, limit=num_pages)
        print(f"\ndataset: first {num_pages} pages "
              f"({dataset.num_links} links after prefix cut)")

        # Each dataset gets forward + backlink S-Node builds.
        root = workdir / f"snode_{num_pages}"
        with SNodePair.build(dataset, root) as pair:
            wg_bits, wgt_bits = pair.total_bits_per_edge()
            print(f"  WG  {wg_bits:5.2f} bits/edge   WGT {wgt_bits:5.2f} bits/edge")

            # Spot-check adjacency in both directions.
            probe = num_pages // 2
            assert pair.out_neighbors(probe) == dataset.graph.successors_list(probe)

        # Operator-side integrity check after the build is on disk.
        for direction in ("wg", "wgt"):
            report = verify_snode(root / direction)
            status = "OK" if report.ok else f"PROBLEMS: {report.problems[:2]}"
            print(f"  verify {direction}: {report.graphs_checked} graphs ... {status}")

    print(f"\nartifacts left under {workdir}")


if __name__ == "__main__":
    main()
