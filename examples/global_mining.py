#!/usr/bin/env python3
"""Global/bulk-access mining on a compressed in-memory Web graph.

The paper's other headline use case: because the S-Node representation is
so compact, "large Web graphs [can] be completely loaded into reasonable
amounts of main memory, speeding up complex graph computations and mining
tasks" — PageRank, strongly connected components, HITS over a topic
community.

The script loads the whole S-Node representation into memory (a big
buffer), streams it once to materialize the graph, and runs the classic
global computations the paper lists in section 1.2.

Run:  python examples/global_mining.py [num_pages]
"""

from __future__ import annotations

import sys
import tempfile
import time
from pathlib import Path

from repro.graph.algorithms import (
    hits,
    kleinberg_base_set,
    pagerank,
    strongly_connected_components,
)
from repro.graph.communities import effective_diameter, trawl_bipartite_cores
from repro.index import TextIndex
from repro.snode import BuildOptions, build_snode
from repro.webdata import generate_web


def main() -> None:
    num_pages = int(sys.argv[1]) if len(sys.argv) > 1 else 6000
    workdir = Path(tempfile.mkdtemp(prefix="snode-mining-"))

    print(f"generating {num_pages}-page repository ...")
    repository = generate_web(num_pages=num_pages, seed=13)

    print("building S-Node representation ...")
    build = build_snode(
        repository, workdir / "snode", BuildOptions(buffer_bytes=1 << 30)
    )
    print(
        f"  {build.bits_per_edge:.2f} bits/edge -> the whole graph is "
        f"{build.manifest['payload_bytes'] / 1024:.0f} KiB on disk"
    )

    # Bulk access: stream every adjacency list out of the store once.
    print("streaming the compressed graph into memory ...")
    start = time.perf_counter()
    graph = build.store.load_digraph()
    elapsed = time.perf_counter() - start
    print(
        f"  decoded {graph.num_edges} edges in {elapsed:.2f}s "
        f"({elapsed * 1e9 / max(1, graph.num_edges):.0f} ns/edge)"
    )

    # Global computation 1: PageRank.
    start = time.perf_counter()
    scores = pagerank(graph)
    print(f"PageRank converged in {time.perf_counter() - start:.2f}s")
    top = scores.argsort()[-5:][::-1]
    for new_id in top:
        old_id = build.numbering.new_to_old[int(new_id)]
        print(f"  {scores[new_id]:.5f}  {repository.page(old_id).url}")

    # Global computation 2: strongly connected components.
    start = time.perf_counter()
    components = strongly_connected_components(graph)
    largest = max(len(c) for c in components)
    print(
        f"SCC: {len(components)} components, largest {largest} pages "
        f"({time.perf_counter() - start:.2f}s)"
    )

    # Global computation 3: Web-graph diameter (sampled effective).
    start = time.perf_counter()
    diameter = effective_diameter(graph, percentile=0.9, samples=32)
    print(
        f"effective diameter (90th pct): {diameter:.1f} hops "
        f"({time.perf_counter() - start:.2f}s)"
    )

    # Global computation 4: community trawling (Kumar et al., the paper's
    # reference [15]) — (3,3) bipartite cores.
    start = time.perf_counter()
    cores = trawl_bipartite_cores(graph, fans=3, centers=3, max_cores=20)
    print(
        f"trawling: {len(cores)} (3,3)-cores found "
        f"({time.perf_counter() - start:.2f}s)"
    )
    if cores:
        core = cores[0]
        fan_url = repository.page(build.numbering.new_to_old[core.fans[0]]).url
        print(f"  example core: {len(core.fans)} fans incl. {fan_url}")

    # Global computation 5: HITS over a topic community.
    text = TextIndex(repository)
    roots_old = list(text.pages_with_phrase(["internet", "censorship"]))[:50]
    roots_new = [build.numbering.old_to_new[p] for p in roots_old]
    base = kleinberg_base_set(graph, graph.transpose(), roots_new)
    authority, _hub = hits(graph, graph.transpose(), sorted(base))
    best = sorted(authority.items(), key=lambda kv: -kv[1])[:3]
    print(f"HITS over a {len(base)}-page base set; top authorities:")
    for new_id, score in best:
        old_id = build.numbering.new_to_old[new_id]
        print(f"  {score:.3f}  {repository.page(old_id).url}")

    build.store.close()


if __name__ == "__main__":
    main()
