#!/usr/bin/env python3
"""Compression anatomy of one S-Node build.

Prints where every byte of the representation goes — supernode graph,
pointers, PageID index, intranode graphs, positive/negative superedge
graphs — and how the structure responds to the paper's design knobs
(reference encoding on/off, positive/negative superedge choice on/off).

Run:  python examples/compression_report.py [num_pages]
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

from repro.snode import BuildOptions, build_snode
from repro.snode.encode import supernode_graph_size_bytes
from repro.webdata import generate_web


def report(label: str, build) -> None:
    manifest = build.manifest
    supernode_bytes = supernode_graph_size_bytes(build.model)
    total = manifest["payload_bytes"] + supernode_bytes + manifest["pageid_bytes"]
    intra_edges = sum(
        len(row) for rows in build.model.intranode for row in rows
    )
    print(f"\n== {label} ==")
    print(f"  supernodes            {build.model.num_supernodes:10d}")
    print(f"  superedges            {build.model.num_superedges:10d}"
          f"  ({build.model.negative_count} negative)")
    print(f"  intranode graphs      {manifest['intranode_bytes']:10d} B"
          f"  ({intra_edges} edges)")
    print(f"  superedge graphs      {manifest['superedge_bytes']:10d} B"
          f"  ({build.total_edges() - intra_edges} edges)")
    print(f"  supernode graph+ptrs  {supernode_bytes:10d} B")
    print(f"  PageID index          {manifest['pageid_bytes']:10d} B")
    print(f"  TOTAL                 {total:10d} B"
          f"  = {build.bits_per_edge:.2f} bits/edge")


def main() -> None:
    num_pages = int(sys.argv[1]) if len(sys.argv) > 1 else 6000
    workdir = Path(tempfile.mkdtemp(prefix="snode-anatomy-"))

    print(f"generating {num_pages}-page repository ...")
    repository = generate_web(num_pages=num_pages, seed=3)

    full = build_snode(repository, workdir / "full", BuildOptions())
    report("full S-Node (paper configuration)", full)

    no_reference = build_snode(
        repository,
        workdir / "noref",
        BuildOptions(
            reference_window=0, full_affinity_limit=0, use_dictionary=False
        ),
    )
    report("reference encoding disabled", no_reference)

    always_positive = build_snode(
        repository,
        workdir / "pos",
        BuildOptions(force_positive_superedges=True),
    )
    report("positive/negative choice disabled", always_positive)

    saved = (
        no_reference.manifest["payload_bytes"] - full.manifest["payload_bytes"]
    )
    print(
        f"\nreference encoding saves {saved} bytes "
        f"({100 * saved / max(1, no_reference.manifest['payload_bytes']):.1f}% "
        "of the unreferenced payload)"
    )
    for build in (full, no_reference, always_positive):
        build.store.close()


if __name__ == "__main__":
    main()
