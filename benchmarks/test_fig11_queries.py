"""Figure 11: the six complex queries across four representations under a
fixed memory bound (simulated 2001-era disk; see the experiment module).

Asserts the paper's two headline claims:

* S-Node is the fastest scheme on every query;
* the flat uncompressed file is the worst scheme overall.
"""

from __future__ import annotations

from repro.experiments import queries
from repro.experiments.queries import SCHEMES
from repro.query.workload import PAPER_QUERIES


def test_fig11_query_navigation(benchmark):
    experiment = benchmark.pedantic(
        queries.run, kwargs={"trials": 2}, rounds=1, iterations=1
    )
    print("\n" + queries.report(experiment))

    for query_name, _fn in PAPER_QUERIES:
        times = {
            scheme: experiment.timings[(scheme, query_name)].simulated_ms
            for scheme in SCHEMES
        }
        # S-Node wins every query (paper: "clearly outperforms ... for all
        # six queries").
        assert times["s-node"] == min(times.values()), (query_name, times)
    # Flat file is the worst scheme in aggregate (paper: "consistently the
    # uncompressed adjacency list file representation performs the worst").
    totals = {
        scheme: sum(
            experiment.timings[(scheme, name)].simulated_ms
            for name, _fn in PAPER_QUERIES
        )
        for scheme in SCHEMES
    }
    assert totals["flat-file"] == max(totals.values()), totals
    # The paper reports >70 % reduction vs next best for every query; at
    # our scale require a meaningful (>25 %) aggregate advantage.
    reductions = experiment.reduction_vs_next_best()
    assert sum(reductions.values()) / len(reductions) > 25.0, reductions
