"""Ablation benches for the design choices DESIGN.md calls out:
positive/negative superedge choice, reference encoding, split policy.
"""

from __future__ import annotations

from repro.experiments import ablations


def test_ablation_design_choices(benchmark):
    rows = benchmark.pedantic(ablations.run, rounds=1, iterations=1)
    print("\n" + ablations.report(rows))

    by_name = {row.configuration: row for row in rows}
    full = by_name["full S-Node"]
    # Removing reference encoding must not shrink the representation.
    assert full.payload_bytes <= by_name["no reference encoding"].payload_bytes
    # Forcing positive superedges must not shrink it either (the pos/neg
    # choice only ever picks the smaller encoding).
    assert full.payload_bytes <= by_name["always-positive superedges"].payload_bytes * 1.001
    assert by_name["always-positive superedges"].negative_superedges == 0
    # Paper section 3.2: random vs largest-first policies are comparable.
    largest = by_name["largest-first split policy"]
    assert 0.5 <= full.bits_per_edge / largest.bits_per_edge <= 2.0
