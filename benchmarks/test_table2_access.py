"""Table 2: sequential and random in-memory access times (ns/edge).

Asserts the paper's decode-speed ordering: the simple Huffman scheme is
the fastest random access; the structured schemes pay a decode premium,
and sequential access is cheaper than random for every scheme.
"""

from __future__ import annotations

from repro.experiments import access_time


def test_table2_access_times(benchmark):
    rows, _histograms = benchmark.pedantic(access_time.run, rounds=1, iterations=1)
    print("\n" + access_time.report(rows))

    by_name = {row.scheme: row for row in rows}
    huffman = by_name["plain-huffman"]
    link3 = by_name["link3"]
    snode = by_name["s-node"]
    # Paper: "the simple Huffman encoding scheme is clearly easier to
    # decode, significantly outperforming both Link3 and S-Node".
    assert huffman.random_ns_per_edge < link3.random_ns_per_edge
    assert huffman.random_ns_per_edge < snode.random_ns_per_edge
    # Sequential access is never slower than random for the same scheme.
    for row in rows:
        assert row.sequential_ns_per_edge <= row.random_ns_per_edge * 1.25
