"""Table 1: bits/edge for Plain Huffman, Link3 and S-Node on WG and WGT,
plus the "maximum repository in 8 GB" extrapolation.

Asserts the paper's compression ordering: the two structured schemes beat
plain Huffman decisively, and S-Node is competitive with (at full scale,
ahead of) Link3.
"""

from __future__ import annotations

from repro.experiments import compression


def test_table1_compression(benchmark):
    rows, mean_degree = benchmark.pedantic(compression.run, rounds=1, iterations=1)
    print("\n" + compression.report(rows, mean_degree))

    by_name = {row.scheme: row for row in rows}
    huffman = by_name["plain-huffman"]
    link3 = by_name["link3"]
    snode = by_name["s-node"]
    # Paper Table 1 shape: Huffman ~15 bits/edge, the others far below.
    assert snode.bits_per_edge_wg < 0.75 * huffman.bits_per_edge_wg
    assert link3.bits_per_edge_wg < 0.75 * huffman.bits_per_edge_wg
    # S-Node within a whisker of Link3 (ahead at full scale).
    assert snode.bits_per_edge_wg < 1.1 * link3.bits_per_edge_wg
    # The 8 GB extrapolation follows the same ordering.
    assert snode.max_pages_wg > huffman.max_pages_wg
    # All schemes also compress the transpose.
    for row in rows:
        assert 0 < row.bits_per_edge_wgt < 64
