"""Figures 9(a), 9(b), 10: supernode-graph growth vs repository size.

Regenerates the paper's scalability plots and asserts their headline
claim: supernode/superedge counts grow *sublinearly* in repository size.
"""

from __future__ import annotations

from repro.experiments import scalability
from repro.experiments.harness import sweep_sizes


def test_fig9_fig10_scalability(benchmark):
    points = benchmark.pedantic(
        scalability.run, args=(sweep_sizes(),), rounds=1, iterations=1
    )
    print("\n" + scalability.report(points))

    input_ratio = points[-1].num_pages / points[0].num_pages
    supernode_ratio = points[-1].num_supernodes / points[0].num_supernodes
    superedge_ratio = points[-1].num_superedges / points[0].num_superedges
    # Figure 9: sublinear growth of both curves.
    assert supernode_ratio < input_ratio
    assert superedge_ratio < input_ratio
    # Figure 10: the supernode graph stays a small fraction of the input
    # (paper: <90 MB for 115M pages ~ under 1 byte/page).
    assert points[-1].supernode_graph_bytes < 24 * points[-1].num_pages
    # Monotone growth sanity.
    counts = [p.num_supernodes for p in points]
    assert counts == sorted(counts)
