"""Figure 12: navigation time vs buffer size for queries 1, 5, 6.

Asserts the paper's shape for every swept representation (S-Node and the
relational baseline, through the one ``set_buffer_bytes()`` protocol):
each curve falls (or stays flat) as the buffer grows and flattens once
the query's working set fits.
"""

from __future__ import annotations

from repro.experiments import buffer_sweep


def test_fig12_buffer_sweep(benchmark):
    points = benchmark.pedantic(
        buffer_sweep.run, kwargs={"trials": 2}, rounds=1, iterations=1
    )
    print("\n" + buffer_sweep.report(points))

    by_curve: dict[tuple[str, str], dict[int, float]] = {}
    for point in points:
        by_curve.setdefault((point.scheme, point.query), {})[
            point.buffer_kb
        ] = point.simulated_ms
    assert {scheme for scheme, _query in by_curve} == {"s-node", "relational"}
    for (scheme, query), curve in by_curve.items():
        sizes = sorted(curve)
        first, last = curve[sizes[0]], curve[sizes[-1]]
        # Large buffers never lose to tiny ones (allowing wall-clock noise).
        assert last <= first * 1.3 + 2.0, (scheme, query, curve)
        # Flattening: the final two points are close to each other.
        second_last = curve[sizes[-2]]
        assert abs(last - second_last) <= max(0.35 * max(last, second_last), 2.0), (
            scheme,
            query,
            curve,
        )
