"""Benchmark-suite configuration.

The benchmarks regenerate every table and figure of the paper.  Unless the
caller pins ``REPRO_SCALE`` explicitly, the suite runs at half scale
(master repository of 10 000 pages) so a full ``pytest benchmarks/
--benchmark-only`` pass completes in minutes; set ``REPRO_SCALE=1`` (or
higher) for the full-size runs recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

import os

os.environ.setdefault("REPRO_SCALE", "0.5")
