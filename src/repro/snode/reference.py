"""Reference encoding of adjacency-list collections (paper section 3.1).

A *row collection* is an ordered list of adjacency lists over a common
target space ``0..target_space-1`` (local indices inside an intranode or
superedge graph).  Each row is stored either

* **directly** — gamma-coded length followed by gamma-coded gaps, or
* **by reference** to another row x — the reference's position, a copy
  bit vector over adj(x) (RLE or plain, whichever is smaller), and the
  extra entries not present in adj(x), gap-coded.

Which rows reference which is decided through the Adler–Mitzenmacher
affinity graph: a directed graph with an edge x -> y weighted by the bit
cost of encoding row y from row x, plus a root whose edge to y costs the
direct encoding; the optimal assignment is a minimum-weight spanning
arborescence rooted at the root, computed with Chu-Liu/Edmonds.

Because the full affinity graph is quadratic, collections larger than
``full_affinity_limit`` fall back to windowed candidates (each row may only
reference one of the previous ``window`` rows — the regime Link3 and
WebGraph operate in).  Windowed candidate sets are acyclic by construction,
so the arborescence degenerates to a per-row minimum, which is what the
fast path computes.

Decoded rows are plain ``list[int]`` (sorted).  Reference chains may point
forward in the full-affinity mode; decoding resolves them iteratively.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.errors import CodecError
from repro.util.bitio import BitReader, BitWriter
from repro.util.rle import bitvector_cost, decode_bitvector, encode_bitvector
from repro.util.varint import decode_gamma, encode_gamma, gamma_cost

#: Above this many rows the encoder switches from the full affinity graph
#: (exact Edmonds arborescence) to windowed candidate references.
DEFAULT_FULL_AFFINITY_LIMIT = 96

#: How many preceding rows are tried as references in windowed mode.
DEFAULT_WINDOW = 8


# ---------------------------------------------------------------------------
# cost model
# ---------------------------------------------------------------------------


def _gaps_cost(row: Sequence[int]) -> int:
    """Bits for the gamma-gap body of ``row``."""
    cost = gamma_cost(len(row))
    previous = -1
    for value in row:
        cost += gamma_cost(value - previous - 1)
        previous = value
    return cost


def _row_bits(row: Sequence[int]) -> list[int]:
    """Characteristic bit vector of ``row`` up to its largest entry."""
    if not row:
        return []
    bits = [0] * (row[-1] + 1)
    for value in row:
        bits[value] = 1
    return bits


def direct_cost(row: Sequence[int]) -> int:
    """Bits to encode ``row`` directly.

    Direct rows adaptively use whichever body is smaller: gamma-coded gaps
    (sparse rows) or an RLE/plain bit vector over the row's span (dense
    rows, e.g. navigation pages linking to a whole directory) — the
    paper's "RLE bit vectors or gap encoding" choice.  Layout: flag bit
    (direct) + mode bit + body.
    """
    gaps = _gaps_cost(row)
    vector = bitvector_cost(_row_bits(row)) if row else gaps + 1
    return 2 + min(gaps, vector)


def _reference_parts(
    row: Sequence[int], reference_row: Sequence[int]
) -> tuple[list[int], list[int]]:
    """Split ``row`` into (copy bits over reference_row, extra entries)."""
    row_set = set(row)
    copy_bits = [1 if value in row_set else 0 for value in reference_row]
    referenced = {
        value for value, bit in zip(reference_row, copy_bits) if bit
    }
    extras = [value for value in row if value not in referenced]
    return copy_bits, extras


def reference_cost(
    row: Sequence[int], reference_row: Sequence[int], distance: int
) -> int:
    """Bits to encode ``row`` referencing a row ``distance`` away."""
    cost = 1  # flag
    cost += gamma_cost(distance - 1) + 1  # distance (>=1) and direction bit
    cost += _reference_body_cost(row, reference_row)
    return cost


def _reference_body_cost(row: Sequence[int], reference_row: Sequence[int]) -> int:
    """Full-copy flag + (copy bit vector when not a full copy) + extras.

    Identical consecutive rows are the common case in superedge graphs
    (every page of a directory carrying the same external links), so a
    one-bit "copy everything" fast path pays for itself many times over.
    """
    copy_bits, extras = _reference_parts(row, reference_row)
    full_copy = all(copy_bits) if copy_bits else False
    cost = 1  # full-copy flag
    if not full_copy:
        cost += bitvector_cost(copy_bits)
    cost += gamma_cost(len(extras))
    previous = -1
    for value in extras:
        cost += gamma_cost(value - previous - 1)
        previous = value
    return cost


# ---------------------------------------------------------------------------
# Chu-Liu/Edmonds minimum spanning arborescence
# ---------------------------------------------------------------------------


def minimum_arborescence(
    num_nodes: int, edges: Sequence[tuple[int, int, float]], root: int
) -> dict[int, int]:
    """Chu-Liu/Edmonds: min-weight spanning arborescence rooted at ``root``.

    ``edges`` are ``(source, target, weight)`` triples.  Returns a mapping
    ``node -> parent`` for every node except the root.  Raises
    :class:`CodecError` if some node is unreachable from the root.
    """
    nodes = list(range(num_nodes))
    # Work on a mutable copy; contraction introduces fresh node ids.
    current_edges = [(s, t, w) for s, t, w in edges if t != root and s != t]
    current_nodes = set(nodes)
    next_id = num_nodes
    # Track, per contraction level, how to expand cycles back out.
    expansions: list[tuple[int, dict[int, int], dict[tuple[int, int, float], tuple[int, int, float]]]] = []

    while True:
        best_in: dict[int, tuple[int, int, float]] = {}
        for source, target, weight in current_edges:
            if target == root or target not in current_nodes:
                continue
            incumbent = best_in.get(target)
            if incumbent is None or weight < incumbent[2]:
                best_in[target] = (source, target, weight)
        for node in current_nodes:
            if node != root and node not in best_in:
                raise CodecError(f"node {node} unreachable from arborescence root")
        # Detect a cycle in the best-incoming-edge graph.
        cycle = _find_cycle(best_in, current_nodes, root)
        if cycle is None:
            parents = {t: s for t, (s, _, _) in best_in.items()}
            # Expand contractions from innermost to outermost.
            for super_node, cycle_parents, edge_origin in reversed(expansions):
                entering_parent = parents.pop(super_node)
                # Which original edge entered the cycle?
                entry = edge_origin[(entering_parent, super_node, _WEIGHT_SENTINEL)]
                entry_source, entry_target, _ = entry
                for member, member_parent in cycle_parents.items():
                    if member != entry_target:
                        parents[member] = member_parent
                parents[entry_target] = entry_source
                # Re-route edges that previously left the super node.
                for node, parent in list(parents.items()):
                    if parent == super_node:
                        leaving = edge_origin[(super_node, node, _WEIGHT_SENTINEL)]
                        parents[node] = leaving[0]
            return parents
        # Contract the cycle into a fresh super node.
        cycle_set = set(cycle)
        cycle_parents = {node: best_in[node][0] for node in cycle}
        cycle_cost = {node: best_in[node][2] for node in cycle}
        super_node = next_id
        next_id += 1
        new_edges: list[tuple[int, int, float]] = []
        edge_origin: dict[tuple[int, int, float], tuple[int, int, float]] = {}
        best_entering: dict[int, tuple[float, tuple[int, int, float]]] = {}
        best_leaving: dict[int, tuple[float, tuple[int, int, float]]] = {}
        for source, target, weight in current_edges:
            in_source = source in cycle_set
            in_target = target in cycle_set
            if in_source and in_target:
                continue
            if in_target:
                adjusted = weight - cycle_cost[target]
                incumbent = best_entering.get(source)
                if incumbent is None or adjusted < incumbent[0]:
                    best_entering[source] = (adjusted, (source, target, weight))
            elif in_source:
                incumbent = best_leaving.get(target)
                if incumbent is None or weight < incumbent[0]:
                    best_leaving[target] = (weight, (source, target, weight))
            else:
                new_edges.append((source, target, weight))
        for source, (adjusted, original) in best_entering.items():
            new_edges.append((source, super_node, adjusted))
            edge_origin[(source, super_node, _WEIGHT_SENTINEL)] = original
        for target, (weight, original) in best_leaving.items():
            new_edges.append((super_node, target, weight))
            edge_origin[(super_node, target, _WEIGHT_SENTINEL)] = original
        expansions.append((super_node, cycle_parents, edge_origin))
        current_nodes = (current_nodes - cycle_set) | {super_node}
        current_edges = new_edges


_WEIGHT_SENTINEL = float("nan")  # weights are keyed out of edge_origin lookups


def _find_cycle(
    best_in: dict[int, tuple[int, int, float]],
    nodes: set[int],
    root: int,
) -> list[int] | None:
    """Find a cycle in the parent-pointer graph, or None."""
    color = {node: 0 for node in nodes}  # 0 unvisited, 1 in progress, 2 done
    for start in nodes:
        if start == root or color[start] == 2:
            continue
        path: list[int] = []
        node = start
        while True:
            if node == root or color.get(node, 2) == 2:
                break
            if color[node] == 1:
                return path[path.index(node) :]
            color[node] = 1
            path.append(node)
            entry = best_in.get(node)
            if entry is None:
                break
            node = entry[0]
        for visited in path:
            color[visited] = 2
    return None


# ---------------------------------------------------------------------------
# reference assignment
# ---------------------------------------------------------------------------


#: Plan parent value meaning "reference the shared dictionary row".
DICTIONARY_PARENT = -2


@dataclass(frozen=True)
class EncodingPlan:
    """Per-row decisions: ``parents[i]`` is a row index, -1 for direct, or
    :data:`DICTIONARY_PARENT` for a dictionary reference.

    ``used_dictionary`` records whether dictionary mode won the cost
    comparison — when False the caller must serialize an empty dictionary
    (dictionary mode adds one flag bit to every referenced row, so it only
    pays off when enough rows actually use it).
    """

    parents: list[int]
    total_bits: int
    used_dictionary: bool = False


def build_dictionary(
    rows: Sequence[Sequence[int]], max_entries: int = 128
) -> list[int]:
    """Targets appearing in two or more rows, sorted ascending (capped).

    Superedge graphs are dominated by one-or-two-entry rows repeating the
    same few popular targets (a site's recurring external references); a
    shared dictionary row lets each such row be a cheap copy-bit-vector
    reference instead of re-coding the target.
    """
    counts: dict[int, int] = {}
    for row in rows:
        for value in row:
            counts[value] = counts.get(value, 0) + 1
    frequent = [value for value, count in counts.items() if count >= 2]
    if len(frequent) > max_entries:
        frequent.sort(key=lambda v: -counts[v])
        frequent = frequent[:max_entries]
    return sorted(frequent)


def plan_references(
    rows: Sequence[Sequence[int]],
    window: int = DEFAULT_WINDOW,
    full_affinity_limit: int = DEFAULT_FULL_AFFINITY_LIMIT,
    dictionary: Sequence[int] | None = None,
) -> EncodingPlan:
    """Choose a reference parent for every row.

    With a ``dictionary``, every row additionally considers referencing it
    (cost includes the extra flag bit each referenced row then carries).
    """
    m = len(rows)
    if m == 0:
        return EncodingPlan(parents=[], total_bits=0)
    direct = [direct_cost(row) for row in rows]
    if m <= full_affinity_limit:
        plan = _plan_full(rows, direct)
    else:
        plan = _plan_windowed(rows, direct, window)
    if not dictionary:
        return plan
    parents = list(plan.parents)
    total = 0
    for y, row in enumerate(rows):
        parent = parents[y]
        if parent == -1:
            current = direct[y]
        else:
            # Row references add one dictionary-flag bit in this mode.
            current = 1 + reference_cost(row, rows[parent], abs(y - parent))
        if row:
            dictionary_cost = 2 + _dictionary_body_cost(row, dictionary)
            if dictionary_cost < current:
                parents[y] = DICTIONARY_PARENT
                current = dictionary_cost
        total += current
    # Dictionary mode also pays for serializing the dictionary itself.
    dictionary_overhead = gamma_cost(len(dictionary))
    previous = -1
    for value in dictionary:
        dictionary_overhead += gamma_cost(value - previous - 1)
        previous = value
    if total + dictionary_overhead >= plan.total_bits:
        return plan
    return EncodingPlan(parents=parents, total_bits=total, used_dictionary=True)


def _dictionary_parts(
    row: Sequence[int], dictionary: Sequence[int]
) -> tuple[list[int], list[int]]:
    """(ascending dictionary indexes used, extra entries) for ``row``."""
    positions = {value: index for index, value in enumerate(dictionary)}
    indexes = sorted(positions[v] for v in row if v in positions)
    member = set(dictionary)
    extras = [v for v in row if v not in member]
    return indexes, extras


def _dictionary_body_cost(row: Sequence[int], dictionary: Sequence[int]) -> int:
    """Dictionary-reference body: full-copy flag or index list, plus extras.

    Rows typically use one or two dictionary entries, so an index list
    (minimal-binary positions) beats a bit vector over the whole
    dictionary; a full copy of the dictionary is one bit.
    """
    indexes, extras = _dictionary_parts(row, dictionary)
    if len(indexes) == len(dictionary):
        cost = 1  # full copy
    else:
        width = max(1, (len(dictionary) - 1).bit_length())
        cost = 1 + gamma_cost(len(indexes)) + len(indexes) * width
    cost += gamma_cost(len(extras))
    previous = -1
    for value in extras:
        cost += gamma_cost(value - previous - 1)
        previous = value
    return cost




def _plan_full(
    rows: Sequence[Sequence[int]], direct: list[int]
) -> EncodingPlan:
    """Exact Adler-Mitzenmacher plan: Edmonds on the full affinity graph."""
    m = len(rows)
    root = m  # extra node
    edges: list[tuple[int, int, float]] = []
    for y in range(m):
        edges.append((root, y, float(direct[y])))
        if not rows[y]:
            continue  # empty rows never benefit from a reference
        for x in range(m):
            if x == y or not rows[x]:
                continue
            cost = reference_cost(rows[y], rows[x], abs(y - x))
            if cost < direct[y]:
                edges.append((x, y, float(cost)))
    parents_map = minimum_arborescence(m + 1, edges, root)
    parents = [-1] * m
    total = 0
    for y in range(m):
        parent = parents_map.get(y, root)
        if parent == root:
            parents[y] = -1
            total += direct[y]
        else:
            parents[y] = parent
            total += reference_cost(rows[y], rows[parent], abs(y - parent))
    return EncodingPlan(parents=parents, total_bits=total)


def _plan_windowed(
    rows: Sequence[Sequence[int]], direct: list[int], window: int
) -> EncodingPlan:
    """Greedy plan: each row picks the cheapest of (direct, prev W rows)."""
    parents = [-1] * len(rows)
    total = 0
    for y, row in enumerate(rows):
        best_cost = direct[y]
        best_parent = -1
        if row:
            for x in range(max(0, y - window), y):
                if not rows[x]:
                    continue
                cost = reference_cost(row, rows[x], y - x)
                if cost < best_cost:
                    best_cost = cost
                    best_parent = x
        parents[y] = best_parent
        total += best_cost
    return EncodingPlan(parents=parents, total_bits=total)


# ---------------------------------------------------------------------------
# serialization
# ---------------------------------------------------------------------------


def encode_rows(
    writer: BitWriter,
    rows: Sequence[Sequence[int]],
    plan: EncodingPlan | None = None,
    window: int = DEFAULT_WINDOW,
    full_affinity_limit: int = DEFAULT_FULL_AFFINITY_LIMIT,
    dictionary: Sequence[int] | None = None,
) -> EncodingPlan:
    """Encode a row collection; returns the plan that was used.

    Layout: gamma(row count), then per row either a direct or a referenced
    record as described in the module docstring.  When ``dictionary`` is
    given (superedge graphs), referenced rows carry one extra bit choosing
    between a sibling-row reference and a dictionary reference; the
    dictionary itself is serialized by the caller, not here.
    """
    if plan is None:
        plan = plan_references(rows, window, full_affinity_limit, dictionary)
    if len(plan.parents) != len(rows):
        raise CodecError("encoding plan does not match row count")
    if plan.used_dictionary and not dictionary:
        raise CodecError("plan uses a dictionary that was not given")
    # Flag-bit layout depends on whether dictionary mode is active.
    dictionary = list(dictionary) if (dictionary and plan.used_dictionary) else None
    encode_gamma(writer, len(rows))
    for y, row in enumerate(rows):
        parent = plan.parents[y]
        if parent == DICTIONARY_PARENT:
            if not dictionary:
                raise CodecError("plan references a dictionary that was not given")
            writer.write_bit(1)
            writer.write_bit(1)  # dictionary reference
            _encode_dictionary_body(writer, row, dictionary)
        elif parent < 0:
            writer.write_bit(0)
            gaps = _gaps_cost(row)
            bits = _row_bits(row)
            if row and bitvector_cost(bits) < gaps:
                writer.write_bit(1)  # dense mode: characteristic bit vector
                encode_bitvector(writer, bits)
            else:
                writer.write_bit(0)  # sparse mode: gamma gaps
                encode_gamma(writer, len(row))
                previous = -1
                for value in row:
                    encode_gamma(writer, value - previous - 1)
                    previous = value
        else:
            writer.write_bit(1)
            if dictionary:
                writer.write_bit(0)  # sibling-row reference
            distance = abs(y - parent)
            encode_gamma(writer, distance - 1)
            writer.write_bit(1 if parent < y else 0)  # 1 = backward
            _encode_reference_body(writer, row, rows[parent])
    return plan


def _encode_reference_body(
    writer: BitWriter, row: Sequence[int], reference_row: Sequence[int]
) -> None:
    """Full-copy flag, copy bit vector (unless full copy), extras."""
    copy_bits, extras = _reference_parts(row, reference_row)
    full_copy = bool(copy_bits) and all(copy_bits)
    writer.write_bit(1 if full_copy else 0)
    if not full_copy:
        encode_bitvector(writer, copy_bits)
    _encode_extras(writer, extras)


def _encode_dictionary_body(
    writer: BitWriter, row: Sequence[int], dictionary: Sequence[int]
) -> None:
    """Full-copy flag or minimal-binary index list, then extras."""
    from repro.util.varint import encode_minimal_binary

    indexes, extras = _dictionary_parts(row, dictionary)
    full_copy = len(indexes) == len(dictionary)
    writer.write_bit(1 if full_copy else 0)
    if not full_copy:
        encode_gamma(writer, len(indexes))
        for index in indexes:
            encode_minimal_binary(writer, index, len(dictionary))
    _encode_extras(writer, extras)


def _decode_dictionary_body(
    reader: BitReader, dictionary: Sequence[int]
) -> list[int]:
    """Inverse of :func:`_encode_dictionary_body`; returns the full row."""
    from repro.util.varint import decode_minimal_binary

    if reader.read_bit():  # full copy
        copied = list(dictionary)
    else:
        count = decode_gamma(reader)
        copied = [
            dictionary[decode_minimal_binary(reader, len(dictionary))]
            for _ in range(count)
        ]
    extras = _decode_extras(reader)
    return sorted(set(copied) | set(extras))


def _encode_extras(writer: BitWriter, extras: Sequence[int]) -> None:
    encode_gamma(writer, len(extras))
    previous = -1
    for value in extras:
        encode_gamma(writer, value - previous - 1)
        previous = value


def _decode_extras(reader: BitReader) -> list[int]:
    count = decode_gamma(reader)
    extras: list[int] = []
    previous = -1
    for _ in range(count):
        previous = previous + 1 + decode_gamma(reader)
        extras.append(previous)
    return extras


def decode_rows(
    reader: BitReader, dictionary: Sequence[int] | None = None
) -> list[list[int]]:
    """Decode a row collection written by :func:`encode_rows`.

    ``dictionary`` must match what the encoder was given (present for
    superedge graphs, absent for intranode graphs).
    """
    count = decode_gamma(reader)
    parsed: list[tuple[int, list[int], list[int]] | list[int]] = []
    for y in range(count):
        if reader.read_bit():
            if dictionary and reader.read_bit():
                parsed.append(_decode_dictionary_body(reader, dictionary))
                continue
            distance = decode_gamma(reader) + 1
            backward = reader.read_bit()
            parent = y - distance if backward else y + distance
            if not 0 <= parent < count:
                raise CodecError(f"row {y} references out-of-range row {parent}")
            copy_bits, extras = _decode_reference_body(reader)
            parsed.append((parent, copy_bits, extras))
        else:
            if reader.read_bit():  # dense mode
                bits = decode_bitvector(reader)
                parsed.append([i for i, bit in enumerate(bits) if bit])
            else:
                length = decode_gamma(reader)
                row: list[int] = []
                previous = -1
                for _ in range(length):
                    previous = previous + 1 + decode_gamma(reader)
                    row.append(previous)
                parsed.append(row)
    # Resolve reference chains iteratively (forward references allowed).
    resolved: list[list[int] | None] = [
        entry if isinstance(entry, list) else None for entry in parsed
    ]
    for y in range(count):
        if resolved[y] is not None:
            continue
        chain = [y]
        node = y
        while resolved[node] is None:
            parent = parsed[node][0]  # type: ignore[index]
            if parent in chain:
                raise CodecError("cyclic reference chain in encoded rows")
            chain.append(parent)
            node = parent
        for position in range(len(chain) - 2, -1, -1):
            current = chain[position]
            parent, copy_bits, extras = parsed[current]  # type: ignore[misc]
            base = resolved[parent]
            assert base is not None
            if copy_bits is None:  # full copy
                copied = list(base)
            else:
                copied = [value for value, bit in zip(base, copy_bits) if bit]
            resolved[current] = sorted(set(copied) | set(extras))
    return [row if row is not None else [] for row in resolved]


def _decode_reference_body(
    reader: BitReader,
) -> tuple[list[int] | None, list[int]]:
    """Inverse of :func:`_encode_reference_body`; None = full copy."""
    full_copy = bool(reader.read_bit())
    copy_bits = None if full_copy else decode_bitvector(reader)
    extras_count = decode_gamma(reader)
    extras: list[int] = []
    previous = -1
    for _ in range(extras_count):
        previous = previous + 1 + decode_gamma(reader)
        extras.append(previous)
    return copy_bits, extras
