"""Query-facing access to a stored S-Node representation.

An :class:`SNodeStore` mirrors the paper's runtime organization:

* the supernode graph, PageID index and domain index are loaded once and
  *pinned* in memory ("akin to the root node of B-tree indexes");
* intranode and superedge graphs are loaded and decoded on demand through
  the shared byte-budgeted buffer manager
  (:class:`repro.storage.bufferpool.BufferPool`);
* loads/unloads are tallied in the store's
  :class:`~repro.storage.metrics.MetricsRegistry` — the paper's section
  4.3 analysis ("Query 1 required access to only 8 intranode graphs and
  32 superedge graphs") is reproduced from its distinct-load counters,
  with a bounded ring-buffer event log for debugging;
* disk seeks are counted by :class:`repro.storage.device.CountedFile`: a
  read that does not continue exactly where the previous read on the same
  file ended counts as one seek, which is how the benefit of the linear
  ordering (Figure 8) becomes measurable.

**Concurrent readers.** One store may serve many threads at once: every
read method takes an optional ``registry`` so a :class:`ReadSession`
(created by :meth:`SNodeStore.session`) can attribute its hits, misses,
seeks and bytes to its own child registry while sharing the store's
buffer pool.  The serial path — calling the store directly — charges the
store's own registry and is byte-identical to the single-threaded
behaviour; shared events (evictions, quarantines) always charge the
store's base registry, so per-session numbers plus the base sum to the
shared totals.
"""

from __future__ import annotations

import bisect
import threading
from pathlib import Path

from repro.errors import CorruptionError, StorageError
from repro.obs import tracing
from repro.snode.encode import decode_intranode, decode_supernode_graph, positive_rows_from_payload
from repro.snode.storage import (
    GraphLocation,
    StorageLayout,
    read_layout,
    read_quarantine,
)
from repro.storage import integrity
from repro.storage.bufferpool import BufferPool
from repro.storage.device import CountedFile
from repro.storage.metrics import MetricsRegistry

#: Default buffer budget, a scaled analogue of the paper's 325 MB bound.
DEFAULT_BUFFER_BYTES = 8 * 1024 * 1024

# Cost model for decoded graphs held in the buffer: 8 bytes per edge entry
# plus 4 bytes per row, approximating compact array storage.
_EDGE_COST = 8
_ROW_COST = 4


class StoreStats:
    """Counter view over a store's metrics registry.

    Keeps the historical field names (``graphs_loaded``, ``disk_seeks``,
    ...) while the actual accounting lives in the shared
    :class:`~repro.storage.metrics.MetricsRegistry`; ``events`` is the
    registry's bounded ring-buffer log.
    """

    def __init__(self, registry: MetricsRegistry) -> None:
        self.registry = registry

    @property
    def graphs_loaded(self) -> int:
        """Graphs loaded from disk (intranode + superedge)."""
        return self.registry.get("loads")

    @property
    def graphs_evicted(self) -> int:
        """Graphs evicted by the buffer manager."""
        return self.registry.get("buffer_evictions")

    @property
    def intranode_loads(self) -> int:
        """Intranode graph loads."""
        return self.registry.get("intranode_loads")

    @property
    def superedge_loads(self) -> int:
        """Superedge graph loads."""
        return self.registry.get("superedge_loads")

    @property
    def bytes_read(self) -> int:
        """Payload bytes read from disk."""
        return self.registry.get("bytes_read")

    @property
    def disk_seeks(self) -> int:
        """Non-contiguous reads (the paper's seek-counting rule)."""
        return self.registry.get("disk_seeks")

    @property
    def buffer_hits(self) -> int:
        """Buffer-manager hits."""
        return self.registry.get("buffer_hits")

    @property
    def events(self) -> list[tuple[str, tuple]]:
        """Most recent load/unload events (bounded ring buffer)."""
        return self.registry.events.to_list()

    def reset(self) -> None:
        """Zero every counter and clear the event log."""
        self.registry.reset()

    def distinct_loaded(self) -> tuple[int, int]:
        """(#distinct intranode, #distinct superedge) graphs ever loaded.

        Served by the registry's distinct-key tallies, so the section-4.3
        analysis stays exact even after the event ring buffer wraps.
        """
        return (
            self.registry.distinct("intranode"),
            self.registry.distinct("superedge"),
        )


class SNodeStore:
    """Random access to adjacency lists of a stored S-Node representation."""

    def __init__(
        self,
        root: Path | str,
        buffer_bytes: int = DEFAULT_BUFFER_BYTES,
        record_events: bool = True,
        cache_decoded: bool = True,
        on_corruption: str = "raise",
        stripes: int = 1,
    ) -> None:
        """Open a stored representation.

        ``cache_decoded=True`` (default) buffers decoded graphs — the
        query-serving configuration.  ``cache_decoded=False`` buffers the
        *encoded* payload bytes instead and decodes on every access; this
        is the Table 2 protocol ("time to decode and extract adjacency
        lists assuming the graph representation has already been loaded
        into memory").

        ``on_corruption`` picks the failure policy for payload regions
        whose CRC32 no longer matches their ``pointers.bin`` record:
        ``"raise"`` (default) propagates the
        :class:`~repro.errors.CorruptionError`; ``"degrade"`` quarantines
        the corrupt intranode/superedge graph and keeps serving — affected
        rows come back empty, each such answer counting one
        ``degraded_reads``.  Regions already quarantined on disk by
        ``repro fsck --repair`` are honoured in both modes.

        ``stripes`` configures buffer-pool lock striping for concurrent
        serving (see :class:`~repro.storage.bufferpool.BufferPool`); the
        default of 1 keeps the exact single-LRU eviction order that the
        experiments and their committed baselines depend on.
        """
        if on_corruption not in ("raise", "degrade"):
            raise ValueError(
                f"on_corruption must be 'raise' or 'degrade', got {on_corruption!r}"
            )
        self._root = Path(root)
        self._on_corruption = on_corruption
        self._layout: StorageLayout = read_layout(self._root)
        self._quarantined: set[tuple] = {
            ("intra", entry[1]) if entry[0] == "intranode" else ("super", *entry[1:])
            for entry in read_quarantine(self._root)
        }
        self._super_adjacency = decode_supernode_graph(
            self._layout.super_adjacency_bytes
        )
        self._boundaries = self._layout.boundaries
        self._record_events = record_events
        self._cache_decoded = cache_decoded
        self.metrics = MetricsRegistry()
        self.stats = StoreStats(self.metrics)
        self._pool = BufferPool(
            buffer_bytes,
            registry=self.metrics,
            on_evict=self._on_evict,
            stripes=stripes,
        )
        self._devices: dict[int, CountedFile] = {}
        self._devices_lock = threading.Lock()
        self._quarantined_lock = threading.Lock()
        # The paper pins the supernode graph and both indexes for the
        # lifetime of the store; account for them as pinned buffer bytes.
        self._pool.pin(
            ("pinned", "supernode-graph"),
            self._super_adjacency,
            self._graph_cost(self._super_adjacency),
        )
        self._pool.pin(
            ("pinned", "pageid-index"), self._boundaries, 8 * len(self._boundaries)
        )

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Close open payload file handles."""
        with self._devices_lock:
            devices = list(self._devices.values())
            self._devices.clear()
        for device in devices:
            device.close()

    def __enter__(self) -> "SNodeStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- pinned structures ---------------------------------------------------

    @property
    def num_pages(self) -> int:
        """Total pages represented."""
        return self._layout.manifest["num_pages"]

    @property
    def num_supernodes(self) -> int:
        """Supernode count."""
        return len(self._boundaries) - 1

    @property
    def super_adjacency(self) -> list[list[int]]:
        """The pinned supernode graph (decoded adjacency lists)."""
        return self._super_adjacency

    @property
    def manifest(self) -> dict:
        """Build manifest (sizes, counts)."""
        return self._layout.manifest

    @property
    def new_to_old(self) -> list[int]:
        """Permutation mapping new (stored) page ids to repository ids."""
        return self._layout.new_to_old

    @property
    def boundaries(self) -> list[int]:
        """Supernode page boundaries (first new-id per supernode, + end).

        Exposed so a committed build can be *opened* for serving — the
        :class:`~repro.snode.numbering.Numbering` is fully reconstructible
        from these tables without re-running the build.
        """
        return self._layout.boundaries

    @property
    def domains(self) -> dict[str, list[int]]:
        """Domain name -> supernodes, as stored in ``domain.json``."""
        return self._layout.domains

    def supernode_of(self, page: int) -> int:
        """PageID-index lookup."""
        if not 0 <= page < self.num_pages:
            raise StorageError(f"page {page} out of range")
        return bisect.bisect_right(self._boundaries, page) - 1

    def supernode_range(self, supernode: int) -> tuple[int, int]:
        """(first, past-last) page ids of ``supernode``."""
        return self._boundaries[supernode], self._boundaries[supernode + 1]

    def supernodes_of_domain(self, domain: str) -> list[int]:
        """Domain-index lookup: supernodes holding pages of ``domain``."""
        return list(self._layout.domains.get(domain.lower(), []))

    # -- buffer manager ------------------------------------------------------

    def _on_evict(self, key, value) -> None:
        if self._record_events:
            self.metrics.record("unload", key)

    def _device(self, file_index: int) -> CountedFile:
        device = self._devices.get(file_index)
        if device is None:
            with self._devices_lock:
                device = self._devices.get(file_index)
                if device is None:
                    name = self._layout.index_files[file_index]
                    device = CountedFile(self._root / name, registry=self.metrics)
                    self._devices[file_index] = device
        return device

    def _read_payload(
        self,
        location: GraphLocation,
        region: str,
        registry: MetricsRegistry | None = None,
    ) -> bytes:
        payload = self._device(location.file_index).read_at(
            location.offset, location.length, registry=registry
        )
        actual = integrity.crc32(payload)
        if actual != location.crc:
            raise CorruptionError(
                f"{region}: payload checksum mismatch in "
                f"{self._layout.index_files[location.file_index]} at offset "
                f"{location.offset} (stored {location.crc:#010x}, "
                f"read {actual:#010x})"
            )
        return payload

    def _degraded(
        self, key: tuple, rows: int, registry: MetricsRegistry
    ) -> list[list[int]]:
        """Serve a quarantined region: empty adjacency, counted."""
        registry.inc("degraded_reads")
        if self._record_events:
            registry.record("degraded", key)
        return [[] for _ in range(rows)]

    def _quarantine(self, key: tuple, error: CorruptionError) -> None:
        # Quarantining is a store-wide state change, so it always charges
        # the base registry regardless of which session hit the bad region.
        with self._quarantined_lock:
            already = key in self._quarantined
            self._quarantined.add(key)
        if already:
            return
        self.metrics.inc("regions_quarantined")
        if self._record_events:
            self.metrics.record("quarantine", (*key, str(error)))

    def _graph_cost(self, rows: list[list[int]]) -> int:
        return _ROW_COST * len(rows) + _EDGE_COST * sum(len(r) for r in rows)

    def _loaded(self, kind: str, key: tuple, registry: MetricsRegistry) -> None:
        registry.inc("loads")
        registry.inc(f"{kind}_loads")
        registry.mark(kind, key)
        # Attribute the load to the innermost open tracing span (if a
        # tracer is active), so span trees show which phase/operation
        # pulled which graph kind from disk.
        tracing.note(f"{kind}_loads")
        if self._record_events:
            registry.record(f"load-{'intra' if kind == 'intranode' else 'super'}", key)

    def intranode_rows(
        self, supernode: int, registry: MetricsRegistry | None = None
    ) -> list[list[int]]:
        """Decoded intranode graph of ``supernode`` (local target indices)."""
        reg = registry if registry is not None else self.metrics
        key = ("intra", supernode)
        size = self._boundaries[supernode + 1] - self._boundaries[supernode]
        if key in self._quarantined:
            return self._degraded(key, size, reg)
        cached = self._pool.get(key, kind="intranode", registry=reg)
        if cached is not None:
            if not self._cache_decoded:
                return decode_intranode(cached)
            return cached
        try:
            payload = self._read_payload(
                self._layout.intranode[supernode],
                f"intranode {supernode}",
                registry=reg,
            )
        except CorruptionError as error:
            if self._on_corruption != "degrade":
                raise
            self._quarantine(key, error)
            return self._degraded(key, size, reg)
        rows = decode_intranode(payload)
        if self._cache_decoded:
            self._pool.put(key, rows, self._graph_cost(rows), kind="intranode")
        else:
            self._pool.put(key, payload, len(payload), kind="intranode")
        self._loaded("intranode", (supernode,), reg)
        return rows

    def superedge_rows(
        self,
        source: int,
        target: int,
        registry: MetricsRegistry | None = None,
    ) -> list[list[int]]:
        """Positive rows of superedge (source, target), decoded on demand."""
        reg = registry if registry is not None else self.metrics
        key = ("super", source, target)
        source_size = self._boundaries[source + 1] - self._boundaries[source]
        target_size = self._boundaries[target + 1] - self._boundaries[target]
        if key in self._quarantined:
            return self._degraded(key, source_size, reg)
        cached = self._pool.get(key, kind="superedge", registry=reg)
        if cached is not None:
            if not self._cache_decoded:
                return positive_rows_from_payload(cached, source_size, target_size)
            return cached
        entry = self._layout.superedge.get((source, target))
        if entry is None:
            raise StorageError(f"no superedge {source} -> {target}")
        location, _negative = entry
        try:
            payload = self._read_payload(
                location, f"superedge {source}->{target}", registry=reg
            )
        except CorruptionError as error:
            if self._on_corruption != "degrade":
                raise
            self._quarantine(key, error)
            return self._degraded(key, source_size, reg)
        rows = positive_rows_from_payload(payload, source_size, target_size)
        if self._cache_decoded:
            self._pool.put(key, rows, self._graph_cost(rows), kind="superedge")
        else:
            self._pool.put(key, payload, len(payload), kind="superedge")
        self._loaded("superedge", (source, target), reg)
        return rows

    # -- adjacency access ----------------------------------------------------

    def out_neighbors(
        self, page: int, registry: MetricsRegistry | None = None
    ) -> list[int]:
        """Complete adjacency list of ``page`` in (new) page-id space.

        Assembles the list from the intranode graph plus every outgoing
        superedge graph of the page's supernode, exactly the paper's
        "adjacency lists are partitioned across multiple smaller graphs".
        """
        supernode = self.supernode_of(page)
        first = self._boundaries[supernode]
        local = page - first
        result = [
            first + t
            for t in self.intranode_rows(supernode, registry=registry)[local]
        ]
        for target_super in self._super_adjacency[supernode]:
            rows = self.superedge_rows(supernode, target_super, registry=registry)
            base = self._boundaries[target_super]
            result.extend(base + t for t in rows[local])
        result.sort()
        return result

    def out_neighbors_many(
        self, pages: list[int], registry: MetricsRegistry | None = None
    ) -> dict[int, list[int]]:
        """Adjacency lists for several pages, grouped to reuse loads.

        Pages are processed supernode-by-supernode so each intranode /
        superedge graph is decoded once per group rather than per page.
        """
        by_super: dict[int, list[int]] = {}
        for page in pages:
            by_super.setdefault(self.supernode_of(page), []).append(page)
        result: dict[int, list[int]] = {}
        for supernode in sorted(by_super):
            first = self._boundaries[supernode]
            intra = self.intranode_rows(supernode, registry=registry)
            super_rows = [
                (
                    self._boundaries[t],
                    self.superedge_rows(supernode, t, registry=registry),
                )
                for t in self._super_adjacency[supernode]
            ]
            for page in by_super[supernode]:
                local = page - first
                row = [first + t for t in intra[local]]
                for base, rows in super_rows:
                    row.extend(base + t for t in rows[local])
                row.sort()
                result[page] = row
        return result

    def iterate_all(self):
        """Yield (page, adjacency list) for every page in id order.

        Sequential-access path used by the Table 2 experiment; walks
        supernodes in order so payload reads follow the linear layout.
        """
        for supernode in range(self.num_supernodes):
            first = self._boundaries[supernode]
            size = self._boundaries[supernode + 1] - first
            intra = self.intranode_rows(supernode)
            super_rows = [
                (self._boundaries[t], self.superedge_rows(supernode, t))
                for t in self._super_adjacency[supernode]
            ]
            for local in range(size):
                row = [first + t for t in intra[local]]
                for base, rows in super_rows:
                    row.extend(base + t for t in rows[local])
                row.sort()
                yield first + local, row

    def load_digraph(self):
        """Decode the entire representation into an in-memory CSR graph.

        This is the paper's *global access* path: the compressed
        representation is small enough to stream into memory wholesale,
        after which PageRank / SCC / trawling run on plain arrays.  Vertex
        ids are the store's (new) page ids; translate through
        :attr:`new_to_old` when repository ids are needed.
        """
        from repro.graph.digraph import GraphBuilder

        builder = GraphBuilder(self.num_pages)
        for page, row in self.iterate_all():
            for target in row:
                builder.add_edge(page, target)
        return builder.build()

    # -- maintenance ---------------------------------------------------------

    def drop_buffers(self) -> None:
        """Empty the buffer manager (cold-cache experiment resets)."""
        self._pool.clear(record=True)
        for device in self._devices.values():
            device.forget_position()

    def set_buffer_bytes(self, buffer_bytes: int) -> None:
        """Reconfigure the buffer budget (Figure 12 sweep)."""
        self._pool.set_buffer_bytes(buffer_bytes)
        for device in self._devices.values():
            device.forget_position()

    def buffer_stats(self) -> dict[str, int]:
        """Buffer-manager counters."""
        return self._pool.stats()

    # -- sessions ------------------------------------------------------------

    def session(self, label: str | None = None) -> "ReadSession":
        """Open a :class:`ReadSession` over this store.

        Each session owns a child metrics registry: its reads charge that
        child (uncontended, attributable to the client), while the pages
        themselves come from the store's shared buffer pool.  Close the
        session (or use it as a context manager) to fold its numbers back
        into the store's totals.
        """
        return ReadSession(self, label=label)

    # -- graceful degradation ------------------------------------------------

    @property
    def on_corruption(self) -> str:
        """Current corruption policy (``"raise"`` or ``"degrade"``)."""
        return self._on_corruption

    def set_on_corruption(self, mode: str) -> None:
        """Switch the corruption policy of an open store."""
        if mode not in ("raise", "degrade"):
            raise ValueError(
                f"on_corruption must be 'raise' or 'degrade', got {mode!r}"
            )
        self._on_corruption = mode

    @property
    def quarantined(self) -> list[tuple]:
        """Regions quarantined this session or by ``repro fsck --repair``."""
        with self._quarantined_lock:
            return sorted(self._quarantined)

    @property
    def degraded_reads(self) -> int:
        """Answers served from quarantined (empty) regions (all sessions)."""
        return self.metrics.get_total("degraded_reads")


class ReadSession:
    """One client's view of a shared :class:`SNodeStore`.

    Exposes the store's read API with every metric charged to the
    session's own child registry: concurrent sessions share the buffer
    pool (and benefit from each other's cached graphs) but keep fully
    attributable I/O accounting.  Sessions are intended to be used from
    one thread at a time — that is what makes their hot-path counting
    uncontended — while any number of sessions run in parallel.

    Closing the session merges its counters back into the store's
    registry; the store's ``metrics.merged_snapshot()`` view includes
    still-open sessions, so per-client numbers always sum to the shared
    totals.
    """

    def __init__(self, store: SNodeStore, label: str | None = None) -> None:
        self._store = store
        self.registry = store.metrics.child(label=label)
        self.stats = StoreStats(self.registry)
        self._closed = False

    @property
    def store(self) -> SNodeStore:
        """The shared store this session reads through."""
        return self._store

    @property
    def label(self) -> str | None:
        """The session label (shown in per-client reports)."""
        return self.registry.label

    @property
    def closed(self) -> bool:
        """True once :meth:`close` has folded this session's metrics."""
        return self._closed

    # -- read API (mirrors SNodeStore) --------------------------------------

    def supernode_of(self, page: int) -> int:
        """See :meth:`SNodeStore.supernode_of`."""
        return self._store.supernode_of(page)

    def supernode_range(self, supernode: int) -> tuple[int, int]:
        """See :meth:`SNodeStore.supernode_range`."""
        return self._store.supernode_range(supernode)

    def supernodes_of_domain(self, domain: str) -> list[int]:
        """See :meth:`SNodeStore.supernodes_of_domain`."""
        return self._store.supernodes_of_domain(domain)

    def intranode_rows(self, supernode: int) -> list[list[int]]:
        """See :meth:`SNodeStore.intranode_rows`; charges this session."""
        return self._store.intranode_rows(supernode, registry=self.registry)

    def superedge_rows(self, source: int, target: int) -> list[list[int]]:
        """See :meth:`SNodeStore.superedge_rows`; charges this session."""
        return self._store.superedge_rows(source, target, registry=self.registry)

    def out_neighbors(self, page: int) -> list[int]:
        """See :meth:`SNodeStore.out_neighbors`; charges this session."""
        return self._store.out_neighbors(page, registry=self.registry)

    def out_neighbors_many(self, pages: list[int]) -> dict[int, list[int]]:
        """See :meth:`SNodeStore.out_neighbors_many`; charges this session."""
        return self._store.out_neighbors_many(pages, registry=self.registry)

    def io_stats(self) -> dict[str, int]:
        """This session's own counters (not the shared totals)."""
        return self.registry.io_stats()

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Fold this session's metrics into the store and detach."""
        if self._closed:
            return
        self._closed = True
        self._store.metrics.merge(self.registry)

    def __enter__(self) -> "ReadSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
