"""Query-facing access to a stored S-Node representation.

An :class:`SNodeStore` mirrors the paper's runtime organization:

* the supernode graph, PageID index and domain index are loaded once and
  *pinned* in memory ("akin to the root node of B-tree indexes");
* intranode and superedge graphs are loaded and decoded on demand through
  a byte-budgeted LRU buffer manager;
* every load/unload is appended to an instrumentation log — the paper's
  section 4.3 analysis ("Query 1 required access to only 8 intranode
  graphs and 32 superedge graphs") is reproduced from this log;
* disk seeks are counted: a read that does not continue exactly where the
  previous read on the same file ended counts as one seek, which is how
  the benefit of the linear ordering (Figure 8) becomes measurable.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import StorageError
from repro.snode.encode import decode_intranode, decode_supernode_graph, positive_rows_from_payload
from repro.snode.storage import GraphLocation, StorageLayout, read_layout
from repro.util.lru import LRUCache

#: Default buffer budget, a scaled analogue of the paper's 325 MB bound.
DEFAULT_BUFFER_BYTES = 8 * 1024 * 1024

# Cost model for decoded graphs held in the buffer: 8 bytes per edge entry
# plus 4 bytes per row, approximating compact array storage.
_EDGE_COST = 8
_ROW_COST = 4


@dataclass
class StoreStats:
    """Counters + event log accumulated while serving queries."""

    graphs_loaded: int = 0
    graphs_evicted: int = 0
    intranode_loads: int = 0
    superedge_loads: int = 0
    bytes_read: int = 0
    disk_seeks: int = 0
    buffer_hits: int = 0
    events: list[tuple[str, tuple]] = field(default_factory=list)

    def reset(self) -> None:
        """Zero every counter and clear the event log."""
        self.graphs_loaded = 0
        self.graphs_evicted = 0
        self.intranode_loads = 0
        self.superedge_loads = 0
        self.bytes_read = 0
        self.disk_seeks = 0
        self.buffer_hits = 0
        self.events.clear()

    def distinct_loaded(self) -> tuple[int, int]:
        """(#distinct intranode, #distinct superedge) graphs ever loaded."""
        intranode = {key for kind, key in self.events if kind == "load-intra"}
        superedge = {key for kind, key in self.events if kind == "load-super"}
        return len(intranode), len(superedge)


class SNodeStore:
    """Random access to adjacency lists of a stored S-Node representation."""

    def __init__(
        self,
        root: Path | str,
        buffer_bytes: int = DEFAULT_BUFFER_BYTES,
        record_events: bool = True,
        cache_decoded: bool = True,
    ) -> None:
        """Open a stored representation.

        ``cache_decoded=True`` (default) buffers decoded graphs — the
        query-serving configuration.  ``cache_decoded=False`` buffers the
        *encoded* payload bytes instead and decodes on every access; this
        is the Table 2 protocol ("time to decode and extract adjacency
        lists assuming the graph representation has already been loaded
        into memory").
        """
        self._root = Path(root)
        self._layout: StorageLayout = read_layout(self._root)
        self._super_adjacency = decode_supernode_graph(
            self._layout.super_adjacency_bytes
        )
        self._boundaries = self._layout.boundaries
        self._record_events = record_events
        self._cache_decoded = cache_decoded
        self.stats = StoreStats()
        self._cache: LRUCache = LRUCache(buffer_bytes, on_evict=self._on_evict)
        self._handles: dict[int, object] = {}
        self._last_read_end: dict[int, int] = {}

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Close open payload file handles."""
        for handle in self._handles.values():
            handle.close()  # type: ignore[attr-defined]
        self._handles.clear()

    def __enter__(self) -> "SNodeStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- pinned structures ---------------------------------------------------

    @property
    def num_pages(self) -> int:
        """Total pages represented."""
        return self._layout.manifest["num_pages"]

    @property
    def num_supernodes(self) -> int:
        """Supernode count."""
        return len(self._boundaries) - 1

    @property
    def super_adjacency(self) -> list[list[int]]:
        """The pinned supernode graph (decoded adjacency lists)."""
        return self._super_adjacency

    @property
    def manifest(self) -> dict:
        """Build manifest (sizes, counts)."""
        return self._layout.manifest

    @property
    def new_to_old(self) -> list[int]:
        """Permutation mapping new (stored) page ids to repository ids."""
        return self._layout.new_to_old

    def supernode_of(self, page: int) -> int:
        """PageID-index lookup."""
        if not 0 <= page < self.num_pages:
            raise StorageError(f"page {page} out of range")
        return bisect.bisect_right(self._boundaries, page) - 1

    def supernode_range(self, supernode: int) -> tuple[int, int]:
        """(first, past-last) page ids of ``supernode``."""
        return self._boundaries[supernode], self._boundaries[supernode + 1]

    def supernodes_of_domain(self, domain: str) -> list[int]:
        """Domain-index lookup: supernodes holding pages of ``domain``."""
        return list(self._layout.domains.get(domain.lower(), []))

    # -- buffer manager ---------------------------------------------------------

    def _on_evict(self, key, value) -> None:
        self.stats.graphs_evicted += 1
        if self._record_events:
            self.stats.events.append(("unload", key))

    def _read_payload(self, location: GraphLocation) -> bytes:
        handle = self._handles.get(location.file_index)
        if handle is None:
            name = self._layout.index_files[location.file_index]
            handle = open(self._root / name, "rb")
            self._handles[location.file_index] = handle
        if self._last_read_end.get(location.file_index) != location.offset:
            self.stats.disk_seeks += 1
        handle.seek(location.offset)  # type: ignore[attr-defined]
        payload = handle.read(location.length)  # type: ignore[attr-defined]
        if len(payload) != location.length:
            raise StorageError("short read from index file")
        self._last_read_end[location.file_index] = location.offset + location.length
        self.stats.bytes_read += location.length
        return payload

    def _graph_cost(self, rows: list[list[int]]) -> int:
        return _ROW_COST * len(rows) + _EDGE_COST * sum(len(r) for r in rows)

    def intranode_rows(self, supernode: int) -> list[list[int]]:
        """Decoded intranode graph of ``supernode`` (local target indices)."""
        key = ("intra", supernode)
        cached = self._cache.get(key)
        if cached is not None:
            self.stats.buffer_hits += 1
            if not self._cache_decoded:
                return decode_intranode(cached)
            return cached
        payload = self._read_payload(self._layout.intranode[supernode])
        rows = decode_intranode(payload)
        if self._cache_decoded:
            self._cache.put(key, rows, self._graph_cost(rows))
        else:
            self._cache.put(key, payload, len(payload))
        self.stats.graphs_loaded += 1
        self.stats.intranode_loads += 1
        if self._record_events:
            self.stats.events.append(("load-intra", (supernode,)))
        return rows

    def superedge_rows(self, source: int, target: int) -> list[list[int]]:
        """Positive rows of superedge (source, target), decoded on demand."""
        key = ("super", source, target)
        source_size = self._boundaries[source + 1] - self._boundaries[source]
        target_size = self._boundaries[target + 1] - self._boundaries[target]
        cached = self._cache.get(key)
        if cached is not None:
            self.stats.buffer_hits += 1
            if not self._cache_decoded:
                return positive_rows_from_payload(cached, source_size, target_size)
            return cached
        entry = self._layout.superedge.get((source, target))
        if entry is None:
            raise StorageError(f"no superedge {source} -> {target}")
        location, _negative = entry
        payload = self._read_payload(location)
        rows = positive_rows_from_payload(payload, source_size, target_size)
        if self._cache_decoded:
            self._cache.put(key, rows, self._graph_cost(rows))
        else:
            self._cache.put(key, payload, len(payload))
        self.stats.graphs_loaded += 1
        self.stats.superedge_loads += 1
        if self._record_events:
            self.stats.events.append(("load-super", (source, target)))
        return rows

    # -- adjacency access ---------------------------------------------------------

    def out_neighbors(self, page: int) -> list[int]:
        """Complete adjacency list of ``page`` in (new) page-id space.

        Assembles the list from the intranode graph plus every outgoing
        superedge graph of the page's supernode, exactly the paper's
        "adjacency lists are partitioned across multiple smaller graphs".
        """
        supernode = self.supernode_of(page)
        first = self._boundaries[supernode]
        local = page - first
        result = [first + t for t in self.intranode_rows(supernode)[local]]
        for target_super in self._super_adjacency[supernode]:
            rows = self.superedge_rows(supernode, target_super)
            base = self._boundaries[target_super]
            result.extend(base + t for t in rows[local])
        result.sort()
        return result

    def out_neighbors_many(self, pages: list[int]) -> dict[int, list[int]]:
        """Adjacency lists for several pages, grouped to reuse loads.

        Pages are processed supernode-by-supernode so each intranode /
        superedge graph is decoded once per group rather than per page.
        """
        by_super: dict[int, list[int]] = {}
        for page in pages:
            by_super.setdefault(self.supernode_of(page), []).append(page)
        result: dict[int, list[int]] = {}
        for supernode in sorted(by_super):
            first = self._boundaries[supernode]
            intra = self.intranode_rows(supernode)
            super_rows = [
                (self._boundaries[t], self.superedge_rows(supernode, t))
                for t in self._super_adjacency[supernode]
            ]
            for page in by_super[supernode]:
                local = page - first
                row = [first + t for t in intra[local]]
                for base, rows in super_rows:
                    row.extend(base + t for t in rows[local])
                row.sort()
                result[page] = row
        return result

    def iterate_all(self):
        """Yield (page, adjacency list) for every page in id order.

        Sequential-access path used by the Table 2 experiment; walks
        supernodes in order so payload reads follow the linear layout.
        """
        for supernode in range(self.num_supernodes):
            first = self._boundaries[supernode]
            size = self._boundaries[supernode + 1] - first
            intra = self.intranode_rows(supernode)
            super_rows = [
                (self._boundaries[t], self.superedge_rows(supernode, t))
                for t in self._super_adjacency[supernode]
            ]
            for local in range(size):
                row = [first + t for t in intra[local]]
                for base, rows in super_rows:
                    row.extend(base + t for t in rows[local])
                row.sort()
                yield first + local, row

    def load_digraph(self):
        """Decode the entire representation into an in-memory CSR graph.

        This is the paper's *global access* path: the compressed
        representation is small enough to stream into memory wholesale,
        after which PageRank / SCC / trawling run on plain arrays.  Vertex
        ids are the store's (new) page ids; translate through
        :attr:`new_to_old` when repository ids are needed.
        """
        from repro.graph.digraph import GraphBuilder

        builder = GraphBuilder(self.num_pages)
        for page, row in self.iterate_all():
            for target in row:
                builder.add_edge(page, target)
        return builder.build()

    # -- maintenance ---------------------------------------------------------

    def drop_buffers(self) -> None:
        """Empty the buffer manager (cold-cache experiment resets)."""
        self._cache.clear()
        self._last_read_end.clear()

    def set_buffer_bytes(self, buffer_bytes: int) -> None:
        """Reconfigure the buffer budget (Figure 12 sweep)."""
        self._cache = LRUCache(buffer_bytes, on_evict=self._on_evict)
        self._last_read_end.clear()

    def buffer_stats(self) -> dict[str, int]:
        """Buffer-manager counters."""
        return self._cache.stats()
