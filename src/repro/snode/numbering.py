"""Page and supernode numbering (paper section 3.3).

Rules, verbatim from the paper:

1. supernodes are numbered ``0..n-1`` (we order them deterministically by
   (domain, smallest member URL) instead of "arbitrarily");
2. pages are renumbered so that (i) pages of a lower-numbered supernode
   come first and (ii) within a supernode pages are ordered by the
   lexicographic ordering of their URLs.

Each supernode therefore owns a *contiguous range* of new page ids, and the
PageID index is nothing more than the sorted array of range boundaries —
mapping a page id to its supernode is one binary search.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass

from repro.errors import BuildError
from repro.partition.partition import Partition
from repro.webdata.corpus import Repository
from repro.webdata.urls import lexicographic_key


@dataclass(frozen=True)
class Numbering:
    """Bidirectional page renumbering plus the PageID range index."""

    old_to_new: tuple[int, ...]
    new_to_old: tuple[int, ...]
    boundaries: tuple[int, ...]  # boundaries[i] = first new id of supernode i
    supernode_domains: tuple[str, ...]

    @property
    def num_pages(self) -> int:
        """Number of pages renumbered."""
        return len(self.old_to_new)

    @property
    def num_supernodes(self) -> int:
        """Number of supernodes."""
        return len(self.boundaries) - 1

    def supernode_of(self, new_page_id: int) -> int:
        """PageID index lookup: supernode containing a (new) page id."""
        if not 0 <= new_page_id < self.num_pages:
            raise BuildError(f"page id {new_page_id} out of range")
        return bisect.bisect_right(self.boundaries, new_page_id) - 1

    def supernode_range(self, supernode: int) -> tuple[int, int]:
        """(first, past-last) new page ids owned by ``supernode``."""
        if not 0 <= supernode < self.num_supernodes:
            raise BuildError(f"supernode {supernode} out of range")
        return self.boundaries[supernode], self.boundaries[supernode + 1]

    def supernode_size(self, supernode: int) -> int:
        """Number of pages in ``supernode``."""
        first, last = self.supernode_range(supernode)
        return last - first

    def local_index(self, new_page_id: int) -> tuple[int, int]:
        """(supernode, index-within-supernode) of a new page id."""
        supernode = self.supernode_of(new_page_id)
        return supernode, new_page_id - self.boundaries[supernode]


def build_numbering(repository: Repository, partition: Partition) -> Numbering:
    """Apply the paper's two ordering rules to produce a :class:`Numbering`."""
    if partition.num_pages != repository.num_pages:
        raise BuildError("partition does not cover this repository")
    elements = partition.elements()
    # Deterministic supernode order: by (domain, smallest URL key inside).
    def element_key(index: int) -> tuple[str, str]:
        element = elements[index]
        first_key = min(
            lexicographic_key(repository.page(page).url) for page in element.pages
        )
        return (element.domain, first_key)

    order = sorted(range(len(elements)), key=element_key)
    old_to_new = [0] * repository.num_pages
    new_to_old: list[int] = []
    boundaries = [0]
    domains: list[str] = []
    for element_index in order:
        element = elements[element_index]
        members = sorted(
            element.pages,
            key=lambda page: lexicographic_key(repository.page(page).url),
        )
        for member in members:
            old_to_new[member] = len(new_to_old)
            new_to_old.append(member)
        boundaries.append(len(new_to_old))
        domains.append(element.domain)
    return Numbering(
        old_to_new=tuple(old_to_new),
        new_to_old=tuple(new_to_old),
        boundaries=tuple(boundaries),
        supernode_domains=tuple(domains),
    )
