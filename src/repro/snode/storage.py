"""On-disk organization of an S-Node representation (paper section 3.3).

Directory layout::

    <root>/
      manifest.json     build metadata + file table + component sizes
      supernode.bin     Huffman-coded supernode graph
      pointers.bin      per-intranode and per-superedge (file, offset, len)
      pageid.bin        PageID index: supernode boundary array
      newid.bin         new-id -> old-id permutation (4-byte LE each)
      domain.json       domain -> sorted list of supernode ids
      index_000.dat ... payload files, each at most ``max_file_bytes``

Payloads follow the paper's **linear ordering** (Figure 8): the intranode
graph of supernode i is immediately followed by every superedge graph
``(i, j)`` in ascending j, so a query touching supernode i reads one
contiguous region.  A graph never straddles two index files ("we ensured
that a given intranode or superedge graph was completely located within a
single file").
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass
from pathlib import Path

from repro.errors import StorageError
from repro.snode.encode import encode_superedge, encode_intranode, encode_supernode_graph
from repro.snode.model import SNodeModel
from repro.util.varint import decode_vbyte, encode_vbyte

MANIFEST_NAME = "manifest.json"
SUPERNODE_NAME = "supernode.bin"
POINTERS_NAME = "pointers.bin"
PAGEID_NAME = "pageid.bin"
NEWID_NAME = "newid.bin"
DOMAIN_NAME = "domain.json"
FORMAT_VERSION = 1

#: Scaled-down analogue of the paper's 500 MB index-file cap.
DEFAULT_MAX_FILE_BYTES = 4 * 1024 * 1024


@dataclass(frozen=True)
class GraphLocation:
    """Where one encoded graph lives: payload file index, offset, length."""

    file_index: int
    offset: int
    length: int


@dataclass
class StorageLayout:
    """Deserialized pointer tables of a stored representation."""

    intranode: list[GraphLocation]
    superedge: dict[tuple[int, int], tuple[GraphLocation, bool]]  # +polarity
    boundaries: list[int]
    new_to_old: list[int]
    domains: dict[str, list[int]]
    super_adjacency_bytes: bytes
    index_files: list[str]
    manifest: dict


class _PayloadWriter:
    """Appends byte-aligned payloads across size-capped index files."""

    def __init__(self, root: Path, max_file_bytes: int) -> None:
        self._root = root
        self._max = max_file_bytes
        self._files: list[str] = []
        self._current: bytearray = bytearray()

    def _rotate(self) -> None:
        name = f"index_{len(self._files):03d}.dat"
        (self._root / name).write_bytes(bytes(self._current))
        self._files.append(name)
        self._current = bytearray()

    def append(self, payload: bytes) -> GraphLocation:
        if len(payload) > self._max:
            # A single graph larger than the cap still gets its own file.
            if self._current:
                self._rotate()
            location = GraphLocation(len(self._files), 0, len(payload))
            self._current.extend(payload)
            self._rotate()
            return location
        if len(self._current) + len(payload) > self._max and self._current:
            self._rotate()
        location = GraphLocation(
            len(self._files), len(self._current), len(payload)
        )
        self._current.extend(payload)
        return location

    def finish(self) -> list[str]:
        if self._current or not self._files:
            self._rotate()
        return self._files


def write_snode(
    model: SNodeModel,
    root: Path | str,
    max_file_bytes: int = DEFAULT_MAX_FILE_BYTES,
    window: int = 8,
    full_affinity_limit: int = 96,
    use_dictionary: bool = True,
    progress=None,
) -> dict:
    """Serialize ``model`` under directory ``root``; returns the manifest.

    ``progress`` (an optional
    :class:`~repro.obs.progress.ProgressReporter`) gets one update per
    encoded supernode — the dominant cost of serialization.
    """
    from repro.obs import progress as obs_progress

    progress = obs_progress.ensure(progress)
    root = Path(root)
    root.mkdir(parents=True, exist_ok=True)
    numbering = model.numbering
    writer = _PayloadWriter(root, max_file_bytes)
    progress.start_phase("encode", total=model.num_supernodes, unit="supernodes")

    intranode_locations: list[GraphLocation] = []
    superedge_locations: dict[tuple[int, int], tuple[GraphLocation, bool]] = {}
    payload_bytes = 0
    intranode_bytes = 0
    superedge_bytes = 0

    for supernode in range(model.num_supernodes):
        payload = encode_intranode(
            model.intranode[supernode],
            window=window,
            full_affinity_limit=full_affinity_limit,
            use_dictionary=use_dictionary,
        )
        intranode_locations.append(writer.append(payload))
        payload_bytes += len(payload)
        intranode_bytes += len(payload)
        # Linear ordering: this supernode's superedge graphs come right after.
        for target in model.super_adjacency[supernode]:
            graph = model.superedges[(supernode, target)]
            payload = encode_superedge(
                graph,
                window=window,
                full_affinity_limit=full_affinity_limit,
                use_dictionary=use_dictionary,
            )
            superedge_locations[(supernode, target)] = (
                writer.append(payload),
                graph.negative,
            )
            payload_bytes += len(payload)
            superedge_bytes += len(payload)
        progress.update()
    index_files = writer.finish()
    progress.finish_phase()

    supernode_payload = encode_supernode_graph(model.super_adjacency)
    (root / SUPERNODE_NAME).write_bytes(supernode_payload)

    pointer_blob = _encode_pointers(model, intranode_locations, superedge_locations)
    (root / POINTERS_NAME).write_bytes(pointer_blob)

    boundary_blob = bytearray()
    previous = 0
    for boundary in numbering.boundaries:
        boundary_blob.extend(encode_vbyte(boundary - previous))
        previous = boundary
    (root / PAGEID_NAME).write_bytes(bytes(boundary_blob))

    (root / NEWID_NAME).write_bytes(
        struct.pack(f"<{numbering.num_pages}I", *numbering.new_to_old)
    )

    domains: dict[str, list[int]] = {}
    for supernode, domain in enumerate(numbering.supernode_domains):
        domains.setdefault(domain, []).append(supernode)
    (root / DOMAIN_NAME).write_text(json.dumps(domains, sort_keys=True))

    manifest = {
        "version": FORMAT_VERSION,
        "num_pages": numbering.num_pages,
        "num_supernodes": model.num_supernodes,
        "num_superedges": model.num_superedges,
        "positive_superedges": model.positive_count,
        "negative_superedges": model.negative_count,
        "index_files": index_files,
        "payload_bytes": payload_bytes,
        "intranode_bytes": intranode_bytes,
        "superedge_bytes": superedge_bytes,
        "supernode_graph_bytes": len(supernode_payload),
        "pointer_bytes": len(pointer_blob),
        "pageid_bytes": (root / PAGEID_NAME).stat().st_size,
        "window": window,
        "full_affinity_limit": full_affinity_limit,
    }
    (root / MANIFEST_NAME).write_text(json.dumps(manifest, indent=2))
    return manifest


def _encode_pointers(
    model: SNodeModel,
    intranode: list[GraphLocation],
    superedge: dict[tuple[int, int], tuple[GraphLocation, bool]],
) -> bytes:
    blob = bytearray()
    for location in intranode:
        blob.extend(encode_vbyte(location.file_index))
        blob.extend(encode_vbyte(location.offset))
        blob.extend(encode_vbyte(location.length))
    for source in range(model.num_supernodes):
        for target in model.super_adjacency[source]:
            location, negative = superedge[(source, target)]
            blob.extend(encode_vbyte(location.file_index))
            blob.extend(encode_vbyte(location.offset))
            blob.extend(encode_vbyte(location.length))
            blob.extend(encode_vbyte(1 if negative else 0))
    return bytes(blob)


def read_layout(root: Path | str) -> StorageLayout:
    """Load manifest, pointer tables and indexes (not the payloads)."""
    root = Path(root)
    manifest_path = root / MANIFEST_NAME
    if not manifest_path.exists():
        raise StorageError(f"no S-Node manifest under {root}")
    manifest = json.loads(manifest_path.read_text())
    if manifest.get("version") != FORMAT_VERSION:
        raise StorageError(f"unsupported format version {manifest.get('version')}")

    boundary_blob = (root / PAGEID_NAME).read_bytes()
    boundaries: list[int] = []
    position = 0
    value = 0
    while position < len(boundary_blob):
        delta, position = decode_vbyte(boundary_blob, position)
        value += delta
        boundaries.append(value)
    num_supernodes = manifest["num_supernodes"]
    if len(boundaries) != num_supernodes + 1:
        raise StorageError("PageID index does not match supernode count")

    newid_blob = (root / NEWID_NAME).read_bytes()
    num_pages = manifest["num_pages"]
    new_to_old = list(struct.unpack(f"<{num_pages}I", newid_blob))

    domains = {
        domain: list(supernodes)
        for domain, supernodes in json.loads((root / DOMAIN_NAME).read_text()).items()
    }

    super_adjacency_bytes = (root / SUPERNODE_NAME).read_bytes()
    from repro.snode.encode import decode_supernode_graph

    adjacency = decode_supernode_graph(super_adjacency_bytes)
    pointer_blob = (root / POINTERS_NAME).read_bytes()
    position = 0
    intranode: list[GraphLocation] = []
    for _ in range(num_supernodes):
        file_index, position = decode_vbyte(pointer_blob, position)
        offset, position = decode_vbyte(pointer_blob, position)
        length, position = decode_vbyte(pointer_blob, position)
        intranode.append(GraphLocation(file_index, offset, length))
    superedge: dict[tuple[int, int], tuple[GraphLocation, bool]] = {}
    for source in range(num_supernodes):
        for target in adjacency[source]:
            file_index, position = decode_vbyte(pointer_blob, position)
            offset, position = decode_vbyte(pointer_blob, position)
            length, position = decode_vbyte(pointer_blob, position)
            negative, position = decode_vbyte(pointer_blob, position)
            superedge[(source, target)] = (
                GraphLocation(file_index, offset, length),
                bool(negative),
            )

    return StorageLayout(
        intranode=intranode,
        superedge=superedge,
        boundaries=boundaries,
        new_to_old=new_to_old,
        domains=domains,
        super_adjacency_bytes=super_adjacency_bytes,
        index_files=manifest["index_files"],
        manifest=manifest,
    )
