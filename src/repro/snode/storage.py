"""On-disk organization of an S-Node representation (paper section 3.3).

Directory layout::

    <root>/
      manifest.json     build metadata + file table (size+CRC32 per file)
                        + whole-build digest; always written last
      supernode.bin     Huffman-coded supernode graph (CRC frame)
      pointers.bin      per-intranode and per-superedge
                        (file, offset, len, crc32) records (CRC frame)
      pageid.bin        PageID index: supernode boundary array (CRC frame)
      newid.bin         new-id -> old-id permutation, 4-byte LE (CRC frame)
      domain.json       domain -> sorted list of supernode ids
      index_000.dat ... payload files, each at most ``max_file_bytes``
      quarantine.json   (optional) regions quarantined by ``repro fsck
                        --repair``; honoured by degrade-mode stores

Payloads follow the paper's **linear ordering** (Figure 8): the intranode
graph of supernode i is immediately followed by every superedge graph
``(i, j)`` in ascending j, so a query touching supernode i reads one
contiguous region.  A graph never straddles two index files ("we ensured
that a given intranode or superedge graph was completely located within a
single file").

Durability (format version 2): payload bytes are untouched — the paper's
byte offsets and the linear layout stay exact — but every graph region's
CRC32 rides in its ``pointers.bin`` record and is verified on read, the
auxiliary tables are stored as CRC frames, and the whole build is written
through the :class:`repro.storage.atomic.BuildTransaction` protocol
(tmp directory, fsync, manifest last, rename), so a crash at any write op
leaves either the previous build or a cleanly reported partial build —
never a silently corrupt one.
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass
from pathlib import Path

from repro.errors import CorruptionError, StorageError
from repro.obs import tracing
from repro.snode.encode import (
    encode_intranode,
    encode_superedge,
    encode_supernode_graph,
    freeze_supernode_codec,
    supernode_frequencies,
)
from repro.snode.model import SNodeModel
from repro.storage import integrity
from repro.storage.atomic import BuildTransaction, require_build
from repro.util.varint import decode_vbyte, encode_vbyte

MANIFEST_NAME = "manifest.json"
SUPERNODE_NAME = "supernode.bin"
POINTERS_NAME = "pointers.bin"
PAGEID_NAME = "pageid.bin"
NEWID_NAME = "newid.bin"
DOMAIN_NAME = "domain.json"
QUARANTINE_NAME = "quarantine.json"
#: Version 2 = checksummed storage (region CRCs, framed tables, digest).
FORMAT_VERSION = 2

#: Scaled-down analogue of the paper's 500 MB index-file cap.
DEFAULT_MAX_FILE_BYTES = 4 * 1024 * 1024


@dataclass(frozen=True)
class GraphLocation:
    """Where one encoded graph lives, plus its payload checksum."""

    file_index: int
    offset: int
    length: int
    crc: int = 0


@dataclass
class StorageLayout:
    """Deserialized pointer tables of a stored representation."""

    intranode: list[GraphLocation]
    superedge: dict[tuple[int, int], tuple[GraphLocation, bool]]  # +polarity
    boundaries: list[int]
    new_to_old: list[int]
    domains: dict[str, list[int]]
    super_adjacency_bytes: bytes
    index_files: list[str]
    manifest: dict


class PayloadWriter:
    """Appends byte-aligned payloads across size-capped index files.

    Files are written through the enclosing
    :class:`~repro.storage.atomic.BuildTransaction`, so each rotation is
    one fault-injectable write op and lands in the manifest's file table.
    """

    def __init__(self, transaction: BuildTransaction, max_file_bytes: int) -> None:
        self._transaction = transaction
        self._max = max_file_bytes
        self._files: list[str] = []
        self._current: bytearray = bytearray()

    def _rotate(self) -> None:
        name = f"index_{len(self._files):03d}.dat"
        self._transaction.write_file(name, bytes(self._current))
        self._files.append(name)
        self._current = bytearray()

    def append(self, payload: bytes) -> GraphLocation:
        crc = integrity.crc32(payload)
        if len(payload) > self._max:
            # A single graph larger than the cap still gets its own file.
            if self._current:
                self._rotate()
            location = GraphLocation(len(self._files), 0, len(payload), crc)
            self._current.extend(payload)
            self._rotate()
            return location
        if len(self._current) + len(payload) > self._max and self._current:
            self._rotate()
        location = GraphLocation(
            len(self._files), len(self._current), len(payload), crc
        )
        self._current.extend(payload)
        return location

    def finish(self) -> list[str]:
        if self._current or not self._files:
            self._rotate()
        return self._files


@dataclass
class EncodedPayloads:
    """Outcome of the encode stage: payload locations and byte accounting.

    Produced by :func:`encode_payloads`, consumed by :func:`write_tables`
    — and the unit the build pipeline checkpoints between the two, so a
    resumed build can skip straight to table assembly.
    """

    intranode: list[GraphLocation]
    superedge: dict[tuple[int, int], tuple[GraphLocation, bool]]
    index_files: list[str]
    payload_bytes: int
    intranode_bytes: int
    superedge_bytes: int
    supernode_payload: bytes
    shards: int = 1
    workers: int = 1


def encode_payloads(
    model: SNodeModel,
    transaction: BuildTransaction,
    max_file_bytes: int = DEFAULT_MAX_FILE_BYTES,
    window: int = 8,
    full_affinity_limit: int = 96,
    use_dictionary: bool = True,
    workers: int = 1,
    progress=None,
) -> EncodedPayloads:
    """Encode every payload into the transaction's index files.

    Two-phase map-reduce shape:

    1. **freeze** — the supernode-graph Huffman table (the only global
       code table of the format) is frozen from the in-degree frequency
       pass, and the supernode-graph payload encoded from it;
    2. **map** — per-supernode payloads (intranode + superedge graphs)
       encode independently: serially in-process for ``workers == 1``,
       or sharded across a ``multiprocessing`` pool otherwise.

    Either way the parent appends payloads to the :class:`PayloadWriter`
    in strict supernode order (the paper's linear layout), so the index
    files are **byte-identical** for every worker count.  ``progress``
    gets one update per encoded supernode.
    """
    from repro.obs import progress as obs_progress

    progress = obs_progress.ensure(progress)
    codec = freeze_supernode_codec(supernode_frequencies(model.super_adjacency))
    supernode_payload = encode_supernode_graph(model.super_adjacency, codec)
    writer = PayloadWriter(transaction, max_file_bytes)
    progress.start_phase("encode", total=model.num_supernodes, unit="supernodes")

    intranode_locations: list[GraphLocation] = []
    superedge_locations: dict[tuple[int, int], tuple[GraphLocation, bool]] = {}
    payload_bytes = 0
    intranode_bytes = 0
    superedge_bytes = 0
    shards = 1

    if workers <= 1:
        for supernode in range(model.num_supernodes):
            payload = encode_intranode(
                model.intranode[supernode],
                window=window,
                full_affinity_limit=full_affinity_limit,
                use_dictionary=use_dictionary,
            )
            intranode_locations.append(writer.append(payload))
            payload_bytes += len(payload)
            intranode_bytes += len(payload)
            # Linear ordering: this supernode's superedge graphs come right
            # after its intranode graph.
            for target in model.super_adjacency[supernode]:
                graph = model.superedges[(supernode, target)]
                payload = encode_superedge(
                    graph,
                    window=window,
                    full_affinity_limit=full_affinity_limit,
                    use_dictionary=use_dictionary,
                )
                superedge_locations[(supernode, target)] = (
                    writer.append(payload),
                    graph.negative,
                )
                payload_bytes += len(payload)
                superedge_bytes += len(payload)
            progress.update()
    else:
        # Deferred import: the pipeline package imports this module.
        from repro.snode.pipeline import pool as shard_pool
        from repro.snode.pipeline import shard as shard_mod

        tasks = shard_mod.plan_shards(
            model,
            window=window,
            full_affinity_limit=full_affinity_limit,
            use_dictionary=use_dictionary,
            workers=workers,
        )
        shards = len(tasks)
        for result in shard_pool.run_shards(tasks, workers, model):
            for unit in result.units:
                intranode_locations.append(writer.append(unit.intranode_payload))
                payload_bytes += len(unit.intranode_payload)
                intranode_bytes += len(unit.intranode_payload)
                for target, payload, negative in unit.superedges:
                    superedge_locations[(unit.supernode, target)] = (
                        writer.append(payload),
                        negative,
                    )
                    payload_bytes += len(payload)
                    superedge_bytes += len(payload)
                progress.update()
            tracing.absorb_summary(result.span_summary, prefix="worker.")
            tracing.note("encode.shards")

    index_files = writer.finish()
    progress.finish_phase()
    return EncodedPayloads(
        intranode=intranode_locations,
        superedge=superedge_locations,
        index_files=index_files,
        payload_bytes=payload_bytes,
        intranode_bytes=intranode_bytes,
        superedge_bytes=superedge_bytes,
        supernode_payload=supernode_payload,
        shards=shards,
        workers=workers,
    )


def write_tables(
    model: SNodeModel,
    transaction: BuildTransaction,
    encoded: EncodedPayloads,
    window: int = 8,
    full_affinity_limit: int = 96,
) -> dict:
    """Assemble stage: auxiliary tables + manifest (written last).

    Does **not** commit — the caller owns the transaction (the pipeline
    runs its final checkpoint hook between assembly and commit).
    """
    numbering = model.numbering
    transaction.write_file(
        SUPERNODE_NAME, integrity.encode_frame(encoded.supernode_payload)
    )

    pointer_blob = _encode_pointers(model, encoded.intranode, encoded.superedge)
    transaction.write_file(POINTERS_NAME, integrity.encode_frame(pointer_blob))

    boundary_blob = bytearray()
    previous = 0
    for boundary in numbering.boundaries:
        boundary_blob.extend(encode_vbyte(boundary - previous))
        previous = boundary
    pageid_frame = integrity.encode_frame(bytes(boundary_blob))
    transaction.write_file(PAGEID_NAME, pageid_frame)

    transaction.write_file(
        NEWID_NAME,
        integrity.encode_frame(
            struct.pack(f"<{numbering.num_pages}I", *numbering.new_to_old)
        ),
    )

    domains: dict[str, list[int]] = {}
    for supernode, domain in enumerate(numbering.supernode_domains):
        domains.setdefault(domain, []).append(supernode)
    transaction.write_file(
        DOMAIN_NAME, json.dumps(domains, sort_keys=True).encode()
    )

    return transaction.write_manifest(
        {
            "version": FORMAT_VERSION,
            "num_pages": numbering.num_pages,
            "num_supernodes": model.num_supernodes,
            "num_superedges": model.num_superedges,
            "positive_superedges": model.positive_count,
            "negative_superedges": model.negative_count,
            "index_files": encoded.index_files,
            "payload_bytes": encoded.payload_bytes,
            "intranode_bytes": encoded.intranode_bytes,
            "superedge_bytes": encoded.superedge_bytes,
            "supernode_graph_bytes": len(encoded.supernode_payload),
            "pointer_bytes": len(pointer_blob),
            "pageid_bytes": len(pageid_frame),
            "window": window,
            "full_affinity_limit": full_affinity_limit,
        }
    )


def write_snode(
    model: SNodeModel,
    root: Path | str,
    max_file_bytes: int = DEFAULT_MAX_FILE_BYTES,
    window: int = 8,
    full_affinity_limit: int = 96,
    use_dictionary: bool = True,
    progress=None,
    workers: int = 1,
) -> dict:
    """Serialize ``model`` under directory ``root``; returns the manifest.

    The build is atomic: everything is written under ``<root>.tmp`` and
    published by a final rename, with the manifest (carrying per-file
    CRCs and the whole-build digest) written last.  This is the plain
    one-shot path (no stage checkpoints); the staged, resumable variant
    lives in :class:`repro.snode.pipeline.BuildPipeline` and shares
    :func:`encode_payloads` / :func:`write_tables` with it, so the bytes
    on disk are identical either way.
    """
    root = Path(root)
    transaction = BuildTransaction(root)
    encoded = encode_payloads(
        model,
        transaction,
        max_file_bytes=max_file_bytes,
        window=window,
        full_affinity_limit=full_affinity_limit,
        use_dictionary=use_dictionary,
        workers=workers,
        progress=progress,
    )
    manifest = write_tables(
        model,
        transaction,
        encoded,
        window=window,
        full_affinity_limit=full_affinity_limit,
    )
    transaction.commit()
    return manifest


def _encode_pointers(
    model: SNodeModel,
    intranode: list[GraphLocation],
    superedge: dict[tuple[int, int], tuple[GraphLocation, bool]],
) -> bytes:
    blob = bytearray()
    for location in intranode:
        blob.extend(encode_vbyte(location.file_index))
        blob.extend(encode_vbyte(location.offset))
        blob.extend(encode_vbyte(location.length))
        blob.extend(encode_vbyte(location.crc))
    for source in range(model.num_supernodes):
        for target in model.super_adjacency[source]:
            location, negative = superedge[(source, target)]
            blob.extend(encode_vbyte(location.file_index))
            blob.extend(encode_vbyte(location.offset))
            blob.extend(encode_vbyte(location.length))
            blob.extend(encode_vbyte(location.crc))
            blob.extend(encode_vbyte(1 if negative else 0))
    return bytes(blob)


def _read_manifest(root: Path) -> dict:
    """Load and sanity-check ``manifest.json`` (clean errors only)."""
    require_build(root, what="S-Node build")
    manifest_path = root / MANIFEST_NAME
    try:
        manifest = json.loads(manifest_path.read_text())
    except json.JSONDecodeError as exc:
        raise StorageError(
            f"manifest {manifest_path} is truncated or not valid JSON "
            f"(line {exc.lineno}, column {exc.colno}): {exc.msg}"
        ) from exc
    version = manifest.get("version")
    if version != FORMAT_VERSION:
        raise StorageError(
            f"unsupported S-Node format version {version!r} under {root} "
            f"(this build of repro reads version {FORMAT_VERSION}); "
            "rebuild the representation"
        )
    files = manifest.get("files")
    if not isinstance(files, dict) or manifest.get("digest") != (
        integrity.build_digest(files) if isinstance(files, dict) else None
    ):
        raise StorageError(
            f"manifest under {root} has a missing or inconsistent build "
            "digest — the build did not complete its commit"
        )
    return manifest


def _read_framed_table(root: Path, name: str, manifest: dict) -> bytes:
    """Read an auxiliary CRC-framed table, checking its manifest entry."""
    path = root / name
    if not path.exists():
        raise StorageError(f"missing auxiliary file {name} under {root}")
    entry = manifest["files"].get(name)
    if entry is not None and path.stat().st_size != entry["bytes"]:
        raise CorruptionError(
            f"{name}: file holds {path.stat().st_size} bytes, manifest "
            f"recorded {entry['bytes']}"
        )
    return integrity.read_framed(path)


def read_layout(root: Path | str) -> StorageLayout:
    """Load manifest, pointer tables and indexes (not the payloads).

    Distinguishes "no build", "partial build" (interrupted before the
    atomic rename) and a valid build; every auxiliary table's CRC frame
    is verified, so a flipped bit in an index surfaces here as a
    :class:`~repro.errors.CorruptionError` rather than as garbage
    adjacency later.
    """
    root = Path(root)
    manifest = _read_manifest(root)

    boundary_blob = _read_framed_table(root, PAGEID_NAME, manifest)
    boundaries: list[int] = []
    position = 0
    value = 0
    while position < len(boundary_blob):
        delta, position = decode_vbyte(boundary_blob, position)
        value += delta
        boundaries.append(value)
    num_supernodes = manifest["num_supernodes"]
    if len(boundaries) != num_supernodes + 1:
        raise StorageError("PageID index does not match supernode count")

    newid_blob = _read_framed_table(root, NEWID_NAME, manifest)
    num_pages = manifest["num_pages"]
    if len(newid_blob) != 4 * num_pages:
        raise StorageError(
            f"new-id map holds {len(newid_blob)} bytes, expected "
            f"{4 * num_pages} for {num_pages} pages"
        )
    new_to_old = list(struct.unpack(f"<{num_pages}I", newid_blob))

    domain_blob = (root / DOMAIN_NAME).read_bytes()
    domain_entry = manifest["files"].get(DOMAIN_NAME)
    if domain_entry is not None and integrity.crc32(domain_blob) != domain_entry["crc32"]:
        raise CorruptionError(f"{DOMAIN_NAME}: checksum mismatch")
    domains = {
        domain: list(supernodes)
        for domain, supernodes in json.loads(domain_blob).items()
    }

    super_adjacency_bytes = _read_framed_table(root, SUPERNODE_NAME, manifest)
    from repro.snode.encode import decode_supernode_graph

    adjacency = decode_supernode_graph(super_adjacency_bytes)
    pointer_blob = _read_framed_table(root, POINTERS_NAME, manifest)
    position = 0
    intranode: list[GraphLocation] = []
    for _ in range(num_supernodes):
        file_index, position = decode_vbyte(pointer_blob, position)
        offset, position = decode_vbyte(pointer_blob, position)
        length, position = decode_vbyte(pointer_blob, position)
        crc, position = decode_vbyte(pointer_blob, position)
        intranode.append(GraphLocation(file_index, offset, length, crc))
    superedge: dict[tuple[int, int], tuple[GraphLocation, bool]] = {}
    for source in range(num_supernodes):
        for target in adjacency[source]:
            file_index, position = decode_vbyte(pointer_blob, position)
            offset, position = decode_vbyte(pointer_blob, position)
            length, position = decode_vbyte(pointer_blob, position)
            crc, position = decode_vbyte(pointer_blob, position)
            negative, position = decode_vbyte(pointer_blob, position)
            superedge[(source, target)] = (
                GraphLocation(file_index, offset, length, crc),
                bool(negative),
            )

    return StorageLayout(
        intranode=intranode,
        superedge=superedge,
        boundaries=boundaries,
        new_to_old=new_to_old,
        domains=domains,
        super_adjacency_bytes=super_adjacency_bytes,
        index_files=manifest["index_files"],
        manifest=manifest,
    )


def read_quarantine(root: Path | str) -> set[tuple]:
    """Regions quarantined by ``repro fsck --repair`` (empty when none).

    Entries are ``("intranode", supernode)`` and
    ``("superedge", source, target)`` tuples.
    """
    path = Path(root) / QUARANTINE_NAME
    if not path.exists():
        return set()
    try:
        entries = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise StorageError(f"quarantine list {path} is not valid JSON: {exc}") from exc
    return {tuple(entry) for entry in entries}


def write_quarantine(root: Path | str, regions: set[tuple]) -> None:
    """Persist the quarantine list (sorted, stable)."""
    path = Path(root) / QUARANTINE_NAME
    entries = sorted([list(region) for region in regions])
    path.write_text(json.dumps(entries, indent=2))
