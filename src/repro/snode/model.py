"""Logical S-Node model (paper section 2).

Given the Web graph and a partition (via its :class:`Numbering`), this
module materializes the three graph families of the representation:

* the **supernode graph** — one vertex per partition element, a superedge
  ``i -> j`` iff some page of i points into j;
* one **intranode graph** per supernode — links among its own pages, over
  local indices ``0..size-1``;
* one **superedge graph** per superedge — either the *positive* bipartite
  graph (links that exist) or the *negative* one (links that are absent),
  whichever has fewer edges, as the paper's compactness heuristic dictates.

Rows everywhere are indexed by the source page's local index inside its
supernode, and row entries are the target page's local index inside the
*target* supernode.  All ids here are *new* (post-renumbering) ids.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import BuildError
from repro.graph.digraph import Digraph
from repro.snode.numbering import Numbering


@dataclass(frozen=True)
class SuperedgeGraph:
    """One encoded-side superedge graph: rows over the source supernode.

    ``negative=False``: ``rows[s]`` lists target locals that s links to.
    ``negative=True``: ``rows[s]`` lists target locals that s does *not*
    link to — but only for sources with at least one actual link into the
    target supernode (sources with no links at all stay empty-positive,
    matching the paper's vertex-set definition of SEdgeNeg, which only
    contains pages involved in the superedge).
    """

    source: int
    target: int
    negative: bool
    rows: tuple[tuple[int, ...], ...]
    # Local indices (in the source supernode) of pages that have at least
    # one link into the target supernode; only meaningful for negative
    # graphs, where a missing row must be distinguished from a full row.
    linked_sources: tuple[int, ...] = ()

    @property
    def num_edges(self) -> int:
        """Number of encoded edges (positive links or negative 'holes')."""
        return sum(len(row) for row in self.rows)


@dataclass
class SNodeModel:
    """Complete logical S-Node representation (pre-serialization)."""

    numbering: Numbering
    super_adjacency: list[list[int]]  # supernode graph, i -> sorted js
    intranode: list[list[list[int]]]  # [supernode][local source] -> locals
    superedges: dict[tuple[int, int], SuperedgeGraph]
    positive_count: int = 0
    negative_count: int = 0

    @property
    def num_supernodes(self) -> int:
        """Number of supernodes."""
        return self.numbering.num_supernodes

    @property
    def num_superedges(self) -> int:
        """Number of superedges in the supernode graph."""
        return sum(len(row) for row in self.super_adjacency)

    def positive_rows(self, source: int, target: int) -> list[list[int]]:
        """Reconstruct the positive rows of superedge (source, target).

        Inverts the negative encoding when needed — this is the primitive
        both the store and the correctness tests use.
        """
        graph = self.superedges.get((source, target))
        if graph is None:
            raise BuildError(f"no superedge {source} -> {target}")
        return decode_superedge(graph, self.numbering.supernode_size(target))


def decode_superedge(graph: SuperedgeGraph, target_size: int) -> list[list[int]]:
    """Positive rows of a superedge graph, whatever its stored polarity."""
    if not graph.negative:
        return [list(row) for row in graph.rows]
    linked = set(graph.linked_sources)
    positive: list[list[int]] = []
    for local, row in enumerate(graph.rows):
        if local not in linked:
            positive.append([])
            continue
        missing = set(row)
        positive.append([t for t in range(target_size) if t not in missing])
    return positive


def build_model(
    graph: Digraph, numbering: Numbering, force_positive: bool = False
) -> SNodeModel:
    """Materialize the S-Node model for ``graph`` under ``numbering``.

    ``graph`` must be over *old* page ids; the model is expressed in new
    ids via the numbering.  ``force_positive`` disables the paper's
    positive/negative superedge choice (ablation experiment).
    """
    if graph.num_vertices != numbering.num_pages:
        raise BuildError("graph and numbering disagree on page count")
    n_super = numbering.num_supernodes
    boundaries = numbering.boundaries
    intranode: list[list[list[int]]] = [
        [[] for _ in range(numbering.supernode_size(i))] for i in range(n_super)
    ]
    positive: dict[tuple[int, int], list[list[int]]] = {}
    super_adjacency: list[set[int]] = [set() for _ in range(n_super)]

    for new_source in range(numbering.num_pages):
        old_source = numbering.new_to_old[new_source]
        source_super, source_local = numbering.local_index(new_source)
        for old_target in graph.successors(old_source):
            new_target = numbering.old_to_new[int(old_target)]
            target_super = numbering.supernode_of(new_target)
            target_local = new_target - boundaries[target_super]
            if target_super == source_super:
                intranode[source_super][source_local].append(target_local)
            else:
                key = (source_super, target_super)
                rows = positive.get(key)
                if rows is None:
                    rows = [
                        []
                        for _ in range(numbering.supernode_size(source_super))
                    ]
                    positive[key] = rows
                rows[source_local].append(target_local)
                super_adjacency[source_super].add(target_super)

    for rows in intranode:
        for row in rows:
            row.sort()

    superedges: dict[tuple[int, int], SuperedgeGraph] = {}
    positive_count = 0
    negative_count = 0
    for (source, target), rows in positive.items():
        for row in rows:
            row.sort()
        target_size = numbering.supernode_size(target)
        linked = [local for local, row in enumerate(rows) if row]
        positive_edges = sum(len(rows[local]) for local in linked)
        negative_edges = len(linked) * target_size - positive_edges
        if negative_edges < positive_edges and not force_positive:
            negative_rows: list[tuple[int, ...]] = []
            for local, row in enumerate(rows):
                if not row:
                    negative_rows.append(())
                    continue
                present = set(row)
                negative_rows.append(
                    tuple(t for t in range(target_size) if t not in present)
                )
            superedges[(source, target)] = SuperedgeGraph(
                source=source,
                target=target,
                negative=True,
                rows=tuple(negative_rows),
                linked_sources=tuple(linked),
            )
            negative_count += 1
        else:
            superedges[(source, target)] = SuperedgeGraph(
                source=source,
                target=target,
                negative=False,
                rows=tuple(tuple(row) for row in rows),
            )
            positive_count += 1

    return SNodeModel(
        numbering=numbering,
        super_adjacency=[sorted(adj) for adj in super_adjacency],
        intranode=intranode,
        superedges=superedges,
        positive_count=positive_count,
        negative_count=negative_count,
    )
