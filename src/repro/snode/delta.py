"""In-memory delta overlay making an immutable S-Node build mutable.

The committed build stays exactly as the paper describes it — write-once
regions, pinned supernode graph, CRC'd pages.  Mutations live beside it:
every acknowledged edge addition/deletion from the
:class:`~repro.storage.wal.GraphWal` is folded into a ``DeltaOverlay``,
and the read path (:class:`~repro.baselines.base.SNodeRepresentation`
and its per-client sessions) merges the overlay into each adjacency row
*after* the store's new->old id translation, so queries, sessions and
the daemon all see one logical graph in repository ids.

Structure (the Link3 delta idiom, promoted to the whole store): per
source, a set of **removed** targets and a set of **added** targets,
last-op-wins.  A merge is ``sorted((base - removed) | added)`` — the
same combine :func:`repro.util.deltacodec.apply_delta` performs for
Link3 reference rows.

Concurrency: writes are serialized by the daemon's event loop; readers
(worker threads) never lock.  Each write rebuilds the affected source's
frozen row pair and swaps the dict entry in one bytecode-atomic
assignment, so a concurrent reader sees either the old pair or the new
pair, never a half-built one.

Honest accounting: every merge that actually consults the overlay
charges ``delta_merges`` / ``delta_merge_edges`` to the *reading*
registry (the session's, for daemon connections), so BENCH numbers and
per-request attribution include the cost of mutability.  The counters
are deliberately not part of the serve conservation set — a base build
without an overlay must keep producing byte-identical reports.
"""

from __future__ import annotations

from repro.errors import StorageError
from repro.storage.wal import OP_ADD, OP_REMOVE, GraphWal, WalRecord, WalScan


class DeltaOverlay:
    """Pending edge mutations over one direction of a graph store.

    ``transpose=True`` flips every logged edge, so one WAL drives both
    the forward overlay and the transpose store's overlay.
    """

    def __init__(self, transpose: bool = False) -> None:
        self.transpose = transpose
        #: Writer-side truth: source -> {target: True(added)/False(removed)},
        #: last op wins.  Only ever touched under the writer's serialization
        #: (the daemon event loop).
        self._ops: dict[int, dict[int, bool]] = {}
        #: Reader-side rows: source -> (removed, added) frozen pairs.  Each
        #: write rebuilds one source's pair and swaps the entry atomically.
        self._rows: dict[int, tuple[frozenset, frozenset]] = {}
        self.records_applied = 0

    # -- write path (serialized by the caller) -------------------------------

    def apply(self, op: str, edges) -> int:
        """Fold one add/remove batch in; returns the edge count applied."""
        if op not in (OP_ADD, OP_REMOVE):
            raise StorageError(f"unknown overlay op {op!r}")
        added = op == OP_ADD
        count = 0
        touched: set[int] = set()
        for source, target in edges:
            if self.transpose:
                source, target = target, source
            self._ops.setdefault(int(source), {})[int(target)] = added
            touched.add(int(source))
            count += 1
        for source in touched:
            ops = self._ops[source]
            pair = (
                frozenset(t for t, was_add in ops.items() if not was_add),
                frozenset(t for t, was_add in ops.items() if was_add),
            )
            # One-assignment swap: readers see old or new, never a mix.
            self._rows[source] = pair
        self.records_applied += 1
        return count

    def apply_record(self, record: WalRecord) -> int:
        return self.apply(record.op, record.edges)

    @classmethod
    def replay(
        cls, wal: GraphWal, transpose: bool = False
    ) -> tuple["DeltaOverlay", WalScan]:
        """Rebuild an overlay from a log's intact prefix.

        Torn tails (unacknowledged writes) are dropped by the scan and
        never become overlay state — the phantom-free half of the WAL's
        crash contract.
        """
        overlay = cls(transpose=transpose)
        scan = wal.scan()
        for record in scan.records:
            overlay.apply_record(record)
        return overlay, scan

    # -- read path (lock-free) ----------------------------------------------

    def merge(self, source: int, row: list[int], registry=None) -> list[int]:
        """This source's logical row: base ``row`` with the delta folded in.

        Rows without pending mutations pass through untouched (and
        uncharged) — an overlay that exists but is empty costs a dict
        probe, nothing more.
        """
        pair = self._rows.get(source)
        if pair is None:
            return row
        removed, added = pair
        if registry is not None:
            registry.inc("delta_merges")
            registry.inc("delta_merge_edges", len(removed) + len(added))
        return sorted((set(row) - removed) | added)

    # -- introspection -------------------------------------------------------

    @property
    def edge_count(self) -> int:
        """Pending per-edge deltas (adds + removes, after last-op-wins)."""
        return sum(len(removed) + len(added) for removed, added in self._rows.values())

    @property
    def row_count(self) -> int:
        """Sources with at least one pending delta."""
        return len(self._rows)

    @property
    def empty(self) -> bool:
        return not self._rows


def merged_repository(repository, base, overlay: DeltaOverlay):
    """A repository whose graph is ``base`` (a forward
    :class:`~repro.baselines.base.GraphRepresentation`) with ``overlay``
    folded in — the input compaction feeds back through the build
    pipeline.

    Reads the *stored* base rows, not ``repository.graph``: after one
    compaction the committed store is ahead of the original crawl graph,
    and chaining compactions from the store keeps the WAL the only
    source of truth for what is not yet durable.
    """
    from repro.graph.digraph import Digraph
    from repro.webdata.corpus import Repository

    rows: list[list[int]] = [[] for _ in range(base.num_pages)]
    for page, row in base.iterate_all():
        rows[page] = overlay.merge(page, row)
    return Repository(
        pages=repository.pages, graph=Digraph.from_adjacency(rows)
    )
