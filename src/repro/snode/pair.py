"""Bidirectional S-Node access: forward and backlink builds as one object.

The paper builds representations "of the Web graph and its transpose
using each of the schemes" because half the complex queries navigate
backlinks.  :class:`SNodePair` packages the two builds, exposes both
directions, and wires a :class:`~repro.query.engine.QueryEngine` in one
call — the pattern every example and experiment otherwise repeats.
"""

from __future__ import annotations

from dataclasses import replace
from pathlib import Path

from repro.baselines.base import SNodeRepresentation
from repro.snode.build import BuildOptions, SNodeBuild, build_snode
from repro.webdata.corpus import Repository


class SNodePair:
    """Forward (WG) + transpose (WGT) S-Node builds over one repository."""

    def __init__(self, forward: SNodeBuild, backward: SNodeBuild) -> None:
        self.forward_build = forward
        self.backward_build = backward
        self.forward = SNodeRepresentation(forward)
        self.backward = SNodeRepresentation(backward)

    @classmethod
    def build(
        cls,
        repository: Repository,
        root: Path | str,
        options: BuildOptions | None = None,
    ) -> "SNodePair":
        """Build both directions under ``root`` (subdirs ``wg``/``wgt``).

        The same partition configuration drives both builds, matching the
        paper's protocol.
        """
        root = Path(root)
        options = options or BuildOptions()
        forward = build_snode(repository, root / "wg", options)
        backward = build_snode(
            repository,
            root / "wgt",
            replace(options, transpose=True),
        )
        return cls(forward, backward)

    def out_neighbors(self, page: int) -> list[int]:
        """Forward adjacency (repository ids)."""
        return self.forward.out_neighbors(page)

    def in_neighbors(self, page: int) -> list[int]:
        """Backlinks (repository ids)."""
        return self.backward.out_neighbors(page)

    def make_engine(self, repository: Repository, text_index, pagerank_index):
        """A ready :class:`~repro.query.engine.QueryEngine` over this pair."""
        from repro.query.engine import QueryEngine

        return QueryEngine(
            repository, text_index, pagerank_index, self.forward, self.backward
        )

    def total_bits_per_edge(self) -> tuple[float, float]:
        """(WG, WGT) bits-per-edge — the two Table 1 cells for S-Node."""
        return (
            self.forward_build.bits_per_edge,
            self.backward_build.bits_per_edge,
        )

    def reset_stats(self) -> None:
        """Zero instrumentation on both stores."""
        self.forward_build.store.stats.reset()
        self.backward_build.store.stats.reset()

    def close(self) -> None:
        """Close both stores."""
        self.forward.close()
        self.backward.close()

    def __enter__(self) -> "SNodePair":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
