"""Staged, checkpointed, resumable S-Node build pipeline.

The build decomposes into six named stages::

    ingest -> refine -> number -> model -> encode -> assemble

Each stage's outcome is checkpointed inside the build's
:class:`~repro.storage.atomic.BuildTransaction` tmp directory (a small
JSON payload in the registry plus, for the heavy stages, a pickled
artifact under ``.stages/`` whose SHA-256 the registry records).  The
registry is replaced atomically after every stage, so a crash at any
point leaves a clean prefix of completed stages; ``resume=True`` then
re-verifies that prefix and reruns only what is missing or stale.

Ingest always recomputes (the repository lives in memory) but its
checkpoint carries a fingerprint of the input graph and the build
options — resuming against a different repository or different knobs
silently falls back to a fresh build rather than splicing mismatched
stages together.

Assemble (auxiliary tables + manifest) always reruns: it is cheap,
byte-deterministic given the encode checkpoint, and rerunning it is what
guarantees the manifest's file table and digest come out identical on
every resume path.  Checkpoint state is torn down at commit, so a
committed build is byte-identical whether it was interrupted zero or N
times, and for any worker count.
"""

from __future__ import annotations

import hashlib
import pickle
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

from repro.errors import BuildError
from repro.obs import tracing
from repro.partition.partition import Partition
from repro.partition.refine import (
    RefinementConfig,
    RefinementResult,
    refine_partition,
)
from repro.snode.build import BuildOptions, SNodeBuild
from repro.snode.model import build_model
from repro.snode.numbering import Numbering, build_numbering
from repro.snode.pipeline import pool
from repro.snode.storage import (
    EncodedPayloads,
    GraphLocation,
    encode_payloads,
    write_tables,
)
from repro.snode.store import SNodeStore
from repro.storage.atomic import BuildTransaction
from repro.webdata.corpus import Repository

#: Stage names, in execution order.
STAGES = ("ingest", "refine", "number", "model", "encode", "assemble")


@dataclass(frozen=True)
class StageRun:
    """How one stage concluded: wall-clock seconds, or resumed for free."""

    name: str
    seconds: float
    resumed: bool


def _dumps(value) -> bytes:
    """Deterministic pickling for stage artifacts (fixed protocol)."""
    return pickle.dumps(value, protocol=4)


def _dump_encoded(encoded: EncodedPayloads) -> bytes:
    """Flatten an :class:`EncodedPayloads` to plain picklable tuples."""
    state = (
        tuple(
            (loc.file_index, loc.offset, loc.length, loc.crc)
            for loc in encoded.intranode
        ),
        tuple(
            (key, (loc.file_index, loc.offset, loc.length, loc.crc), negative)
            for key, (loc, negative) in encoded.superedge.items()
        ),
        tuple(encoded.index_files),
        encoded.payload_bytes,
        encoded.intranode_bytes,
        encoded.superedge_bytes,
        encoded.supernode_payload,
        encoded.shards,
        encoded.workers,
    )
    return _dumps(state)


def _load_encoded(data: bytes) -> EncodedPayloads:
    """Inverse of :func:`_dump_encoded`."""
    (
        intranode,
        superedge,
        index_files,
        payload_bytes,
        intranode_bytes,
        superedge_bytes,
        supernode_payload,
        shards,
        workers,
    ) = pickle.loads(data)
    return EncodedPayloads(
        intranode=[GraphLocation(*entry) for entry in intranode],
        superedge={
            tuple(key): (GraphLocation(*loc), negative)
            for key, loc, negative in superedge
        },
        index_files=list(index_files),
        payload_bytes=payload_bytes,
        intranode_bytes=intranode_bytes,
        superedge_bytes=superedge_bytes,
        supernode_payload=supernode_payload,
        shards=shards,
        workers=workers,
    )


class BuildPipeline:
    """Run the staged S-Node build (the engine behind ``build_snode``).

    ``on_stage_complete(name)`` — an optional hook invoked right after
    each stage's checkpoint is persisted (and, for ``assemble``, after
    the manifest is written but before commit).  The fault-injection
    tests raise :class:`~repro.storage.faults.SimulatedCrash` from it to
    kill the build at exact stage boundaries.
    """

    def __init__(
        self,
        repository: Repository,
        root: Path | str,
        options: BuildOptions | None = None,
        partition: Partition | None = None,
        progress=None,
        resume: bool = False,
        on_stage_complete: Callable[[str], None] | None = None,
    ) -> None:
        self.repository = repository
        self.root = Path(root)
        self.options = options or BuildOptions()
        self.partition = partition
        self.progress = progress
        self.resume = resume
        self.on_stage_complete = on_stage_complete
        self.stage_runs: list[StageRun] = []
        self._transaction: BuildTransaction | None = None
        self._invalidated = False

    # -- input fingerprint -------------------------------------------------

    def _fingerprint(self) -> str:
        """Identity of (graph, options, provided partition) for resume.

        Everything that can change the bytes of the finished build is in
        here; knobs that cannot (worker count, open-time buffer size)
        deliberately are not, so a build started with ``--workers 4``
        resumes fine under ``--workers 1``.
        """
        graph = self.repository.graph
        digest = hashlib.sha256()
        digest.update(graph.offsets.tobytes())
        digest.update(graph.targets.tobytes())
        options = self.options
        spec = (
            self.repository.num_pages,
            repr(options.refinement),
            options.max_file_bytes,
            options.reference_window,
            options.full_affinity_limit,
            options.use_dictionary,
            options.force_positive_superedges,
            options.transpose,
        )
        digest.update(repr(spec).encode())
        if self.partition is not None:
            elements = tuple(
                (e.pages, e.domain, e.url_depth, e.url_split_exhausted)
                for e in self.partition.elements()
            )
            digest.update(_dumps((self.partition.num_pages, elements)))
        return digest.hexdigest()

    # -- stage driver ------------------------------------------------------

    def _stage(
        self,
        name: str,
        compute: Callable[[], object],
        dump: Callable[[object], bytes] | None = None,
        load: Callable[[bytes], object] | None = None,
        payload: dict | None = None,
    ):
        """Run one stage, or restore it from a verified checkpoint.

        The first stage that cannot be restored drops every later
        checkpoint (the registry must stay a clean prefix) and flips the
        pipeline into compute mode for the rest of the run.
        """
        transaction = self._transaction
        if not self._invalidated:
            entry = transaction.completed_stage(name)
            if entry is not None:
                try:
                    value = (
                        load(transaction.stage_artifact(name))
                        if load is not None
                        else entry
                    )
                    self.stage_runs.append(StageRun(name, 0.0, True))
                    return value
                except Exception:
                    # Unreadable artifact: treat the stage as incomplete.
                    pass
            position = STAGES.index(name)
            transaction.drop_stages(STAGES[position:])
            self._invalidated = True
        started = time.perf_counter()
        value = compute()
        transaction.checkpoint_stage(
            name,
            payload=payload,
            artifact=dump(value) if dump is not None else None,
        )
        self.stage_runs.append(
            StageRun(name, time.perf_counter() - started, False)
        )
        if self.on_stage_complete is not None:
            self.on_stage_complete(name)
        return value

    # -- the pipeline ------------------------------------------------------

    def run(self) -> SNodeBuild:
        """Execute (or resume) every stage, commit, and open the store."""
        repository = self.repository
        options = self.options
        workers = pool.resolve_workers(options.workers)
        fingerprint = self._fingerprint()

        transaction = BuildTransaction(self.root, resume=self.resume)
        if transaction.resumed:
            entry = transaction.stages.get("ingest", {})
            if entry.get("payload", {}).get("fingerprint") != fingerprint:
                # Different input or knobs: the checkpoints describe some
                # other build — start over rather than splice.
                transaction = BuildTransaction(self.root, resume=False)
        self._transaction = transaction
        self._invalidated = not transaction.resumed

        self._stage(
            "ingest",
            compute=lambda: None,
            payload={
                "fingerprint": fingerprint,
                "num_pages": repository.num_pages,
                "num_links": repository.graph.num_edges,
            },
        )

        def run_refine() -> RefinementResult:
            if self.partition is not None:
                return RefinementResult(
                    partition=self.partition, stop_reason="external partition"
                )
            with tracing.span("build.refine", pages=repository.num_pages):
                return refine_partition(
                    repository,
                    options.refinement or RefinementConfig(),
                    progress=self.progress,
                )

        refine_result: RefinementResult = self._stage(
            "refine",
            compute=run_refine,
            dump=lambda result: result.to_artifact(),
            load=RefinementResult.from_artifact,
        )
        refinement = refine_result if self.partition is None else None
        partition = (
            self.partition if self.partition is not None
            else refine_result.partition
        )
        if partition.num_pages != repository.num_pages:
            raise BuildError("partition size does not match repository")

        def run_number() -> Numbering:
            with tracing.span(
                "build.numbering", elements=partition.num_elements
            ):
                return build_numbering(repository, partition)

        numbering: Numbering = self._stage(
            "number", compute=run_number, dump=_dumps, load=pickle.loads
        )

        def run_model():
            graph = (
                repository.graph.transpose()
                if options.transpose
                else repository.graph
            )
            with tracing.span("build.model", transpose=options.transpose):
                return build_model(
                    graph,
                    numbering,
                    force_positive=options.force_positive_superedges,
                )

        model = self._stage(
            "model", compute=run_model, dump=_dumps, load=pickle.loads
        )

        def run_encode() -> EncodedPayloads:
            with tracing.span(
                "build.encode",
                supernodes=model.num_supernodes,
                superedges=model.num_superedges,
                workers=workers,
            ):
                return encode_payloads(
                    model,
                    transaction,
                    max_file_bytes=options.max_file_bytes,
                    window=options.reference_window,
                    full_affinity_limit=options.full_affinity_limit,
                    use_dictionary=options.use_dictionary,
                    workers=workers,
                    progress=self.progress,
                )

        def load_encoded(data: bytes) -> EncodedPayloads:
            # Beyond the artifact's own SHA-256: the stage also produced
            # the index files, so restoring it requires each one to still
            # be on disk with the size the files table recorded.
            restored = _load_encoded(data)
            for name in restored.index_files:
                recorded = transaction.files.get(name)
                path = transaction.path(name)
                if (
                    not recorded
                    or not path.exists()
                    or path.stat().st_size != recorded["bytes"]
                ):
                    raise BuildError(f"index file {name} failed verification")
            return restored

        encoded: EncodedPayloads = self._stage(
            "encode", compute=run_encode, dump=_dump_encoded, load=load_encoded
        )

        # Assemble always reruns (idempotent, cheap): rewriting the aux
        # tables + manifest from the encode checkpoint is what makes every
        # resume path byte-identical.  The hook still fires so crash tests
        # can kill the build between manifest and commit.
        started = time.perf_counter()
        with tracing.span("build.assemble"):
            manifest = write_tables(
                model,
                transaction,
                encoded,
                window=options.reference_window,
                full_affinity_limit=options.full_affinity_limit,
            )
        self.stage_runs.append(
            StageRun("assemble", time.perf_counter() - started, False)
        )
        if self.on_stage_complete is not None:
            self.on_stage_complete("assemble")
        transaction.commit()

        with tracing.span("build.open"):
            store = SNodeStore(self.root, buffer_bytes=options.buffer_bytes)
        return SNodeBuild(
            store=store,
            numbering=numbering,
            model=model,
            refinement=refinement,
            manifest=manifest,
            root=self.root,
            stage_seconds={run.name: run.seconds for run in self.stage_runs},
            resumed_stages=tuple(
                run.name for run in self.stage_runs if run.resumed
            ),
            workers=workers,
            shards=encoded.shards,
        )
