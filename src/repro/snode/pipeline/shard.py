"""Picklable encode shards (the *map* half of the two-phase encode).

A :class:`ShardTask` names a contiguous run of supernodes plus the
encoding knobs — nothing else.  The model itself never rides inside
tasks: forked workers inherit it copy-on-write through the module global
installed by :func:`install_model`, and spawn-based pools receive it
once per worker via the pool initializer.  Shipping ranges instead of
graph slices is what makes the fan-out pay off — the per-shard IPC cost
is a few integers out and the *compressed* payload bytes back.

Determinism: payload encoding is per-graph (the only global code table,
the supernode-graph Huffman codec, is frozen *before* sharding), so a
graph's bytes do not depend on which shard or worker encoded it.  The
parent re-assembles results in supernode order, which is why shard
boundaries and worker counts never change the bytes on disk.

Workers record their encode spans on a private
:class:`~repro.obs.tracing.Tracer` and ship the per-name aggregates home
in ``ShardResult.span_summary``; the parent absorbs them under a
``worker.`` prefix so traced builds account for child-process time.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import BuildError
from repro.obs import tracing
from repro.snode.encode import encode_intranode, encode_superedge
from repro.snode.model import SNodeModel

#: The model encode workers read; set by :func:`install_model` in the
#: parent (inherited over fork) or by the spawn pool initializer.
_WORKER_MODEL: SNodeModel | None = None


def install_model(model: SNodeModel | None) -> None:
    """Install (or clear, with None) the model shards encode against."""
    global _WORKER_MODEL
    _WORKER_MODEL = model


@dataclass(frozen=True)
class ShardTask:
    """A contiguous supernode range plus the encoding parameters."""

    index: int
    first: int
    last: int  # past-the-end
    window: int
    full_affinity_limit: int
    use_dictionary: bool

    @property
    def num_supernodes(self) -> int:
        """Supernodes this shard covers."""
        return self.last - self.first


@dataclass(frozen=True)
class EncodedUnit:
    """One supernode's encode output, in linear-layout order."""

    supernode: int
    intranode_payload: bytes
    superedges: tuple[tuple[int, bytes, bool], ...]  # (target, payload, neg)


@dataclass(frozen=True)
class ShardResult:
    """Encoded payloads of one shard plus the worker's span aggregates."""

    index: int
    units: tuple[EncodedUnit, ...]
    span_summary: dict


def plan_shards(
    model: SNodeModel,
    window: int,
    full_affinity_limit: int,
    use_dictionary: bool,
    workers: int,
) -> list[ShardTask]:
    """Split the supernode range into contiguous, roughly equal shards.

    Over-decomposes to ~4 shards per worker so a skewed shard (one huge
    supernode) cannot straggle the whole pool; shard boundaries never
    affect output bytes, only load balance.
    """
    n = model.num_supernodes
    if n == 0:
        return []
    shard_count = min(n, max(1, workers) * 4)
    return [
        ShardTask(
            index=index,
            first=index * n // shard_count,
            last=(index + 1) * n // shard_count,
            window=window,
            full_affinity_limit=full_affinity_limit,
            use_dictionary=use_dictionary,
        )
        for index in range(shard_count)
    ]


def encode_shard(task: ShardTask, model: SNodeModel | None = None) -> ShardResult:
    """Encode one shard's payloads (runs in a worker or in-process).

    ``model`` defaults to the installed worker model.  Spans land on a
    shard-local tracer whose summary rides back in the result; the
    stored tree is kept minimal (aggregates stay exact).
    """
    if model is None:
        model = _WORKER_MODEL
    if model is None:
        raise BuildError("no model installed for shard encoding")
    tracer = tracing.Tracer(max_spans=1)
    encoded: list[EncodedUnit] = []
    with tracing.activated(tracer):
        for supernode in range(task.first, task.last):
            with tracing.span("encode.intranode"):
                intranode_payload = encode_intranode(
                    model.intranode[supernode],
                    window=task.window,
                    full_affinity_limit=task.full_affinity_limit,
                    use_dictionary=task.use_dictionary,
                )
            superedges: list[tuple[int, bytes, bool]] = []
            for target in model.super_adjacency[supernode]:
                graph = model.superedges[(supernode, target)]
                with tracing.span("encode.superedge"):
                    payload = encode_superedge(
                        graph,
                        window=task.window,
                        full_affinity_limit=task.full_affinity_limit,
                        use_dictionary=task.use_dictionary,
                    )
                superedges.append((target, payload, graph.negative))
            encoded.append(
                EncodedUnit(
                    supernode=supernode,
                    intranode_payload=intranode_payload,
                    superedges=tuple(superedges),
                )
            )
    return ShardResult(
        index=task.index, units=tuple(encoded), span_summary=tracer.summary()
    )
