"""Worker-pool plumbing for the parallel encode stage.

``workers == 1`` never touches ``multiprocessing`` — shards run inline,
so the serial path has zero parallelism overhead and works on platforms
where process pools are restricted.  For ``workers > 1`` shards fan out
over a process pool and results stream back **in task order**
(``imap``), letting the parent append payloads to the index files while
later shards are still encoding.

The worker count resolves from, in priority order: the explicit
``--workers`` value, the ``REPRO_BUILD_WORKERS`` environment variable,
then the serial default of 1.
"""

from __future__ import annotations

import os
from collections.abc import Iterator, Sequence

from repro.errors import BuildError
from repro.snode.model import SNodeModel
from repro.snode.pipeline import shard as shard_mod
from repro.snode.pipeline.shard import ShardResult, ShardTask, encode_shard

#: Environment override for the default worker count.
ENV_WORKERS = "REPRO_BUILD_WORKERS"


def resolve_workers(workers: int | None = None) -> int:
    """Effective worker count: explicit value, else env var, else 1."""
    if workers is None:
        raw = os.environ.get(ENV_WORKERS, "").strip()
        if not raw:
            return 1
        try:
            workers = int(raw)
        except ValueError:
            raise BuildError(
                f"{ENV_WORKERS} must be a positive integer, got {raw!r}"
            ) from None
    if workers < 1:
        raise BuildError(f"worker count must be >= 1, got {workers}")
    return workers


def _pool_context():
    """Prefer fork (cheap, shares the frozen codec pages); spawn fallback."""
    import multiprocessing

    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - platform without fork
        return multiprocessing.get_context("spawn")


def run_shards(
    tasks: Sequence[ShardTask], workers: int, model: SNodeModel
) -> Iterator[ShardResult]:
    """Encode ``model``'s shards, yielding results in task order.

    The ordered stream is the determinism anchor: whatever the pool's
    completion order, the consumer sees shard 0's payloads first, so the
    index files come out byte-identical to a serial run.

    Workers get the model out-of-band (fork inheritance of the installed
    module global, or one initializer hand-off per spawn worker); tasks
    themselves are a few integers each.
    """
    if workers <= 1 or len(tasks) <= 1:
        for task in tasks:
            yield encode_shard(task, model)
        return
    context = _pool_context()
    processes = min(workers, len(tasks))
    if context.get_start_method() == "fork":
        shard_mod.install_model(model)
        try:
            with context.Pool(processes=processes) as pool:
                yield from pool.imap(encode_shard, tasks)
        finally:
            shard_mod.install_model(None)
    else:  # pragma: no cover - spawn-only platforms
        with context.Pool(
            processes=processes,
            initializer=shard_mod.install_model,
            initargs=(model,),
        ) as pool:
            yield from pool.imap(encode_shard, tasks)
