"""Staged S-Node build pipeline: stages, checkpoints, shards, workers.

Public surface:

* :class:`~repro.snode.pipeline.core.BuildPipeline` — the staged,
  checkpointed, resumable builder behind ``build_snode``;
* :data:`~repro.snode.pipeline.core.STAGES` — stage names in order;
* :func:`~repro.snode.pipeline.pool.resolve_workers` /
  :data:`~repro.snode.pipeline.pool.ENV_WORKERS` — worker-count policy;
* the shard layer (:mod:`~repro.snode.pipeline.shard`) — picklable
  encode tasks for the ``multiprocessing`` fan-out.
"""

from repro.snode.pipeline.core import STAGES, BuildPipeline, StageRun
from repro.snode.pipeline.pool import ENV_WORKERS, resolve_workers, run_shards
from repro.snode.pipeline.shard import (
    EncodedUnit,
    ShardResult,
    ShardTask,
    encode_shard,
    install_model,
    plan_shards,
)

__all__ = [
    "BuildPipeline",
    "STAGES",
    "StageRun",
    "ENV_WORKERS",
    "resolve_workers",
    "run_shards",
    "ShardTask",
    "ShardResult",
    "EncodedUnit",
    "encode_shard",
    "install_model",
    "plan_shards",
]
