"""The S-Node representation (the paper's core contribution).

Public entry points:

* :func:`~repro.snode.build.build_snode` -- build a complete on-disk
  S-Node representation from a :class:`~repro.webdata.corpus.Repository`.
* :class:`~repro.snode.store.SNodeStore` -- query-facing access object.
"""

from repro.snode.build import BuildOptions, SNodeBuild, build_snode
from repro.snode.model import SNodeModel, build_model
from repro.snode.numbering import Numbering, build_numbering
from repro.snode.store import SNodeStore

__all__ = [
    "BuildOptions",
    "SNodeBuild",
    "build_snode",
    "SNodeModel",
    "build_model",
    "Numbering",
    "build_numbering",
    "SNodeStore",
]
