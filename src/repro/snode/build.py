"""End-to-end S-Node builder (façade over the staged pipeline).

``build_snode`` chains the full pipeline of section 3:

    repository -> iterative partition refinement -> numbering ->
    logical model (supernode/intranode/superedge graphs) ->
    physical encoding -> on-disk layout

and returns a :class:`SNodeBuild` bundling the opened store, the
numbering, refinement statistics and the size accounting that feeds
Table 1 and Figures 9/10.  Passing ``transpose=True`` builds the
representation of WGT (backlinks) instead, reusing the same partition —
the paper builds both for every scheme.

Since the staged-pipeline refactor the heavy lifting lives in
:class:`repro.snode.pipeline.BuildPipeline`: every stage checkpoints
inside the build transaction's tmp directory, the encode stage can fan
out across a ``multiprocessing`` worker pool (``BuildOptions.workers``,
or the ``REPRO_BUILD_WORKERS`` environment variable), and
``build_snode(..., resume=True)`` picks an interrupted build up from its
last completed stage.  Output bytes are identical for every worker count
and every resume path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import StorageError
from repro.partition.partition import Partition
from repro.partition.refine import RefinementConfig, RefinementResult
from repro.snode.encode import supernode_graph_size_bytes
from repro.snode.model import SNodeModel
from repro.snode.numbering import Numbering
from repro.snode.storage import DEFAULT_MAX_FILE_BYTES
from repro.snode.store import DEFAULT_BUFFER_BYTES, SNodeStore
from repro.webdata.corpus import Repository


@dataclass(frozen=True)
class BuildOptions:
    """Knobs of the S-Node build."""

    refinement: RefinementConfig | None = None
    max_file_bytes: int = DEFAULT_MAX_FILE_BYTES
    buffer_bytes: int = DEFAULT_BUFFER_BYTES
    reference_window: int = 8
    full_affinity_limit: int = 96
    # Ablation switches: turn off the per-graph target dictionary and/or
    # force every superedge graph positive (disable the pos/neg choice).
    use_dictionary: bool = True
    force_positive_superedges: bool = False
    transpose: bool = False
    # Encode-stage worker processes; None defers to REPRO_BUILD_WORKERS
    # (default 1 = serial).  Never changes output bytes, only wall-clock.
    workers: int | None = None


@dataclass
class SNodeBuild:
    """Everything a caller needs after a build.

    ``model`` is None when the build was *opened* from a committed
    directory (:func:`open_snode`) rather than built in-process: serving
    only needs the store and the numbering, and the logical model is not
    persisted.  Accessors that require it (``total_edges``,
    ``bits_per_edge``) raise a typed error in that case.
    """

    store: SNodeStore
    numbering: Numbering
    model: SNodeModel | None
    refinement: RefinementResult | None
    manifest: dict
    root: Path
    #: Wall-clock seconds per pipeline stage (0.0 for resumed stages).
    stage_seconds: dict = field(default_factory=dict)
    #: Stages restored from checkpoints instead of recomputed.
    resumed_stages: tuple = ()
    #: Effective encode worker count and shard count of this build.
    workers: int = 1
    shards: int = 1

    @property
    def bits_per_edge(self) -> float:
        """Structure bits per edge: payloads + supernode graph + pointers.

        This matches the paper's Table 1 metric (total representation size
        over edge count).  The PageID index is included; the new-id map and
        domain index are auxiliary structures every scheme shares and are
        excluded, as in the paper.
        """
        num_edges = self.total_edges()
        if num_edges == 0:
            return 0.0
        total_bytes = (
            self.manifest["payload_bytes"]
            + supernode_graph_size_bytes(self.model)
            + self.manifest["pageid_bytes"]
        )
        return total_bytes * 8.0 / num_edges

    def total_edges(self) -> int:
        """Number of Web-graph edges represented."""
        if self.model is None:
            raise StorageError(
                "edge counts need the logical model, which is not "
                "persisted; this build was opened from disk "
                f"({self.root}) — rebuild to recover it"
            )
        intra = sum(
            len(row) for rows in self.model.intranode for row in rows
        )
        inter = 0
        for (source, target), graph in self.model.superedges.items():
            if graph.negative:
                target_size = self.numbering.supernode_size(target)
                inter += len(graph.linked_sources) * target_size - graph.num_edges
            else:
                inter += graph.num_edges
        return intra + inter

    def translate_out(self, old_page: int) -> list[int]:
        """Adjacency list of an *old* page id, returned in old ids."""
        new_page = self.numbering.old_to_new[old_page]
        return sorted(
            self.numbering.new_to_old[t] for t in self.store.out_neighbors(new_page)
        )


def build_snode(
    repository: Repository,
    root: Path | str,
    options: BuildOptions | None = None,
    partition: Partition | None = None,
    progress=None,
    resume: bool = False,
) -> SNodeBuild:
    """Build, serialize and open an S-Node representation under ``root``.

    Each pipeline stage runs inside a tracing span on the currently
    activated tracer (``build.refine`` / ``build.numbering`` /
    ``build.model`` / ``build.encode`` / ``build.assemble`` /
    ``build.open``), so ``repro build --trace`` attributes build time to
    phases; encode-worker span aggregates are absorbed under a
    ``worker.`` prefix.  ``progress`` (an optional
    :class:`~repro.obs.progress.ProgressReporter`) is threaded into the
    refinement loop and the supernode encoder.  ``resume=True`` continues
    an interrupted build from its last completed stage checkpoint —
    producing exactly the bytes an uninterrupted build would have.
    """
    # Deferred import: pipeline.core imports this module's dataclasses.
    from repro.snode.pipeline.core import BuildPipeline

    return BuildPipeline(
        repository,
        root,
        options=options,
        partition=partition,
        progress=progress,
        resume=resume,
    ).run()


def open_snode(
    root: Path | str,
    buffer_bytes: int = DEFAULT_BUFFER_BYTES,
    stripes: int = 1,
    on_corruption: str = "raise",
) -> SNodeBuild:
    """Open a *committed* build directory for serving, without rebuilding.

    Reconstructs the :class:`~repro.snode.numbering.Numbering` from the
    stored tables (the new-id permutation inverts to ``old_to_new``, the
    PageID index gives the boundaries, ``domain.json`` inverts to the
    per-supernode domain list) and returns an :class:`SNodeBuild` with
    ``model=None`` — everything the query engine needs, none of the
    build-time state.  This is the open half of the hot-swap protocol: a
    daemon validates a freshly built directory and opens it with this
    function while still serving the old store.
    """
    root = Path(root)
    store = SNodeStore(
        root,
        buffer_bytes=buffer_bytes,
        stripes=stripes,
        on_corruption=on_corruption,
    )
    new_to_old = tuple(store.new_to_old)
    old_to_new = [0] * len(new_to_old)
    for new_page, old_page in enumerate(new_to_old):
        old_to_new[old_page] = new_page
    supernode_domains = [""] * store.num_supernodes
    for domain, supernodes in store.domains.items():
        for supernode in supernodes:
            supernode_domains[supernode] = domain
    numbering = Numbering(
        old_to_new=tuple(old_to_new),
        new_to_old=new_to_old,
        boundaries=tuple(store.boundaries),
        supernode_domains=tuple(supernode_domains),
    )
    return SNodeBuild(
        store=store,
        numbering=numbering,
        model=None,
        refinement=None,
        manifest=store.manifest,
        root=root,
    )
