"""Integrity verification for a stored S-Node representation.

``verify_snode`` checks everything short of re-deriving the original Web
graph: manifest consistency, pointer-table sanity (extents inside their
files, the Figure-8 linear ordering), PageID-index monotonicity, and —
optionally — that every intranode and superedge payload actually decodes
and has rows matching its supernode's size.

Returns a :class:`VerificationReport`; ``report.ok`` is True when no
problem was found.  This is the tool a repository operator runs after
copying index files between machines.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from struct import error as struct_error

from repro.errors import ReproError
from repro.snode.encode import decode_intranode, decode_superedge_payload
from repro.snode.storage import StorageLayout, read_layout
from repro.storage import integrity


@dataclass
class VerificationReport:
    """Findings of one verification pass."""

    problems: list[str] = field(default_factory=list)
    graphs_checked: int = 0

    @property
    def ok(self) -> bool:
        """True when no problem was found."""
        return not self.problems

    def add(self, problem: str) -> None:
        """Record one problem."""
        self.problems.append(problem)


def verify_snode(root: Path | str, decode_payloads: bool = True) -> VerificationReport:
    """Verify the representation stored under ``root``."""
    root = Path(root)
    report = VerificationReport()
    try:
        layout = read_layout(root)
    except (ReproError, OSError, ValueError, KeyError, struct_error) as exc:
        report.add(f"layout unreadable: {exc!r}")
        return report

    _check_boundaries(layout, report)
    file_sizes = _check_files(root, layout, report)
    _check_pointers(layout, file_sizes, report)
    if decode_payloads and report.ok:
        _check_payloads(root, layout, report)
    return report


def _check_boundaries(layout: StorageLayout, report: VerificationReport) -> None:
    boundaries = layout.boundaries
    if boundaries[0] != 0:
        report.add("PageID index does not start at 0")
    if any(b > a for a, b in zip(boundaries[1:], boundaries)):
        report.add("PageID index is not non-decreasing")
    if boundaries[-1] != layout.manifest["num_pages"]:
        report.add(
            f"PageID index covers {boundaries[-1]} pages, manifest says "
            f"{layout.manifest['num_pages']}"
        )
    if sorted(layout.new_to_old) != list(range(layout.manifest["num_pages"])):
        report.add("new-id map is not a permutation of the page ids")


def _check_files(
    root: Path, layout: StorageLayout, report: VerificationReport
) -> list[int]:
    sizes = []
    for name in layout.index_files:
        path = root / name
        if not path.exists():
            report.add(f"missing index file {name}")
            sizes.append(0)
        else:
            sizes.append(path.stat().st_size)
    total = sum(sizes)
    if total != layout.manifest["payload_bytes"]:
        report.add(
            f"index files hold {total} bytes, manifest says "
            f"{layout.manifest['payload_bytes']}"
        )
    return sizes


def _check_pointers(
    layout: StorageLayout, file_sizes: list[int], report: VerificationReport
) -> None:
    sequence = []
    for supernode, location in enumerate(layout.intranode):
        sequence.append(("intranode", supernode, location))
    for key, (location, _negative) in layout.superedge.items():
        sequence.append(("superedge", key, location))
    for kind, key, location in sequence:
        if location.file_index >= len(file_sizes):
            report.add(f"{kind} {key} points at missing file {location.file_index}")
            continue
        if location.offset + location.length > file_sizes[location.file_index]:
            report.add(
                f"{kind} {key} extent [{location.offset}, "
                f"{location.offset + location.length}) exceeds file "
                f"{location.file_index} of {file_sizes[location.file_index]} bytes"
            )


def _check_payloads(
    root: Path, layout: StorageLayout, report: VerificationReport
) -> None:
    handles = {
        index: open(root / name, "rb")
        for index, name in enumerate(layout.index_files)
    }
    try:
        for supernode, location in enumerate(layout.intranode):
            handle = handles[location.file_index]
            handle.seek(location.offset)
            payload = handle.read(location.length)
            size = layout.boundaries[supernode + 1] - layout.boundaries[supernode]
            if integrity.crc32(payload) != location.crc:
                report.add(f"intranode {supernode} fails its CRC32 check")
                continue
            try:
                rows = decode_intranode(payload)
            except Exception as exc:  # noqa: BLE001 - report, don't crash
                report.add(f"intranode {supernode} does not decode: {exc}")
                continue
            if len(rows) != size:
                report.add(
                    f"intranode {supernode} has {len(rows)} rows, supernode "
                    f"holds {size} pages"
                )
            report.graphs_checked += 1
        for (source, target), (location, negative) in layout.superedge.items():
            handle = handles[location.file_index]
            handle.seek(location.offset)
            payload = handle.read(location.length)
            if integrity.crc32(payload) != location.crc:
                report.add(f"superedge {source}->{target} fails its CRC32 check")
                continue
            try:
                decoded_negative, linked, _rows = decode_superedge_payload(payload)
            except Exception as exc:  # noqa: BLE001
                report.add(f"superedge {source}->{target} does not decode: {exc}")
                continue
            if decoded_negative != negative:
                report.add(
                    f"superedge {source}->{target} polarity flag disagrees "
                    "with pointer table"
                )
            source_size = layout.boundaries[source + 1] - layout.boundaries[source]
            if linked and linked[-1] >= source_size:
                report.add(
                    f"superedge {source}->{target} lists source local "
                    f"{linked[-1]} beyond supernode size {source_size}"
                )
            report.graphs_checked += 1
    finally:
        for handle in handles.values():
            handle.close()
