"""Physical encoders for S-Node components (paper section 3.3).

* The **supernode graph** is Huffman-coded: supernodes appearing often in
  superedge lists (high in-degree) get short codes.
* **Intranode graphs** are reference-encoded row collections over local
  indices.
* **Superedge graphs** store the sorted list of linked source locals
  (gap-coded) followed by a reference-encoded row collection for exactly
  those sources; a leading flag records the positive/negative polarity.

Every payload is byte-aligned so the storage layer can concatenate them
into index files and hand out (offset, length) pointers.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.errors import CodecError
from repro.snode.model import SNodeModel, SuperedgeGraph
from repro.snode.reference import (
    DEFAULT_FULL_AFFINITY_LIMIT,
    DEFAULT_WINDOW,
    build_dictionary,
    decode_rows,
    encode_rows,
    plan_references,
)
from repro.util.bitio import BitReader, BitWriter
from repro.util.huffman import HuffmanCodec
from repro.util.varint import decode_gamma, encode_gamma


# ---------------------------------------------------------------------------
# supernode graph
# ---------------------------------------------------------------------------


def supernode_frequencies(adjacency: Sequence[Sequence[int]]) -> dict[int, int]:
    """In-degree frequency table over all superedge lists.

    This is the *freeze* half of the two-phase encode: collecting symbol
    frequencies across every supernode's adjacency is the only global
    pass the physical encoding needs — once the Huffman table is frozen
    from it, every remaining payload encodes independently.
    """
    frequencies = {i: 0 for i in range(len(adjacency))}
    for row in adjacency:
        for target in row:
            frequencies[target] += 1
    return frequencies


def freeze_supernode_codec(
    frequencies: dict[int, int],
) -> HuffmanCodec | None:
    """Freeze the supernode-graph Huffman code table from frequencies."""
    if not frequencies:
        return None
    return HuffmanCodec.from_frequencies(frequencies)


def encode_supernode_graph(
    adjacency: Sequence[Sequence[int]], codec: HuffmanCodec | None = None
) -> bytes:
    """Huffman-encode the supernode adjacency lists.

    In-degree frequencies drive code assignment (paper: "supernodes with
    high in-degree get smaller codes").  Layout: gamma(n), serialized code
    lengths, then per supernode gamma(out-degree) + target codes.  A
    pre-frozen ``codec`` (from :func:`freeze_supernode_codec`) may be
    supplied; by construction it yields the same bytes as the inline
    frequency pass.
    """
    n = len(adjacency)
    writer = BitWriter()
    encode_gamma(writer, n)
    if n:
        if codec is None:
            codec = HuffmanCodec.from_frequencies(supernode_frequencies(adjacency))
        codec.serialize_lengths(writer)
        for row in adjacency:
            encode_gamma(writer, len(row))
            codec.encode_sequence(writer, row)
    return writer.to_bytes()


def decode_supernode_graph(data: bytes) -> list[list[int]]:
    """Inverse of :func:`encode_supernode_graph`."""
    reader = BitReader(data)
    n = decode_gamma(reader)
    if n == 0:
        return []
    codec = HuffmanCodec.deserialize_lengths(reader)
    adjacency: list[list[int]] = []
    for _ in range(n):
        degree = decode_gamma(reader)
        adjacency.append(codec.decode_sequence(reader, degree))
    return adjacency


# ---------------------------------------------------------------------------
# intranode graphs
# ---------------------------------------------------------------------------


def encode_intranode(
    rows: Sequence[Sequence[int]],
    window: int = DEFAULT_WINDOW,
    full_affinity_limit: int = DEFAULT_FULL_AFFINITY_LIMIT,
    use_dictionary: bool = True,
) -> bytes:
    """Reference-encode one intranode graph (all locals, empties included).

    A per-graph dictionary of recurring local targets (directory hubs, the
    site's home page, ...) precedes the rows, exactly as in superedge
    graphs.
    """
    writer = BitWriter()
    dictionary = build_dictionary([list(r) for r in rows]) if use_dictionary else []
    plan = plan_references(rows, window, full_affinity_limit, dictionary)
    if not plan.used_dictionary:
        dictionary = []
    _encode_locals(writer, dictionary)
    encode_rows(
        writer,
        rows,
        plan=plan,
        window=window,
        full_affinity_limit=full_affinity_limit,
        dictionary=dictionary,
    )
    return writer.to_bytes()


def decode_intranode(data: bytes) -> list[list[int]]:
    """Inverse of :func:`encode_intranode`."""
    reader = BitReader(data)
    dictionary = _decode_locals(reader)
    return decode_rows(reader, dictionary=dictionary)


# ---------------------------------------------------------------------------
# superedge graphs
# ---------------------------------------------------------------------------


def encode_superedge(
    graph: SuperedgeGraph,
    window: int = DEFAULT_WINDOW,
    full_affinity_limit: int = DEFAULT_FULL_AFFINITY_LIMIT,
    use_dictionary: bool = True,
) -> bytes:
    """Encode one superedge graph (either polarity).

    Layout: polarity bit; gamma(#linked sources); gap-coded linked source
    locals; reference-encoded rows for exactly those sources.
    """
    writer = BitWriter()
    writer.write_bit(1 if graph.negative else 0)
    if graph.negative:
        linked = list(graph.linked_sources)
        rows = [list(graph.rows[local]) for local in linked]
    else:
        linked = [local for local, row in enumerate(graph.rows) if row]
        rows = [list(graph.rows[local]) for local in linked]
    _encode_locals(writer, linked)
    dictionary = build_dictionary(rows) if use_dictionary else []
    plan = plan_references(rows, window, full_affinity_limit, dictionary)
    if not plan.used_dictionary:
        dictionary = []
    _encode_locals(writer, dictionary)
    encode_rows(
        writer,
        rows,
        plan=plan,
        window=window,
        full_affinity_limit=full_affinity_limit,
        dictionary=dictionary,
    )
    return writer.to_bytes()


def _encode_locals(writer: BitWriter, locals_list: list[int]) -> None:
    """Sorted local-index list: gamma gaps or RLE bit vector, cheaper wins."""
    from repro.util.rle import bitvector_cost, encode_bitvector
    from repro.util.varint import gamma_cost

    previous = -1
    gaps_cost = gamma_cost(len(locals_list))
    for local in locals_list:
        if local <= previous:
            raise CodecError("linked sources must be strictly increasing")
        gaps_cost += gamma_cost(local - previous - 1)
        previous = local
    bits: list[int] = []
    if locals_list:
        bits = [0] * (locals_list[-1] + 1)
        for local in locals_list:
            bits[local] = 1
    if locals_list and bitvector_cost(bits) < gaps_cost:
        writer.write_bit(1)
        encode_bitvector(writer, bits)
    else:
        writer.write_bit(0)
        encode_gamma(writer, len(locals_list))
        previous = -1
        for local in locals_list:
            encode_gamma(writer, local - previous - 1)
            previous = local


def _decode_locals(reader: BitReader) -> list[int]:
    """Inverse of :func:`_encode_locals`."""
    from repro.util.rle import decode_bitvector

    if reader.read_bit():
        bits = decode_bitvector(reader)
        return [i for i, bit in enumerate(bits) if bit]
    count = decode_gamma(reader)
    locals_list: list[int] = []
    previous = -1
    for _ in range(count):
        previous = previous + 1 + decode_gamma(reader)
        locals_list.append(previous)
    return locals_list


def decode_superedge_payload(data: bytes) -> tuple[bool, list[int], list[list[int]]]:
    """Decode a superedge payload to (negative?, linked locals, their rows)."""
    reader = BitReader(data)
    negative = bool(reader.read_bit())
    linked = _decode_locals(reader)
    dictionary = _decode_locals(reader)
    rows = decode_rows(reader, dictionary=dictionary)
    if len(rows) != len(linked):
        raise CodecError("superedge row count mismatch")
    return negative, linked, rows


def positive_rows_from_payload(
    data: bytes, source_size: int, target_size: int
) -> list[list[int]]:
    """Decode a superedge payload straight to positive rows (all sources)."""
    negative, linked, rows = decode_superedge_payload(data)
    result: list[list[int]] = [[] for _ in range(source_size)]
    if negative:
        for local, missing in zip(linked, rows):
            absent = set(missing)
            result[local] = [t for t in range(target_size) if t not in absent]
    else:
        for local, row in zip(linked, rows):
            result[local] = list(row)
    return result


# ---------------------------------------------------------------------------
# whole-model size accounting (drives Table 1 / Figure 10)
# ---------------------------------------------------------------------------

#: The paper's Figure 10 counts a 4-byte pointer per supernode-graph vertex
#: and per superedge on top of the Huffman payload.
POINTER_BYTES = 4


def supernode_graph_size_bytes(model: SNodeModel) -> int:
    """Huffman payload + 4-byte pointers per vertex and edge (Figure 10)."""
    payload = len(encode_supernode_graph(model.super_adjacency))
    pointers = POINTER_BYTES * (model.num_supernodes + model.num_superedges)
    return payload + pointers
