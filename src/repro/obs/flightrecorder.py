"""Flight recorder: bounded retention of complete request traces.

The serving daemon produces one **trace document** per request — a plain
JSON-ready dict joining the request's lifecycle record (phases, outcome,
attributed session counter deltas) with its span tree (stable-id records
from :meth:`repro.obs.tracing.Tracer.span_records`).  A
:class:`FlightRecorder` keeps those documents *after* the reply has been
sent, so a slow request can be explained hours later without re-running
it:

* a **recent ring** — the last N traces regardless of speed (context for
  "what was the daemon doing around then");
* a **slow top-K** — the K slowest traces at or above a threshold, a
  min-heap keyed on server time (the same shape as
  :class:`~repro.obs.accesslog.SlowQueryLog`, but retaining the whole
  trace, not a log line);
* an **error ring** — the last traces whose outcome was not ``ok``.

Recording is always on and near-zero cost for fast requests: one lock,
one deque append, one threshold comparison.  The expensive part —
building the span records — is paid once per request by the daemon and
only for requests that were traced at all.

A recorder (plus surrounding state) dumps to a **debug bundle**: one
directory holding ``MANIFEST.json``, ``traces.jsonl`` (schema header
line + one trace per line), ``stats.json``, ``config.json`` and
``slow.jsonl`` — everything needed to reproduce a "why was this slow"
investigation offline.  :func:`write_debug_bundle` /
:func:`read_debug_bundle` are the two directions;
:func:`render_waterfall` and :func:`fold_traces` turn traces back into
something a human reads (the ``repro trace`` CLI).
"""

from __future__ import annotations

import heapq
import json
import threading
import time
from collections import deque
from pathlib import Path

from repro.obs.tracing import ROOT_PARENT

#: Schema name/version of a trace document and of ``traces.jsonl``.
TRACE_SCHEMA = "repro-trace"
TRACE_SCHEMA_VERSION = 1

#: Schema name/version of a debug-bundle manifest.
BUNDLE_SCHEMA = "repro-debug-bundle"
BUNDLE_SCHEMA_VERSION = 1

#: File names inside a debug bundle.
BUNDLE_MANIFEST = "MANIFEST.json"
BUNDLE_TRACES = "traces.jsonl"
BUNDLE_STATS = "stats.json"
BUNDLE_CONFIG = "config.json"
BUNDLE_SLOW = "slow.jsonl"

#: Request lifecycle phases in order (must match
#: ``repro.serve.telemetry.PHASES``; the serve tests assert equality so
#: the two layers cannot drift).
LIFECYCLE_PHASES = ("decode", "queue_wait", "execute", "encode", "reply")

#: Defaults for the three retention classes.
DEFAULT_RECENT = 256
DEFAULT_SLOW_TOP = 32
DEFAULT_ERRORS = 64
DEFAULT_SLOW_THRESHOLD_S = 0.050


class FlightRecorder:
    """Bounded retention of finished request traces (recent/slow/error).

    ``record()`` takes one trace document (see the module docstring) and
    files it in up to three places: the recent ring (always), the slow
    top-K heap (when ``server_us`` meets the threshold) and the error
    ring (when ``outcome`` is not ``ok``).  All three are bounded, so an
    arbitrarily long serving run holds flat memory.
    """

    def __init__(
        self,
        recent: int = DEFAULT_RECENT,
        slow_threshold_s: float = DEFAULT_SLOW_THRESHOLD_S,
        slow_top: int = DEFAULT_SLOW_TOP,
        errors: int = DEFAULT_ERRORS,
    ) -> None:
        if recent < 1:
            raise ValueError(f"recent must be >= 1, got {recent}")
        if slow_top < 1:
            raise ValueError(f"slow_top must be >= 1, got {slow_top}")
        if errors < 1:
            raise ValueError(f"errors must be >= 1, got {errors}")
        if slow_threshold_s < 0:
            raise ValueError(
                f"slow_threshold_s must be >= 0, got {slow_threshold_s}"
            )
        self.slow_threshold_s = float(slow_threshold_s)
        self.slow_top = slow_top
        #: Traces ever offered to :meth:`record`.
        self.recorded = 0
        #: Traces that met the slow threshold (not all are retained).
        self.slow_seen = 0
        self._lock = threading.Lock()
        self._recent: deque[dict] = deque(maxlen=recent)
        #: Min-heap of (server_us, seq, trace): the root is the *fastest*
        #: retained slow trace, evicted first when a slower one arrives.
        self._slow: list[tuple[int, int, dict]] = []
        self._errors: deque[dict] = deque(maxlen=errors)
        self._seq = 0

    def record(self, trace: dict) -> None:
        """File one finished trace document (thread-safe, O(log K))."""
        server_us = int(trace.get("server_us", 0))
        outcome = trace.get("outcome", "ok")
        with self._lock:
            self.recorded += 1
            self._seq += 1
            self._recent.append(trace)
            if server_us >= self.slow_threshold_s * 1e6:
                self.slow_seen += 1
                entry = (server_us, self._seq, trace)
                if len(self._slow) < self.slow_top:
                    heapq.heappush(self._slow, entry)
                elif server_us > self._slow[0][0]:
                    heapq.heapreplace(self._slow, entry)
            if outcome != "ok":
                self._errors.append(trace)

    # -- views ---------------------------------------------------------------

    def recent_traces(self) -> list[dict]:
        """The recent ring, oldest first."""
        with self._lock:
            return list(self._recent)

    def slow_traces(self) -> list[dict]:
        """Retained slow traces, slowest first."""
        with self._lock:
            ordered = sorted(self._slow, key=lambda e: (-e[0], e[1]))
        return [trace for _us, _seq, trace in ordered]

    def error_traces(self) -> list[dict]:
        """The error ring, oldest first."""
        with self._lock:
            return list(self._errors)

    def traces(self) -> list[dict]:
        """Every retained trace, deduplicated by trace id.

        Recent traces first (oldest to newest), then slow and error
        traces that have already aged out of the recent ring — so the
        dump is a superset of every retention class with each request
        appearing once.
        """
        out: list[dict] = []
        seen: set[str] = set()
        for trace in (
            self.recent_traces() + self.slow_traces() + self.error_traces()
        ):
            key = str(trace.get("trace", id(trace)))
            if key in seen:
                continue
            seen.add(key)
            out.append(trace)
        return out

    def snapshot(self) -> dict:
        """Counts + retained trace ids (the ``debug`` op's summary)."""
        with self._lock:
            recent_ids = [str(t.get("trace")) for t in self._recent]
            slow = sorted(self._slow, key=lambda e: (-e[0], e[1]))
            slow_ids = [str(t.get("trace")) for _us, _seq, t in slow]
            error_ids = [str(t.get("trace")) for t in self._errors]
        return {
            "recorded": self.recorded,
            "slow_seen": self.slow_seen,
            "slow_threshold_ms": self.slow_threshold_s * 1e3,
            "retained": {
                "recent": recent_ids,
                "slow": slow_ids,
                "errors": error_ids,
            },
        }


# -- debug bundles -----------------------------------------------------------


def write_debug_bundle(
    directory,
    traces: list[dict],
    stats: dict | None = None,
    config: dict | None = None,
    slow_entries: list[dict] | None = None,
) -> Path:
    """Write a debug bundle directory and return its path.

    ``traces`` is typically :meth:`FlightRecorder.traces`; ``stats`` a
    daemon stats/metrics snapshot; ``config`` the serving configuration;
    ``slow_entries`` the slow-query log's retained entries.  Every file
    is optional except the manifest and ``traces.jsonl`` (which may hold
    zero traces — the header line still records that).
    """
    path = Path(directory)
    path.mkdir(parents=True, exist_ok=True)

    header = {
        "schema": TRACE_SCHEMA,
        "version": TRACE_SCHEMA_VERSION,
        "traces": len(traces),
    }
    lines = [json.dumps(header, sort_keys=True)]
    lines.extend(json.dumps(trace, sort_keys=True) for trace in traces)
    (path / BUNDLE_TRACES).write_text("\n".join(lines) + "\n")

    files = [BUNDLE_TRACES]
    if stats is not None:
        (path / BUNDLE_STATS).write_text(
            json.dumps(stats, sort_keys=True, indent=2) + "\n"
        )
        files.append(BUNDLE_STATS)
    if config is not None:
        (path / BUNDLE_CONFIG).write_text(
            json.dumps(config, sort_keys=True, indent=2) + "\n"
        )
        files.append(BUNDLE_CONFIG)
    if slow_entries is not None:
        slow_text = "\n".join(
            json.dumps(entry, sort_keys=True) for entry in slow_entries
        )
        (path / BUNDLE_SLOW).write_text(slow_text + "\n" if slow_text else "")
        files.append(BUNDLE_SLOW)

    manifest = {
        "schema": BUNDLE_SCHEMA,
        "version": BUNDLE_SCHEMA_VERSION,
        "created_unix": time.time(),
        "traces": len(traces),
        "files": files,
    }
    (path / BUNDLE_MANIFEST).write_text(
        json.dumps(manifest, sort_keys=True, indent=2) + "\n"
    )
    return path


def read_debug_bundle(directory) -> dict:
    """Read a debug bundle back into memory.

    Returns ``{"manifest", "traces", "stats", "config", "slow"}`` with
    absent optional files as None/empty.  Raises :class:`ValueError` on
    a missing manifest or a schema mismatch — the errors a CLI user sees
    when pointing ``repro trace`` at the wrong directory.
    """
    path = Path(directory)
    manifest_path = path / BUNDLE_MANIFEST
    if not manifest_path.is_file():
        raise ValueError(f"not a debug bundle (no {BUNDLE_MANIFEST}): {path}")
    manifest = json.loads(manifest_path.read_text())
    if manifest.get("schema") != BUNDLE_SCHEMA:
        raise ValueError(
            f"unexpected bundle schema {manifest.get('schema')!r} in {path}"
        )
    return {
        "manifest": manifest,
        "traces": load_traces(path / BUNDLE_TRACES),
        "stats": _read_json(path / BUNDLE_STATS),
        "config": _read_json(path / BUNDLE_CONFIG),
        "slow": _read_jsonl(path / BUNDLE_SLOW),
    }


def load_traces(path) -> list[dict]:
    """Read a ``traces.jsonl`` file (validating its schema header)."""
    path = Path(path)
    if not path.is_file():
        return []
    traces: list[dict] = []
    with open(path) as handle:
        first = True
        for line in handle:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            if first:
                first = False
                if record.get("schema") == TRACE_SCHEMA:
                    continue  # header line
            traces.append(record)
    return traces


def _read_json(path: Path):
    return json.loads(path.read_text()) if path.is_file() else None


def _read_jsonl(path: Path) -> list[dict]:
    if not path.is_file():
        return []
    return [
        json.loads(line)
        for line in path.read_text().splitlines()
        if line.strip()
    ]


# -- rendering ---------------------------------------------------------------


def _span_children(spans: list[dict]) -> tuple[list[dict], dict[int, list[dict]]]:
    """Rebuild the span tree from stable ids: (roots, parent -> children)."""
    children: dict[int, list[dict]] = {}
    roots: list[dict] = []
    for span in spans:
        parent = span.get("parent", ROOT_PARENT)
        if parent == ROOT_PARENT:
            roots.append(span)
        else:
            children.setdefault(parent, []).append(span)
    return roots, children


def _bar(offset_us: float, duration_us: float, total_us: float, width: int) -> str:
    """One waterfall bar: position and length proportional to the total."""
    if total_us <= 0:
        return " " * width
    start = int(round(offset_us / total_us * width))
    start = min(max(start, 0), width - 1)
    length = int(round(duration_us / total_us * width))
    length = max(length, 1)
    length = min(length, width - start)
    return " " * start + "#" * length + " " * (width - start - length)


def _fmt_counters(counters: dict) -> str:
    items = sorted((k, v) for k, v in counters.items() if v)
    return " ".join(f"{k}={v}" for k, v in items)


def render_waterfall(trace: dict, width: int = 48) -> str:
    """Render one trace document as a phase + span waterfall.

    Lifecycle phases render as bars over the request's server time; the
    span tree (recorded during the execute phase) renders beneath,
    offset to the execute phase's start, each span carrying its
    attributed storage counters.  This is the "explain this request"
    view of ``repro trace``.
    """
    phases_us: dict = trace.get("phases_us", {})
    total_us = float(trace.get("server_us", sum(phases_us.values())))
    lines = [
        "trace={trace} rid={rid} op={op} outcome={outcome} "
        "client={client} server={ms:.3f}ms".format(
            trace=trace.get("trace", "-"),
            rid=trace.get("rid", "-"),
            op=trace.get("op", "-"),
            outcome=trace.get("outcome", "-"),
            client=trace.get("client", "-"),
            ms=total_us / 1e3,
        )
    ]
    if trace.get("error"):
        lines.append(f"error: {trace['error']}")
    counters = trace.get("counters", {})
    if counters:
        lines.append(f"counters: {_fmt_counters(counters)}")

    offset_us = 0.0
    execute_offset_us = 0.0
    ordered = [p for p in LIFECYCLE_PHASES if p in phases_us]
    ordered += [p for p in sorted(phases_us) if p not in LIFECYCLE_PHASES]
    for phase in ordered:
        duration_us = float(phases_us[phase])
        if phase == "execute":
            execute_offset_us = offset_us
        bar = _bar(offset_us, duration_us, total_us, width)
        lines.append(f"  {phase:<26s} {duration_us / 1e3:9.3f}ms |{bar}|")
        offset_us += duration_us

    spans: list[dict] = trace.get("spans", [])
    if spans:
        lines.append("  spans (within execute):")
        roots, children = _span_children(spans)

        def emit(span: dict, depth: int) -> None:
            start_us = float(span.get("start_s", 0.0)) * 1e6
            duration_us = float(span.get("duration_s", 0.0)) * 1e6
            bar = _bar(
                execute_offset_us + start_us, duration_us, total_us, width
            )
            name = "  " * depth + span.get("name", "?")
            extra = ""
            span_counters = span.get("counters", {})
            notes = span.get("notes", {})
            detail = _fmt_counters({**notes, **span_counters})
            if detail:
                extra = f"  [{detail}]"
            status = span.get("status", "ok")
            if status != "ok":
                extra += f"  !{status}"
            lines.append(
                f"  {name:<26s} {duration_us / 1e3:9.3f}ms |{bar}|{extra}"
            )
            for child in sorted(
                children.get(span.get("id"), []), key=lambda s: s.get("id", 0)
            ):
                emit(child, depth + 1)

        for root in sorted(roots, key=lambda s: s.get("id", 0)):
            emit(root, 1)
    return "\n".join(lines)


def fold_traces(traces: list[dict]) -> str:
    """Fold many traces into flamegraph input (``stack µs`` lines).

    Stacks root at the op name, branch into lifecycle phases, and nest
    the span tree under ``execute`` — so a folded view over a bundle
    answers "where does query time go, across every retained request".
    Weights are *self* time in integer microseconds, matching
    :meth:`repro.obs.tracing.Tracer.to_folded`.
    """
    folded: dict[str, int] = {}

    def add(path: str, us: float) -> None:
        us = int(us)
        if us <= 0:
            return
        folded[path] = folded.get(path, 0) + us

    for trace in traces:
        op = str(trace.get("op", "?"))
        phases_us: dict = trace.get("phases_us", {})
        spans: list[dict] = trace.get("spans", [])
        roots, children = _span_children(spans)

        def emit(span: dict, prefix: str) -> None:
            path = f"{prefix};{span.get('name', '?')}"
            kids = children.get(span.get("id"), [])
            self_us = float(span.get("duration_s", 0.0)) * 1e6 - sum(
                float(child.get("duration_s", 0.0)) * 1e6 for child in kids
            )
            add(path, self_us)
            for child in kids:
                emit(child, path)

        for phase, duration_us in phases_us.items():
            path = f"{op};{phase}"
            if phase == "execute" and roots:
                roots_us = sum(
                    float(root.get("duration_s", 0.0)) * 1e6 for root in roots
                )
                add(path, float(duration_us) - roots_us)
                for root in roots:
                    emit(root, path)
            else:
                add(path, float(duration_us))

    return "\n".join(f"{path} {us}" for path, us in sorted(folded.items()))
