"""Observability layer: tracing spans, latency histograms, progress, reports.

Layered on the storage engine's :class:`~repro.storage.metrics.MetricsRegistry`:

* :mod:`repro.obs.tracing` — bounded nested span trees with counter-delta
  capture and a JSON-lines exporter;
* :mod:`repro.obs.histogram` — log-bucketed latency histograms answering
  p50/p90/p99/max per operation kind;
* :mod:`repro.obs.progress` — throttled phase-aware stderr progress with
  rate and ETA for long builds;
* :mod:`repro.obs.report` — versioned ``BENCH_<experiment>.json`` bench
  reports plus schema validation and regression-flagging diffs;
* :mod:`repro.obs.windowed` — time-windowed histograms/counters rotated
  on an injectable clock (live percentiles that decay instead of
  averaging over the process lifetime);
* :mod:`repro.obs.accesslog` — bounded sampled JSONL access log and
  always-on top-K slow-query log for the serving layer.
"""

from repro.obs.accesslog import AccessLog, SlowQueryLog
from repro.obs.histogram import HistogramSet, LatencyHistogram
from repro.obs.progress import NULL_PROGRESS, NullProgress, ProgressReporter
from repro.obs.report import (
    SCHEMA_VERSION,
    BenchDiff,
    build_report,
    diff_reports,
    load_report,
    validate_report,
    write_report,
)
from repro.obs.tracing import Span, Tracer, activated, current_tracer, note, span
from repro.obs.windowed import (
    WindowedCounter,
    WindowedHistogram,
    WindowedHistogramSet,
)

__all__ = [
    "AccessLog",
    "SlowQueryLog",
    "WindowedCounter",
    "WindowedHistogram",
    "WindowedHistogramSet",
    "HistogramSet",
    "LatencyHistogram",
    "NULL_PROGRESS",
    "NullProgress",
    "ProgressReporter",
    "SCHEMA_VERSION",
    "BenchDiff",
    "build_report",
    "diff_reports",
    "load_report",
    "validate_report",
    "write_report",
    "Span",
    "Tracer",
    "activated",
    "current_tracer",
    "note",
    "span",
]
