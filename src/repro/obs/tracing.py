"""Nested span tracing for build and query hot paths.

A :class:`Tracer` records a bounded tree of :class:`Span` objects.  Spans
nest (``with tracer.span("build.refine"): ...``), carry arbitrary
attributes, measure wall time, and — when the tracer is bound to a
:class:`~repro.storage.metrics.MetricsRegistry` — capture the registry's
counter deltas between span entry and exit, so "this refinement phase did
N disk seeks" falls out of the existing accounting for free.

Instrumented library code does not thread tracer objects through every
call.  Instead it uses the module-level helpers:

* :func:`activated` — context manager installing a tracer as *current*;
* :func:`span` — open a span on the current tracer (no-op when none);
* :func:`note` — attach a span-local event count to the innermost open
  span (how the buffer pool's load events become span-attributed).

The span tree is bounded (default 10 000 nodes).  Once full, new spans
are no longer *stored* but are still *aggregated* into the per-name
summary, so ``summary()`` stays exact for arbitrarily long runs while
memory stays flat — the same contract as the metrics event ring buffer.

Spans carry **stable ids**: every span is numbered when it is *opened*
(``span_id``, with ``parent_id`` linking to the enclosing span), so an
exported tree survives reordering, filtering and concatenation of its
JSONL lines — the ids are properties of the spans, not of the export
walk.  The id sequence also covers spans dropped by the tree bound, so
ids reveal gaps where spans were not stored.

The *current tracer* is tracked per thread / async task (a
``contextvars.ContextVar``): activating a tracer on one daemon worker
thread is invisible to every other thread, which is what makes
request-scoped tracing sound — two concurrent requests each see only
their own tracer.  Code that never activates a tracer pays one context
variable read per hook call and allocates nothing.

Exporters: :meth:`Tracer.to_jsonl` emits a schema-version header line
followed by one JSON object per span (depth-first, with ``id``/
``parent`` links) and :meth:`Tracer.render` produces the indented text
tree shown by ``repro build --trace``.
"""

from __future__ import annotations

import contextvars
import json
import time
from contextlib import contextmanager
from typing import Iterator

from repro.storage.metrics import MetricsRegistry

#: Default bound on stored span-tree nodes.
DEFAULT_MAX_SPANS = 10_000

#: Version of the span JSONL export schema.  Version 2 added the header
#: line and stable span ids (ids assigned at span open, not at export).
SPAN_SCHEMA_VERSION = 2

#: ``parent`` value of root spans in the JSONL export.
ROOT_PARENT = -1


class Span:
    """One timed, attributed node of the span tree."""

    __slots__ = (
        "name",
        "attrs",
        "start_s",
        "duration_s",
        "status",
        "children",
        "counters",
        "notes",
        "span_id",
        "parent_id",
        "_entry_snapshot",
    )

    def __init__(
        self,
        name: str,
        attrs: dict,
        start_s: float,
        span_id: int = 0,
        parent_id: int = ROOT_PARENT,
    ) -> None:
        self.name = name
        self.attrs = attrs
        self.start_s = start_s
        self.duration_s = 0.0
        self.status = "ok"
        self.children: list[Span] = []
        #: Stable id assigned when the span was opened (export order and
        #: tree walks never renumber it).
        self.span_id = span_id
        #: The enclosing span's ``span_id`` (:data:`ROOT_PARENT` for roots).
        self.parent_id = parent_id
        #: Registry counter deltas captured at span exit (entry vs exit).
        self.counters: dict[str, float] = {}
        #: Span-local event counts attached via :func:`note`.
        self.notes: dict[str, int] = {}
        self._entry_snapshot: dict[str, float] | None = None

    def note(self, name: str, amount: int = 1) -> None:
        """Add ``amount`` to this span's local event count ``name``."""
        self.notes[name] = self.notes.get(name, 0) + amount

    def to_dict(self) -> dict:
        """JSON-serializable view of this span (children excluded)."""
        out: dict = {
            "name": self.name,
            "start_s": round(self.start_s, 9),
            "duration_s": round(self.duration_s, 9),
            "status": self.status,
        }
        if self.attrs:
            out["attrs"] = self.attrs
        if self.counters:
            out["counters"] = self.counters
        if self.notes:
            out["notes"] = self.notes
        return out


class Tracer:
    """Bounded span-tree recorder with per-name aggregate summaries."""

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        max_spans: int = DEFAULT_MAX_SPANS,
    ) -> None:
        """``registry`` may be a :class:`MetricsRegistry` or any object
        with a compatible ``snapshot() -> dict`` — the tracer only ever
        snapshots and diffs, so a composite view over several session
        registries (the daemon's per-connection pair) plugs in directly.
        """
        if max_spans <= 0:
            raise ValueError(f"max_spans must be > 0, got {max_spans}")
        self.registry = registry
        self.max_spans = max_spans
        self.roots: list[Span] = []
        self.dropped = 0
        self._stack: list[Span] = []
        self._stored = 0
        self._next_span_id = 0
        self._origin = time.perf_counter()
        # Per-name aggregates, exact even after the tree bound is hit:
        # name -> [count, total_s, max_s, error_count].
        self._summary: dict[str, list[float]] = {}

    # -- recording ---------------------------------------------------------

    @property
    def current(self) -> Span | None:
        """The innermost open span, or None."""
        return self._stack[-1] if self._stack else None

    @contextmanager
    def span(self, name: str, **attrs) -> Iterator[Span]:
        """Open a nested span; exception-safe (status records the error)."""
        started = time.perf_counter()
        span_id = self._next_span_id
        self._next_span_id += 1
        parent_id = self._stack[-1].span_id if self._stack else ROOT_PARENT
        node = Span(name, attrs, started - self._origin, span_id, parent_id)
        stored = self._stored < self.max_spans
        if stored:
            self._stored += 1
            if self._stack:
                self._stack[-1].children.append(node)
            else:
                self.roots.append(node)
        else:
            self.dropped += 1
        if self.registry is not None:
            node._entry_snapshot = self.registry.snapshot()
        self._stack.append(node)
        try:
            yield node
        except BaseException as exc:
            node.status = f"error:{type(exc).__name__}"
            raise
        finally:
            self._stack.pop()
            node.duration_s = time.perf_counter() - started
            if node._entry_snapshot is not None:
                delta = MetricsRegistry.diff(
                    node._entry_snapshot, self.registry.snapshot()
                )
                node.counters = {k: v for k, v in delta.items() if v}
                node._entry_snapshot = None
            entry = self._summary.setdefault(name, [0, 0.0, 0.0, 0])
            entry[0] += 1
            entry[1] += node.duration_s
            entry[2] = max(entry[2], node.duration_s)
            if node.status != "ok":
                entry[3] += 1

    def note(self, name: str, amount: int = 1) -> None:
        """Attach an event count to the innermost open span (if any)."""
        if self._stack:
            self._stack[-1].note(name, amount)

    def absorb_summary(self, summary: dict, prefix: str = "") -> None:
        """Merge another tracer's :meth:`summary` into this tracer.

        The bridge between encode workers and the parent trace: a worker
        process records spans on its own :class:`Tracer`, ships the
        per-name aggregates back in its result, and the parent absorbs
        them here — so ``repro build --trace`` and bench-report span
        sections account for work done in child processes instead of
        silently dropping it.  ``prefix`` namespaces the absorbed span
        names (e.g. ``worker.``); totals and counts add, maxima combine,
        and the merged names participate in :meth:`summary` exactly like
        locally recorded spans (they do not appear in the stored tree).
        """
        for name, stats in summary.items():
            entry = self._summary.setdefault(f"{prefix}{name}", [0, 0.0, 0.0, 0])
            entry[0] += int(stats.get("count", 0))
            entry[1] += float(stats.get("total_s", 0.0))
            entry[2] = max(entry[2], float(stats.get("max_s", 0.0)))
            entry[3] += int(stats.get("errors", 0))

    # -- views -------------------------------------------------------------

    def summary(self) -> dict[str, dict[str, float]]:
        """Per-span-name aggregates: count, total/max seconds, errors.

        Counts every span ever opened, including those dropped from the
        bounded tree.
        """
        return {
            name: {
                "count": int(entry[0]),
                "total_s": entry[1],
                "max_s": entry[2],
                "errors": int(entry[3]),
            }
            for name, entry in sorted(self._summary.items())
        }

    def _walk(self) -> Iterator[Span]:
        """Stored spans, depth-first (ids live on the spans themselves)."""
        stack: list[Span] = list(reversed(self.roots))
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    def span_records(self) -> list[dict]:
        """Stored spans as JSON-ready dicts, depth-first, with stable ids.

        Each record carries the span's ``id`` (assigned at open time) and
        ``parent`` (:data:`ROOT_PARENT` for roots), so a consumer can
        rebuild the tree from the records in any order.
        """
        records = []
        for node in self._walk():
            record = {"id": node.span_id, "parent": node.parent_id}
            record.update(node.to_dict())
            records.append(record)
        return records

    def to_jsonl(self) -> str:
        """Schema header line + one JSON object per stored span.

        The first line is ``{"schema": "repro-spans", "version": ...}``
        with the stored/dropped counts; every following line is one span
        with its stable ``id``/``parent`` links, depth-first.  A reader
        reconstructs the tree from the ids alone — line order carries no
        information beyond the header coming first.
        """
        header = {
            "schema": "repro-spans",
            "version": SPAN_SCHEMA_VERSION,
            "spans": self._stored,
            "dropped": self.dropped,
        }
        lines = [json.dumps(header, sort_keys=True)]
        for record in self.span_records():
            lines.append(json.dumps(record, sort_keys=True))
        return "\n".join(lines)

    def write_jsonl(self, path) -> None:
        """Write :meth:`to_jsonl` (plus trailing newline) to ``path``."""
        text = self.to_jsonl()
        with open(path, "w") as handle:
            if text:
                handle.write(text + "\n")

    def to_folded(self) -> str:
        """Folded-stacks export: ``root;child;leaf <self-time-µs>`` lines.

        The standard flamegraph input format (Brendan Gregg's
        ``flamegraph.pl``, speedscope, inferno): one line per distinct
        span stack, weighted by *self* time — span duration minus the
        time spent in its stored children — in integer microseconds.
        Stacks recurring in the tree are aggregated into one line.
        """
        folded: dict[str, float] = {}

        def emit(node: Span, prefix: str) -> None:
            path = f"{prefix};{node.name}" if prefix else node.name
            self_s = node.duration_s - sum(
                child.duration_s for child in node.children
            )
            folded[path] = folded.get(path, 0.0) + max(self_s, 0.0)
            for child in node.children:
                emit(child, path)

        for root in self.roots:
            emit(root, "")
        return "\n".join(
            f"{path} {int(seconds * 1e6)}" for path, seconds in folded.items()
        )

    def write_folded(self, path) -> None:
        """Write :meth:`to_folded` (plus trailing newline) to ``path``."""
        text = self.to_folded()
        with open(path, "w") as handle:
            if text:
                handle.write(text + "\n")

    def render(self, max_depth: int | None = None) -> str:
        """Indented text tree (the ``repro build --trace`` output)."""
        lines: list[str] = []

        def emit(node: Span, depth: int) -> None:
            if max_depth is not None and depth > max_depth:
                return
            attrs = "".join(f" {k}={v}" for k, v in node.attrs.items())
            extra = ""
            if node.notes:
                extra = " [" + " ".join(
                    f"{k}={v}" for k, v in sorted(node.notes.items())
                ) + "]"
            status = "" if node.status == "ok" else f" !{node.status}"
            lines.append(
                f"{'  ' * depth}{node.name:<28s} "
                f"{node.duration_s * 1000.0:9.2f} ms{attrs}{extra}{status}"
            )
            for child in node.children:
                emit(child, depth + 1)

        for root in self.roots:
            emit(root, 0)
        if self.dropped:
            lines.append(f"... {self.dropped} spans dropped (tree bound)")
        return "\n".join(lines)

    def summary_dict(self) -> dict:
        """Serializable bundle for bench reports: summary + drop count."""
        return {"spans": self.summary(), "dropped": self.dropped}


# -- module-level current tracer -------------------------------------------
#
# The active-tracer stack is a ContextVar, so it is confined to the
# current thread (and async task): a request-scoped tracer activated on
# one daemon worker thread can never capture another thread's spans or
# notes.  The default is the empty tuple, so the no-tracer fast path is
# one contextvar read.

_ACTIVE: contextvars.ContextVar[tuple[Tracer, ...]] = contextvars.ContextVar(
    "repro_active_tracers", default=()
)


def current_tracer() -> Tracer | None:
    """The innermost tracer activated in this thread/task, or None."""
    stack = _ACTIVE.get()
    return stack[-1] if stack else None


@contextmanager
def activated(tracer: Tracer) -> Iterator[Tracer]:
    """Install ``tracer`` as the current tracer for the enclosed block.

    Activation is scoped to the current thread / async task: other
    threads keep (or lack) their own active tracers independently.
    """
    token = _ACTIVE.set(_ACTIVE.get() + (tracer,))
    try:
        yield tracer
    finally:
        _ACTIVE.reset(token)


class _NullSpan:
    """Shared no-op context manager returned when no tracer is active."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info) -> bool:
        return False


_NULL_SPAN = _NullSpan()


def span(name: str, **attrs):
    """Open a span on the current tracer; cheap no-op when none is active."""
    stack = _ACTIVE.get()
    if not stack:
        return _NULL_SPAN
    return stack[-1].span(name, **attrs)


def note(name: str, amount: int = 1) -> None:
    """Attach an event count to the current tracer's open span, if any."""
    stack = _ACTIVE.get()
    if stack:
        stack[-1].note(name, amount)


def absorb_summary(summary: dict, prefix: str = "") -> None:
    """Merge a child span summary into the current tracer (no-op when none)."""
    stack = _ACTIVE.get()
    if stack:
        stack[-1].absorb_summary(summary, prefix)
