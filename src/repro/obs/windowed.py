"""Time-windowed aggregation: decaying histograms, counters and rates.

The cumulative :class:`~repro.obs.histogram.LatencyHistogram` answers
"what was p99 over the whole run" — the right question for a batch
experiment, the wrong one for a live daemon, where a latency spike five
minutes ago must not dominate the percentiles an operator reads *now*.

A :class:`WindowedHistogram` keeps a ring of plain latency histograms,
one per fixed-width time window, rotated on an **injectable clock**:
``snapshot()`` merges the most recent ``windows`` buckets, so
percentiles decay with horizon ``windows * window_seconds`` instead of
averaging over the process lifetime.  A cumulative histogram is
maintained alongside, and the two are *conserved by construction*: every
observation lands in exactly one window bucket and in the cumulative
histogram, so the merge of all window buckets ever produced (closed ones
are handed to ``on_rotate``) equals the cumulative histogram bit for bit
— the property the tests drive with a fake clock.

A windowed histogram can also carry **exemplars**: ``record(value,
exemplar=...)`` remembers, per latency bucket, the id of the most recent
observation that landed there (typically a trace id).  Exemplars age out
with their window, so ``exemplars()`` answers "which *recent* request is
a concrete witness for this p99 bucket" — the link from a percentile an
operator reads in ``repro top`` to a flight-recorder trace.

:class:`WindowedCounter` is the scalar sibling (per-window event counts
-> rates over the live horizon), and :class:`WindowedHistogramSet` the
named-family convenience mirroring
:class:`~repro.obs.histogram.HistogramSet`.

Everything here is thread-safe (one lock per aggregate; windows rotate
under it), so daemon worker threads can record while the event loop
snapshots.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Callable

from repro.obs.histogram import DEFAULT_GROWTH, DEFAULT_MIN_VALUE, LatencyHistogram

#: Default window width (seconds): percentiles an operator reads refresh
#: on this granularity.
DEFAULT_WINDOW_SECONDS = 10.0
#: Default number of live windows retained (the decay horizon).
DEFAULT_WINDOWS = 6


class WindowedHistogram:
    """Ring of :class:`LatencyHistogram` buckets rotated on a clock.

    ``clock`` must be monotonic (``time.monotonic`` by default; tests
    inject a fake).  Window ``i`` covers clock times
    ``[i * window_seconds, (i+1) * window_seconds)``; observations are
    bucketed by the clock value at ``record()`` time.  At most
    ``windows`` buckets stay live; older ones are *closed* — passed to
    ``on_rotate(window_index, histogram)`` if given, then dropped.
    """

    def __init__(
        self,
        window_seconds: float = DEFAULT_WINDOW_SECONDS,
        windows: int = DEFAULT_WINDOWS,
        clock: Callable[[], float] = time.monotonic,
        min_value: float = DEFAULT_MIN_VALUE,
        growth: float = DEFAULT_GROWTH,
        on_rotate: Callable[[int, LatencyHistogram], None] | None = None,
    ) -> None:
        if window_seconds <= 0:
            raise ValueError(f"window_seconds must be > 0, got {window_seconds}")
        if windows < 1:
            raise ValueError(f"windows must be >= 1, got {windows}")
        self.window_seconds = float(window_seconds)
        self.windows = windows
        self.clock = clock
        self.min_value = min_value
        self.growth = growth
        self.on_rotate = on_rotate
        #: Every observation ever recorded (never rotated away).
        self.cumulative = LatencyHistogram(min_value, growth)
        self._lock = threading.Lock()
        #: (window_index, histogram), oldest first; at most ``windows``.
        self._ring: deque[tuple[int, LatencyHistogram]] = deque()
        #: latency bucket -> (window_index, value, exemplar id); pruned
        #: with the windows, so an exemplar never outlives its window.
        self._exemplars: dict[int, tuple[int, float, str]] = {}

    def _window_index(self, now: float) -> int:
        return int(now // self.window_seconds)

    def _advance(self, now: float) -> None:
        """Close every live bucket older than the decay horizon (locked)."""
        floor = self._window_index(now) - self.windows + 1
        while self._ring and self._ring[0][0] < floor:
            index, histogram = self._ring.popleft()
            if self.on_rotate is not None:
                self.on_rotate(index, histogram)
        if self._exemplars:
            stale = [
                bucket
                for bucket, (index, _value, _mark) in self._exemplars.items()
                if index < floor
            ]
            for bucket in stale:
                del self._exemplars[bucket]

    def record(self, value: float, exemplar: str | None = None) -> None:
        """Record one observation into the current window + cumulative.

        When ``exemplar`` is given (a trace/request id), it replaces the
        stored exemplar for the latency bucket ``value`` falls in —
        latest wins, so the exemplar is always a fresh witness.
        """
        now = self.clock()
        index = self._window_index(now)
        with self._lock:
            self._advance(now)
            if not self._ring or self._ring[-1][0] != index:
                self._ring.append(
                    (index, LatencyHistogram(self.min_value, self.growth))
                )
            self._ring[-1][1].record(value)
            self.cumulative.record(value)
            if exemplar is not None:
                bucket = self.cumulative.bucket_index(value)
                self._exemplars[bucket] = (index, value, exemplar)

    def exemplars(self) -> dict[int, dict]:
        """{latency bucket: {"value", "trace"}} over the live windows.

        Buckets are the cumulative histogram's bucket indices; each entry
        names the most recent exemplar-carrying observation that landed
        in that bucket within the decay horizon.
        """
        now = self.clock()
        with self._lock:
            self._advance(now)
            return {
                bucket: {"value": value, "trace": mark}
                for bucket, (_index, value, mark) in sorted(self._exemplars.items())
            }

    def snapshot(self) -> LatencyHistogram:
        """Merged histogram over the live windows (may be empty)."""
        now = self.clock()
        merged = LatencyHistogram(self.min_value, self.growth)
        with self._lock:
            self._advance(now)
            for _index, histogram in self._ring:
                merged.merge(histogram)
        return merged

    def live_windows(self) -> list[tuple[int, LatencyHistogram]]:
        """Copies of the live ``(window_index, histogram)`` buckets."""
        now = self.clock()
        out: list[tuple[int, LatencyHistogram]] = []
        with self._lock:
            self._advance(now)
            for index, histogram in self._ring:
                copy = LatencyHistogram(self.min_value, self.growth)
                copy.merge(histogram)
                out.append((index, copy))
        return out

    def to_dict(self) -> dict:
        """Serializable view: windowed summary + cumulative histogram."""
        snapshot = self.snapshot()
        out = {
            "window_seconds": self.window_seconds,
            "windows": self.windows,
            "windowed": snapshot.to_dict(),
            "cumulative": self.cumulative.to_dict(),
        }
        exemplars = self.exemplars()
        if exemplars:
            out["exemplars"] = {str(bucket): entry for bucket, entry in exemplars.items()}
        return out


class WindowedCounter:
    """Per-window event counts with a decaying rate and cumulative total.

    ``add(n)`` charges the current window; ``rate()`` is the live-window
    sum divided by the horizon actually covered (so a counter alive for
    half a window does not report half the true rate).
    """

    def __init__(
        self,
        window_seconds: float = DEFAULT_WINDOW_SECONDS,
        windows: int = DEFAULT_WINDOWS,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if window_seconds <= 0:
            raise ValueError(f"window_seconds must be > 0, got {window_seconds}")
        if windows < 1:
            raise ValueError(f"windows must be >= 1, got {windows}")
        self.window_seconds = float(window_seconds)
        self.windows = windows
        self.clock = clock
        self.total = 0
        self._lock = threading.Lock()
        self._ring: deque[tuple[int, int]] = deque()
        self._started = self.clock()

    def _window_index(self, now: float) -> int:
        return int(now // self.window_seconds)

    def _advance(self, now: float) -> None:
        floor = self._window_index(now) - self.windows + 1
        while self._ring and self._ring[0][0] < floor:
            self._ring.popleft()

    def add(self, amount: int = 1) -> None:
        """Count ``amount`` events in the current window (and the total)."""
        now = self.clock()
        index = self._window_index(now)
        with self._lock:
            self._advance(now)
            if self._ring and self._ring[-1][0] == index:
                self._ring[-1] = (index, self._ring[-1][1] + amount)
            else:
                self._ring.append((index, amount))
            self.total += amount

    def windowed_count(self) -> int:
        """Events counted in the live windows."""
        now = self.clock()
        with self._lock:
            self._advance(now)
            return sum(count for _index, count in self._ring)

    def rate(self) -> float:
        """Events per second over the live horizon (0 when no time passed)."""
        now = self.clock()
        horizon = min(self.windows * self.window_seconds, now - self._started)
        # Anything under one window rounds up: a counter 0.3s old reports
        # over a full window so early rates are not wildly inflated.
        horizon = max(horizon, self.window_seconds)
        return self.windowed_count() / horizon

    def to_dict(self) -> dict:
        """Serializable view: total, windowed count and rate."""
        return {
            "total": self.total,
            "windowed": self.windowed_count(),
            "per_second": self.rate(),
        }


class WindowedHistogramSet:
    """Named family of :class:`WindowedHistogram` (one per operation)."""

    def __init__(
        self,
        window_seconds: float = DEFAULT_WINDOW_SECONDS,
        windows: int = DEFAULT_WINDOWS,
        clock: Callable[[], float] = time.monotonic,
        min_value: float = DEFAULT_MIN_VALUE,
        growth: float = DEFAULT_GROWTH,
    ) -> None:
        self.window_seconds = window_seconds
        self.windows = windows
        self.clock = clock
        self.min_value = min_value
        self.growth = growth
        self._lock = threading.Lock()
        self._histograms: dict[str, WindowedHistogram] = {}

    def get(self, name: str) -> WindowedHistogram:
        """The windowed histogram for ``name`` (created on first use)."""
        with self._lock:
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = WindowedHistogram(
                    self.window_seconds,
                    self.windows,
                    self.clock,
                    self.min_value,
                    self.growth,
                )
                self._histograms[name] = histogram
            return histogram

    def observe(self, name: str, value: float, exemplar: str | None = None) -> None:
        """Record ``value`` under operation ``name`` (optional exemplar id)."""
        self.get(name).record(value, exemplar)

    def names(self) -> list[str]:
        """Recorded operation names, sorted."""
        with self._lock:
            return sorted(self._histograms)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._histograms

    def to_dict(self) -> dict[str, dict]:
        """{operation: windowed_histogram.to_dict()} for every operation."""
        with self._lock:
            items = sorted(self._histograms.items())
        return {name: histogram.to_dict() for name, histogram in items}
