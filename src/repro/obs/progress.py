"""Phase-aware, throttled progress reporting for long builds.

A repository-scale build streams millions of pages, runs tens of
thousands of refinement iterations and encodes every supernode; without
feedback an operator cannot tell a working build from a hung one.  A
:class:`ProgressReporter` is handed down the build pipeline and emits
single-line status updates to stderr:

    [build] stream: 120000/500000 pages (24.0%) 81342/s eta 4.7s
    [build] refine: 3200 iterations, 411 elements 1033/s

Emission is throttled (default: at most one line per 0.5 s, measured on
an injectable monotonic clock) so per-page ``update()`` calls in hot
loops cost a counter increment and a clock read, nothing more.  Phases
with a known total get percentage and ETA; open-ended phases report
count and rate.  ``finish_phase`` always emits a final line so every
phase leaves a completion record even when it beat the throttle window.

:data:`NULL_PROGRESS` is the shared no-op used as the library default —
code paths accept ``progress=None`` and normalize via :func:`ensure`.
"""

from __future__ import annotations

import sys
import time

#: Default minimum seconds between emitted lines.
DEFAULT_INTERVAL_S = 0.5


class ProgressReporter:
    """Throttled stderr progress lines for multi-phase pipelines."""

    def __init__(
        self,
        label: str = "build",
        stream=None,
        interval_s: float = DEFAULT_INTERVAL_S,
        clock=time.monotonic,
    ) -> None:
        if interval_s < 0:
            raise ValueError(f"interval_s must be >= 0, got {interval_s}")
        self.label = label
        self.stream = stream if stream is not None else sys.stderr
        self.interval_s = interval_s
        self.clock = clock
        self.emitted = 0
        self._phase: str | None = None
        self._unit = ""
        self._total: int | None = None
        self._done = 0
        self._phase_start = 0.0
        self._last_emit = -float("inf")

    # -- phase lifecycle ---------------------------------------------------

    def start_phase(self, phase: str, total: int | None = None, unit: str = "") -> None:
        """Begin a phase; ``total`` enables percentage and ETA reporting."""
        if self._phase is not None:
            self.finish_phase()
        self._phase = phase
        self._total = total
        self._unit = unit
        self._done = 0
        self._phase_start = self.clock()
        self._last_emit = -float("inf")

    def update(self, amount: int = 1, detail: str | None = None) -> None:
        """Advance the current phase; emits a line if the throttle allows."""
        if self._phase is None:
            return
        self._done += amount
        now = self.clock()
        if now - self._last_emit >= self.interval_s:
            self._emit(now, detail)

    def finish_phase(self) -> None:
        """Close the current phase, always emitting its final line."""
        if self._phase is None:
            return
        self._emit(self.clock(), "done")
        self._phase = None
        self._total = None
        self._done = 0

    # -- formatting --------------------------------------------------------

    def _emit(self, now: float, detail: str | None) -> None:
        elapsed = max(now - self._phase_start, 1e-9)
        rate = self._done / elapsed
        unit = f" {self._unit}" if self._unit else ""
        if self._total:
            percent = 100.0 * self._done / self._total
            remaining = max(self._total - self._done, 0)
            eta = remaining / rate if rate > 0 else float("inf")
            eta_text = f" eta {eta:.1f}s" if eta != float("inf") else ""
            line = (
                f"[{self.label}] {self._phase}: {self._done}/{self._total}{unit} "
                f"({percent:.1f}%) {rate:.0f}/s{eta_text}"
            )
        else:
            line = (
                f"[{self.label}] {self._phase}: {self._done}{unit} {rate:.0f}/s"
            )
        if detail:
            line += f" [{detail}]"
        print(line, file=self.stream, flush=True)
        self.emitted += 1
        self._last_emit = now


class NullProgress:
    """No-op reporter with the :class:`ProgressReporter` interface."""

    __slots__ = ()

    emitted = 0

    def start_phase(self, phase: str, total: int | None = None, unit: str = "") -> None:
        pass

    def update(self, amount: int = 1, detail: str | None = None) -> None:
        pass

    def finish_phase(self) -> None:
        pass


#: Shared no-op instance (the library default when no reporter is passed).
NULL_PROGRESS = NullProgress()


def ensure(progress) -> ProgressReporter | NullProgress:
    """Normalize an optional reporter argument to a usable object."""
    return progress if progress is not None else NULL_PROGRESS
