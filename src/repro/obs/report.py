"""Machine-readable bench reports: build, validate, write, load, diff.

Every experiment driver can serialize its run into one versioned JSON
document — ``BENCH_<experiment>.json`` — bundling

* ``results`` — the experiment's structured output (rows, timings, ...);
* ``metrics`` — a :meth:`MetricsRegistry.snapshot` taken after the run;
* ``histograms`` — per-operation latency histograms
  (:meth:`~repro.obs.histogram.HistogramSet.to_dict`);
* ``spans`` — the tracer's per-name span summary;
* ``params`` / ``environment`` — enough context to reproduce the run.

The schema is versioned (:data:`SCHEMA_VERSION`) and validated by
:func:`validate_report` — hand-rolled structural checks, no external
jsonschema dependency.  :func:`diff_reports` compares two reports'
numeric cost metrics (wall/simulated times, percentiles, seeks, bytes,
...) and flags relative increases beyond a threshold, which is how CI
and ``repro bench-diff`` turn the JSON trail into regression gates.

Run as a module for the CLI used by CI::

    python -m repro.obs.report validate BENCH_*.json
    python -m repro.obs.report diff old/BENCH_x.json new/BENCH_x.json
"""

from __future__ import annotations

import json
import platform
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import ReportError

#: Version written into (and required of) every bench report.
SCHEMA_VERSION = 1

#: Top-level keys every report must carry, with their required types.
_REQUIRED_KEYS: dict[str, type] = {
    "schema_version": int,
    "experiment": str,
    "created_unix": float,
    "environment": dict,
    "params": dict,
    "results": (dict, list),  # type: ignore[dict-item]
    "metrics": dict,
    "histograms": dict,
    "spans": dict,
}

#: Leaf-key substrings identifying "lower is better" cost metrics that
#: the differ compares (sizes/counts like num_supernodes are excluded —
#: a bigger dataset is not a regression).
_COST_MARKERS = (
    "_ms",
    "_ns",
    "_s",
    "seconds",
    "p50",
    "p90",
    "p99",
    "mean",
    "max",
    "seeks",
    "bytes_read",
    "evictions",
    "iterations",
    # Compression cost: checksum framing must stay within the bench-diff
    # threshold of the committed baselines (lower is better).
    "bits_per_edge",
)


def _default_environment() -> dict:
    return {
        "python": platform.python_version(),
        "platform": platform.platform(),
    }


def build_report(
    experiment: str,
    results,
    params: dict | None = None,
    metrics: dict | None = None,
    histograms: dict | None = None,
    spans: dict | None = None,
    environment: dict | None = None,
    created_unix: float | None = None,
) -> dict:
    """Assemble a schema-conforming report document."""
    report = {
        "schema_version": SCHEMA_VERSION,
        "experiment": experiment,
        "created_unix": float(
            created_unix if created_unix is not None else time.time()
        ),
        "environment": environment if environment is not None else _default_environment(),
        "params": params or {},
        "results": results,
        "metrics": metrics or {},
        "histograms": histograms or {},
        "spans": spans or {},
    }
    problems = validate_report(report)
    if problems:
        raise ReportError(
            f"constructed report is invalid: {'; '.join(problems)}"
        )
    return report


def validate_report(data) -> list[str]:
    """Structural problems of a report document (empty list = valid)."""
    problems: list[str] = []
    if not isinstance(data, dict):
        return [f"report must be a JSON object, got {type(data).__name__}"]
    for key, expected in _REQUIRED_KEYS.items():
        if key not in data:
            problems.append(f"missing key {key!r}")
            continue
        value = data[key]
        if expected is float:
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                problems.append(f"{key!r} must be a number")
        elif expected is int:
            if not isinstance(value, int) or isinstance(value, bool):
                problems.append(f"{key!r} must be an integer")
        elif not isinstance(value, expected):
            name = (
                "/".join(t.__name__ for t in expected)
                if isinstance(expected, tuple)
                else expected.__name__
            )
            problems.append(f"{key!r} must be a {name}")
    if not problems and data["schema_version"] != SCHEMA_VERSION:
        problems.append(
            f"schema_version {data['schema_version']} unsupported "
            f"(expected {SCHEMA_VERSION})"
        )
    if not problems and not data["experiment"]:
        problems.append("'experiment' must be non-empty")
    if not problems:
        for name, payload in data["histograms"].items():
            if not isinstance(payload, dict) or "buckets" not in payload:
                problems.append(
                    f"histogram {name!r} must be a dict with 'buckets'"
                )
    return problems


def report_filename(experiment: str) -> str:
    """The canonical file name for an experiment's report."""
    safe = experiment.replace("/", "_").replace(" ", "_")
    return f"BENCH_{safe}.json"


def write_report(report: dict, out_dir: Path | str) -> Path:
    """Validate and write ``BENCH_<experiment>.json`` under ``out_dir``."""
    problems = validate_report(report)
    if problems:
        raise ReportError(f"refusing to write invalid report: {'; '.join(problems)}")
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / report_filename(report["experiment"])
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return path


def load_report(path: Path | str) -> dict:
    """Read and validate a report; raises :class:`ReportError` on problems."""
    path = Path(path)
    try:
        data = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ReportError(f"cannot read bench report {path}: {exc}") from exc
    problems = validate_report(data)
    if problems:
        raise ReportError(f"invalid bench report {path}: {'; '.join(problems)}")
    return data


# -- diffing ----------------------------------------------------------------


def flatten_numeric(value, prefix: str = "") -> dict[str, float]:
    """Dotted-path -> value map of every numeric leaf under ``value``."""
    out: dict[str, float] = {}
    if isinstance(value, bool):
        return out
    if isinstance(value, (int, float)):
        out[prefix] = float(value)
    elif isinstance(value, dict):
        for key in value:
            child_prefix = f"{prefix}.{key}" if prefix else str(key)
            out.update(flatten_numeric(value[key], child_prefix))
    elif isinstance(value, (list, tuple)):
        for index, item in enumerate(value):
            child_prefix = f"{prefix}[{index}]"
            out.update(flatten_numeric(item, child_prefix))
    return out


def flatten_leaves(value, prefix: str = "") -> dict[str, object]:
    """Dotted-path -> value map of *every* leaf (numbers, strings, bools).

    The exact-compare companion of :func:`flatten_numeric`: determinism
    markers like build digests are strings, so the exact differ needs
    all leaf types, not just the numeric ones.
    """
    if isinstance(value, dict):
        out: dict[str, object] = {}
        for key in value:
            child_prefix = f"{prefix}.{key}" if prefix else str(key)
            out.update(flatten_leaves(value[key], child_prefix))
        return out
    if isinstance(value, (list, tuple)):
        out = {}
        for index, item in enumerate(value):
            out.update(flatten_leaves(item, f"{prefix}[{index}]"))
        return out
    return {prefix: value}


def _is_cost_path(path: str) -> bool:
    leaf = path.rsplit(".", 1)[-1]
    return any(marker in leaf for marker in _COST_MARKERS)


@dataclass
class DiffEntry:
    """One compared metric between two reports."""

    path: str
    old: float
    new: float
    change_fraction: float
    regression: bool


#: Placeholder rendered when an exact-pinned path exists in only one report.
_MISSING = "<missing>"


@dataclass
class ExactEntry:
    """One exact-pinned leaf compared for strict equality."""

    path: str
    old: object
    new: object
    match: bool


@dataclass
class BenchDiff:
    """Outcome of comparing two bench reports."""

    experiment: str
    threshold: float
    entries: list[DiffEntry] = field(default_factory=list)
    exact_entries: list[ExactEntry] = field(default_factory=list)

    @property
    def regressions(self) -> list[DiffEntry]:
        """Entries whose cost grew beyond the threshold."""
        return [entry for entry in self.entries if entry.regression]

    @property
    def exact_mismatches(self) -> list[ExactEntry]:
        """Exact-pinned leaves whose values differ (or exist in only one)."""
        return [entry for entry in self.exact_entries if not entry.match]

    @property
    def failed(self) -> bool:
        """True when the diff should gate (regressions or exact mismatches)."""
        return bool(self.regressions or self.exact_mismatches)

    def render(self, limit: int = 20) -> str:
        """Human-readable summary, worst regressions first."""
        lines = [
            f"bench-diff [{self.experiment}]: {len(self.entries)} cost metrics "
            f"compared, {len(self.regressions)} regression(s) beyond "
            f"{self.threshold * 100:.0f}%"
        ]
        ordered = sorted(
            self.entries, key=lambda e: e.change_fraction, reverse=True
        )
        for entry in ordered[:limit]:
            flag = "REGRESSION" if entry.regression else (
                "improved" if entry.change_fraction < -self.threshold else "ok"
            )
            lines.append(
                f"  {entry.path}: {entry.old:.4g} -> {entry.new:.4g} "
                f"({entry.change_fraction * 100:+.1f}%) {flag}"
            )
        if len(self.entries) > limit:
            lines.append(f"  ... {len(self.entries) - limit} more")
        if self.exact_entries:
            lines.append(
                f"  exact: {len(self.exact_entries)} pinned leaves, "
                f"{len(self.exact_mismatches)} mismatch(es)"
            )
            for entry in self.exact_mismatches[:limit]:
                lines.append(
                    f"  {entry.path}: {entry.old!r} -> {entry.new!r} MISMATCH"
                )
        return "\n".join(lines)


#: Absolute floor (in metric units) below which changes are noise, not
#: regressions — a 0.01 ms -> 0.02 ms flip is +100% but meaningless.
DEFAULT_MIN_DELTA = 1e-6


def diff_reports(
    old: dict,
    new: dict,
    threshold: float = 0.2,
    min_delta: float = DEFAULT_MIN_DELTA,
    ignore: tuple[str, ...] = (),
    exact: tuple[str, ...] = (),
) -> BenchDiff:
    """Compare two reports' cost metrics; flag increases > ``threshold``.

    Only ``results`` and ``histograms`` sections are compared, and only
    paths whose leaf key looks like a cost (times, percentiles, seeks,
    bytes read, ...).  Paths containing any ``ignore`` substring are
    skipped entirely — how CI excludes machine-dependent wall-clock
    metrics while still gating the deterministic simulated costs.

    Paths containing any ``exact`` substring are pinned instead: every
    such leaf (numeric or not — build digests are strings) must be
    byte-equal between reports, and a leaf present in only one report is
    a mismatch.  Exact paths are exempt from ``ignore`` and from the
    cost-threshold comparison — how CI gates determinism markers like
    shard counts and manifest digests while ignoring wall-clock.  The
    reports must describe the same experiment.
    """
    for data in (old, new):
        problems = validate_report(data)
        if problems:
            raise ReportError(f"cannot diff invalid report: {'; '.join(problems)}")
    if old["experiment"] != new["experiment"]:
        raise ReportError(
            f"cannot diff reports of different experiments: "
            f"{old['experiment']!r} vs {new['experiment']!r}"
        )
    diff = BenchDiff(experiment=new["experiment"], threshold=threshold)
    old_values: dict[str, float] = {}
    new_values: dict[str, float] = {}
    for section in ("results", "histograms"):
        old_values.update(flatten_numeric(old[section], section))
        new_values.update(flatten_numeric(new[section], section))
    if exact:
        old_leaves: dict[str, object] = {}
        new_leaves: dict[str, object] = {}
        for section in ("results", "histograms"):
            old_leaves.update(flatten_leaves(old[section], section))
            new_leaves.update(flatten_leaves(new[section], section))
        for path in sorted(set(old_leaves) | set(new_leaves)):
            if not any(marker in path for marker in exact):
                continue
            before = old_leaves.get(path, _MISSING)
            after = new_leaves.get(path, _MISSING)
            match = (
                before is not _MISSING and after is not _MISSING
                and before == after
            )
            diff.exact_entries.append(
                ExactEntry(path=path, old=before, new=after, match=match)
            )
    for path in sorted(set(old_values) & set(new_values)):
        if not _is_cost_path(path):
            continue
        if any(marker in path for marker in exact):
            continue  # pinned above; never double-count or threshold it
        if any(marker in path for marker in ignore):
            continue
        before, after = old_values[path], new_values[path]
        delta = after - before
        if before > 0:
            change = delta / before
        else:
            change = 0.0 if delta <= min_delta else float("inf")
        regression = change > threshold and delta > min_delta
        diff.entries.append(
            DiffEntry(
                path=path,
                old=before,
                new=after,
                change_fraction=change,
                regression=regression,
            )
        )
    return diff


# -- module CLI (used by CI) ------------------------------------------------


def main(argv: list[str] | None = None) -> int:
    """``validate FILES...`` / ``diff OLD NEW [--threshold F]``."""
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    commands = parser.add_subparsers(dest="command", required=True)
    validate = commands.add_parser("validate", help="schema-check reports")
    validate.add_argument("files", nargs="+")
    diff = commands.add_parser("diff", help="compare two reports")
    diff.add_argument("old")
    diff.add_argument("new")
    diff.add_argument("--threshold", type=float, default=0.2)
    diff.add_argument(
        "--ignore",
        action="append",
        default=[],
        metavar="SUBSTRING",
        help="skip cost paths containing SUBSTRING (repeatable; e.g. wall_ms)",
    )
    diff.add_argument(
        "--exact",
        action="append",
        default=[],
        metavar="SUBSTRING",
        help="paths containing SUBSTRING must match exactly (repeatable; "
        "covers non-numeric leaves like digests; e.g. digest, shards)",
    )
    arguments = parser.parse_args(argv)

    if arguments.command == "validate":
        failed = False
        for name in arguments.files:
            try:
                load_report(name)
                print(f"{name}: ok")
            except ReportError as exc:
                print(f"{name}: INVALID — {exc}")
                failed = True
        return 1 if failed else 0

    result = diff_reports(
        load_report(arguments.old),
        load_report(arguments.new),
        threshold=arguments.threshold,
        ignore=tuple(arguments.ignore),
        exact=tuple(arguments.exact),
    )
    print(result.render())
    return 1 if result.failed else 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
