"""Log-bucketed latency histograms with percentile estimation.

The paper's access-cost story (Table 2, Figures 11/12) is about
*distributions*, not averages: a navigation whose p99 pays a disk seek
looks identical to an all-memory one if only means are reported.  A
:class:`LatencyHistogram` records values into exponentially growing
buckets — constant relative error, unbounded range, O(1) record — and
answers p50/p90/p99/max queries from the bucket counts.

Bucket layout: bucket 0 holds every value ``<= min_value``; bucket ``i``
(i >= 1) holds values in ``(min_value * growth**(i-1), min_value *
growth**i]``.  With the defaults (``min_value=1e-7`` seconds, ``growth=
sqrt(2)``) the buckets span 100 ns to hours at ~19 % relative resolution,
which is tighter than the run-to-run noise of any timing experiment here.

Percentile queries return the *upper bound* of the bucket containing the
requested rank (clamped to the observed max), so a reported p99 is a
guaranteed upper bound on the true p99 up to one bucket's width — the
property the tests verify against a sorted-list reference.
"""

from __future__ import annotations

import math
import time
from contextlib import contextmanager

from repro.errors import EmptyHistogramError

#: Default smallest resolvable value (seconds): 100 ns.
DEFAULT_MIN_VALUE = 1e-7
#: Default bucket growth factor: sqrt(2) per bucket.
DEFAULT_GROWTH = 2.0 ** 0.5


class LatencyHistogram:
    """Fixed-shape log-bucketed histogram over non-negative values."""

    def __init__(
        self,
        min_value: float = DEFAULT_MIN_VALUE,
        growth: float = DEFAULT_GROWTH,
    ) -> None:
        if min_value <= 0:
            raise ValueError(f"min_value must be > 0, got {min_value}")
        if growth <= 1.0:
            raise ValueError(f"growth must be > 1, got {growth}")
        self.min_value = min_value
        self.growth = growth
        self._log_growth = math.log(growth)
        self._buckets: dict[int, int] = {}
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = 0.0

    # -- recording ---------------------------------------------------------

    def bucket_index(self, value: float) -> int:
        """Index of the bucket holding ``value`` (0 = underflow bucket)."""
        if value <= self.min_value:
            return 0
        # ceil of log_growth(value / min_value); nudge for float error so
        # exact bucket upper bounds land in their own bucket.
        raw = math.log(value / self.min_value) / self._log_growth
        index = math.ceil(raw - 1e-9)
        return max(1, index)

    def bucket_upper_bound(self, index: int) -> float:
        """Largest value bucket ``index`` can hold."""
        return self.min_value * self.growth**index if index > 0 else self.min_value

    def record(self, value: float) -> None:
        """Record one observation (negative values clamp to zero)."""
        if value < 0:
            value = 0.0
        index = self.bucket_index(value)
        self._buckets[index] = self._buckets.get(index, 0) + 1
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def record_many(self, values) -> None:
        """Record every value of an iterable."""
        for value in values:
            self.record(value)

    def merge(self, other: "LatencyHistogram") -> None:
        """Fold ``other``'s observations into this histogram (same shape)."""
        if (other.min_value, other.growth) != (self.min_value, self.growth):
            raise ValueError("cannot merge histograms with different bucket shapes")
        for index, count in other._buckets.items():
            self._buckets[index] = self._buckets.get(index, 0) + count
        self.count += other.count
        self.sum += other.sum
        if other.count:
            self.min = min(self.min, other.min)
            self.max = max(self.max, other.max)

    # -- queries -----------------------------------------------------------

    @property
    def mean(self) -> float:
        """Arithmetic mean of the recorded values (0 when empty)."""
        return self.sum / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """Upper bound on the ``p``-th percentile.

        Defined over ranks: the value returned is the upper bound of the
        bucket holding the ``ceil(p/100 * count)``-th smallest
        observation, clamped into ``[min, max]`` so p100 is the exact
        maximum.  An empty histogram has no percentiles: raises
        :class:`~repro.errors.EmptyHistogramError` (callers that want a
        display placeholder catch it — see :meth:`to_dict`).
        """
        if not 0 <= p <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        if self.count == 0:
            raise EmptyHistogramError(
                f"cannot take p{p:g} of a histogram with no observations"
            )
        rank = max(1, math.ceil(p / 100.0 * self.count))
        cumulative = 0
        for index in sorted(self._buckets):
            cumulative += self._buckets[index]
            if cumulative >= rank:
                bound = self.bucket_upper_bound(index)
                return min(max(bound, self.min), self.max)
        return self.max

    @property
    def p50(self) -> float:
        return self.percentile(50)

    @property
    def p90(self) -> float:
        return self.percentile(90)

    @property
    def p99(self) -> float:
        return self.percentile(99)

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-serializable state, including headline percentiles.

        An empty histogram serializes its percentiles as the explicit
        placeholder 0.0 (``count: 0`` disambiguates) — JSON has no NaN,
        and a report consumer must not have to catch exceptions.
        """
        empty = self.count == 0
        return {
            "min_value": self.min_value,
            "growth": self.growth,
            "count": self.count,
            "sum": self.sum,
            "min": self.min if self.count else 0.0,
            "max": self.max,
            "mean": self.mean,
            "p50": 0.0 if empty else self.p50,
            "p90": 0.0 if empty else self.p90,
            "p99": 0.0 if empty else self.p99,
            "buckets": {str(k): v for k, v in sorted(self._buckets.items())},
        }

    @classmethod
    def from_dict(cls, data: dict) -> "LatencyHistogram":
        """Rebuild a histogram serialized by :meth:`to_dict`."""
        histogram = cls(min_value=data["min_value"], growth=data["growth"])
        histogram._buckets = {int(k): int(v) for k, v in data["buckets"].items()}
        histogram.count = int(data["count"])
        histogram.sum = float(data["sum"])
        histogram.min = float(data["min"]) if histogram.count else math.inf
        histogram.max = float(data["max"])
        return histogram


class HistogramSet:
    """Named family of histograms (one per operation kind)."""

    def __init__(
        self,
        min_value: float = DEFAULT_MIN_VALUE,
        growth: float = DEFAULT_GROWTH,
    ) -> None:
        self.min_value = min_value
        self.growth = growth
        self._histograms: dict[str, LatencyHistogram] = {}

    def get(self, name: str) -> LatencyHistogram:
        """The histogram for ``name``, created empty on first use."""
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = LatencyHistogram(self.min_value, self.growth)
            self._histograms[name] = histogram
        return histogram

    def observe(self, name: str, value: float) -> None:
        """Record ``value`` under operation ``name``."""
        self.get(name).record(value)

    @contextmanager
    def time(self, name: str):
        """Time the enclosed block into operation ``name`` (seconds)."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.observe(name, time.perf_counter() - start)

    def names(self) -> list[str]:
        """Recorded operation names, sorted."""
        return sorted(self._histograms)

    def __len__(self) -> int:
        return len(self._histograms)

    def __contains__(self, name: str) -> bool:
        return name in self._histograms

    def clear(self) -> None:
        """Drop every histogram."""
        self._histograms.clear()

    def to_dict(self) -> dict[str, dict]:
        """{operation: histogram.to_dict()} for every operation."""
        return {
            name: histogram.to_dict()
            for name, histogram in sorted(self._histograms.items())
        }

    @classmethod
    def from_dict(cls, data: dict[str, dict]) -> "HistogramSet":
        """Rebuild a set serialized by :meth:`to_dict`."""
        histogram_set = cls()
        for name, payload in data.items():
            histogram_set._histograms[name] = LatencyHistogram.from_dict(payload)
        return histogram_set
