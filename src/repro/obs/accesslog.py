"""Structured serving logs: sampled access log + always-on slow-query log.

Two complementary views of a live request stream, both keyed by request
id so one can be joined against the other (and against the per-request
phase breakdown the daemon returns):

* :class:`AccessLog` — one JSON record per *sampled* request, bounded
  two ways: deterministic 1-in-N sampling (``sample_every``) caps the
  write rate, and an in-memory ring (``capacity``) caps retention.  With
  a ``path`` it also appends each sampled record as a JSONL line, which
  is what CI uploads as an artifact.
* :class:`SlowQueryLog` — never sampled: *every* request at or above the
  duration threshold is counted and written, and the top-K slowest seen
  so far are retained in memory (a bounded heap) whatever the request
  volume.  A latency investigation starts here and joins back to the
  access log / phase timings by request id.

Entries are plain dicts; the daemon supplies ``rid``, op, outcome, phase
timings and counter deltas.  Both logs are thread-safe and cheap when
idle: an unsampled request costs a counter increment, a fast request a
single comparison.
"""

from __future__ import annotations

import heapq
import json
import threading
from collections import deque
from pathlib import Path
from typing import IO

#: Default in-memory entries retained by the access log.
DEFAULT_CAPACITY = 1024
#: Default sampling: log every request (operators tune this down under load).
DEFAULT_SAMPLE_EVERY = 1
#: Default slow-query threshold (seconds).
DEFAULT_SLOW_THRESHOLD_S = 0.100
#: Default number of slowest requests retained.
DEFAULT_SLOW_TOP_K = 32


def _jsonline(entry: dict) -> str:
    return json.dumps(entry, sort_keys=True, separators=(",", ":"))


class AccessLog:
    """Bounded, sampled JSONL log of served requests.

    ``sample_every=N`` keeps request 0, N, 2N, ... of the *offered*
    stream — deterministic, so a replayed run samples the same requests.
    """

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        sample_every: int = DEFAULT_SAMPLE_EVERY,
        path: Path | str | None = None,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if sample_every < 1:
            raise ValueError(f"sample_every must be >= 1, got {sample_every}")
        self.capacity = capacity
        self.sample_every = sample_every
        self.offered = 0
        self.logged = 0
        self.ring_dropped = 0
        self._lock = threading.Lock()
        self._entries: deque[dict] = deque(maxlen=capacity)
        self._sink: IO[str] | None = None
        self.path = Path(path) if path is not None else None
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._sink = self.path.open("a")

    def log(self, entry: dict) -> bool:
        """Offer one request record; returns True when it was sampled in."""
        with self._lock:
            offered = self.offered
            self.offered += 1
            if offered % self.sample_every != 0:
                return False
            self.logged += 1
            if len(self._entries) == self.capacity:
                self.ring_dropped += 1
            self._entries.append(entry)
            if self._sink is not None:
                self._sink.write(_jsonline(entry) + "\n")
                self._sink.flush()
            return True

    def entries(self) -> list[dict]:
        """Retained entries, oldest first (a copy)."""
        with self._lock:
            return list(self._entries)

    def to_dict(self) -> dict:
        """Summary counters (not the entries themselves)."""
        with self._lock:
            return {
                "offered": self.offered,
                "logged": self.logged,
                "ring_dropped": self.ring_dropped,
                "sample_every": self.sample_every,
                "capacity": self.capacity,
            }

    def close(self) -> None:
        """Flush and close the JSONL sink (the in-memory ring survives)."""
        with self._lock:
            if self._sink is not None:
                self._sink.close()
                self._sink = None

    def __enter__(self) -> "AccessLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class SlowQueryLog:
    """Always-on log of requests at or above a duration threshold.

    Retains the top-K slowest entries in memory; with a ``path`` every
    slow request is also appended as a JSONL line (the unbounded trail
    lives on disk, the bounded one in memory).
    """

    def __init__(
        self,
        threshold_s: float = DEFAULT_SLOW_THRESHOLD_S,
        top_k: int = DEFAULT_SLOW_TOP_K,
        path: Path | str | None = None,
    ) -> None:
        if threshold_s < 0:
            raise ValueError(f"threshold_s must be >= 0, got {threshold_s}")
        if top_k < 1:
            raise ValueError(f"top_k must be >= 1, got {top_k}")
        self.threshold_s = float(threshold_s)
        self.top_k = top_k
        self.observed = 0
        self.slow_count = 0
        self._lock = threading.Lock()
        #: Min-heap of (duration_s, sequence, entry): the root is the
        #: fastest of the retained slowest, evicted first.
        self._heap: list[tuple[float, int, dict]] = []
        self._sequence = 0
        self._sink: IO[str] | None = None
        self.path = Path(path) if path is not None else None
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._sink = self.path.open("a")

    def observe(self, duration_s: float, entry: dict) -> bool:
        """Consider one finished request; returns True when it was slow."""
        with self._lock:
            self.observed += 1
            if duration_s < self.threshold_s:
                return False
            self.slow_count += 1
            item = (duration_s, self._sequence, entry)
            self._sequence += 1
            if len(self._heap) < self.top_k:
                heapq.heappush(self._heap, item)
            elif duration_s > self._heap[0][0]:
                heapq.heapreplace(self._heap, item)
            if self._sink is not None:
                self._sink.write(_jsonline(entry) + "\n")
                self._sink.flush()
            return True

    def top(self) -> list[dict]:
        """Retained slowest entries, slowest first (copies of the dicts)."""
        with self._lock:
            ordered = sorted(self._heap, key=lambda item: (-item[0], item[1]))
        return [dict(entry) for _duration, _seq, entry in ordered]

    def to_dict(self) -> dict:
        """Summary counters plus the retained top-K entries."""
        with self._lock:
            observed = self.observed
            slow_count = self.slow_count
        return {
            "threshold_ms": self.threshold_s * 1000.0,
            "observed": observed,
            "slow": slow_count,
            "top": self.top(),
        }

    def close(self) -> None:
        """Flush and close the JSONL sink (retained top-K survives)."""
        with self._lock:
            if self._sink is not None:
                self._sink.close()
                self._sink = None

    def __enter__(self) -> "SlowQueryLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
