"""Per-file seek-distance histograms and sequential-run-length profiles.

The storage engine's ``disk_seeks`` counter says how *often* a read broke
sequentiality; this profile says how *far* the head jumped and how long
the sequential runs between jumps were — the direct, distributional
measurement of the paper's Figure 8 claim that the linear payload layout
turns random reads into sequential ones.

Built by replaying the I/O stream of an
:class:`~repro.obs.profile.trace.AccessTracer`.  The recorded ``seek``
flag is authoritative (it is the device's own accounting, including
cold-cache position resets); distances are reconstructed per file from
consecutive offsets, with first reads after an unknown position counted
separately (their distance is undefined).
"""

from __future__ import annotations

from repro.obs.histogram import LatencyHistogram
from repro.obs.profile.trace import ForgetEvent, IOEvent

#: Bucket shape for byte-valued histograms: power-of-two buckets from 1.
_BYTE_HISTOGRAM = dict(min_value=1.0, growth=2.0)


class FileSeekProfile:
    """Seek and run statistics for one file."""

    def __init__(self, file: str) -> None:
        self.file = file
        self.reads = 0
        self.bytes_read = 0
        self.seeks = 0
        #: Seeks from an unknown position (fresh device / after reset).
        self.first_reads = 0
        self.forward_seeks = 0
        self.backward_seeks = 0
        #: |offset - previous end| in bytes, for known-position seeks.
        self.seek_distance = LatencyHistogram(**_BYTE_HISTOGRAM)
        #: Completed sequential-run lengths, in reads per run.
        self.run_reads = LatencyHistogram(**_BYTE_HISTOGRAM)
        #: Completed sequential-run lengths, in bytes per run.
        self.run_bytes = LatencyHistogram(**_BYTE_HISTOGRAM)
        self._prev_end: int | None = None
        self._open_run_reads = 0
        self._open_run_bytes = 0

    def _close_run(self) -> None:
        if self._open_run_reads:
            self.run_reads.record(float(self._open_run_reads))
            self.run_bytes.record(float(self._open_run_bytes))
            self._open_run_reads = 0
            self._open_run_bytes = 0

    def observe(self, offset: int, length: int, seek: bool) -> None:
        """Fold one read into the profile."""
        if seek:
            self.seeks += 1
            if self._prev_end is None:
                self.first_reads += 1
            else:
                distance = offset - self._prev_end
                self.seek_distance.record(float(abs(distance)))
                if distance >= 0:
                    self.forward_seeks += 1
                else:
                    self.backward_seeks += 1
            self._close_run()
        self.reads += 1
        self.bytes_read += length
        self._open_run_reads += 1
        self._open_run_bytes += length
        self._prev_end = offset + length

    def forget(self) -> None:
        """Position reset: the next read seeks from an unknown offset."""
        self._prev_end = None

    def finalize(self) -> None:
        """Close the trailing sequential run (call once, after the trace)."""
        self._close_run()

    @property
    def sequential_fraction(self) -> float:
        """Share of reads that continued exactly at the previous end."""
        if not self.reads:
            return 0.0
        return (self.reads - self.seeks) / self.reads

    def to_dict(self) -> dict:
        """Serializable per-file profile (summary stats, not raw buckets)."""
        return {
            "reads": self.reads,
            "bytes_read": self.bytes_read,
            "seeks": self.seeks,
            "first_reads": self.first_reads,
            "forward_seeks": self.forward_seeks,
            "backward_seeks": self.backward_seeks,
            "sequential_fraction": self.sequential_fraction,
            # Percentiles of an empty distance distribution (an all-
            # sequential file) serialize as the 0.0 placeholder, matching
            # LatencyHistogram.to_dict (count: 0 disambiguates).
            "seek_distance_bytes": {
                "count": self.seek_distance.count,
                "mean": self.seek_distance.mean,
                "p50": self.seek_distance.p50 if self.seek_distance.count else 0.0,
                "p90": self.seek_distance.p90 if self.seek_distance.count else 0.0,
                "p99": self.seek_distance.p99 if self.seek_distance.count else 0.0,
                "max": self.seek_distance.max,
            },
            "sequential_runs": {
                "count": self.run_reads.count,
                "mean_reads": self.run_reads.mean,
                "max_reads": self.run_reads.max,
                "mean_bytes": self.run_bytes.mean,
                "max_bytes": self.run_bytes.max,
            },
        }


class SeekProfile:
    """Seek-distance and run-length profiles for every file in a trace."""

    def __init__(self) -> None:
        self.files: dict[str, FileSeekProfile] = {}

    @classmethod
    def from_events(cls, events) -> "SeekProfile":
        """Build a profile from :meth:`AccessTracer.io_events` output."""
        profile = cls()
        for event in events:
            kind = type(event)
            if kind is IOEvent:
                profile._file(event.file).observe(
                    event.offset, event.length, event.seek
                )
            elif kind is ForgetEvent:
                profile._file(event.file).forget()
            # PageEvents duplicate their underlying IOEvent; skip them.
        for entry in profile.files.values():
            entry.finalize()
        return profile

    def _file(self, file: str) -> FileSeekProfile:
        entry = self.files.get(file)
        if entry is None:
            entry = self.files[file] = FileSeekProfile(file)
        return entry

    # -- aggregate views ----------------------------------------------------

    @property
    def total_reads(self) -> int:
        return sum(entry.reads for entry in self.files.values())

    @property
    def total_seeks(self) -> int:
        return sum(entry.seeks for entry in self.files.values())

    @property
    def sequential_fraction(self) -> float:
        """Share of all reads, across files, that were sequential."""
        reads = self.total_reads
        if not reads:
            return 0.0
        return (reads - self.total_seeks) / reads

    def to_dict(self) -> dict:
        """Serializable profile: aggregate totals plus per-file detail."""
        return {
            "total_reads": self.total_reads,
            "total_seeks": self.total_seeks,
            "sequential_fraction": self.sequential_fraction,
            "files": {
                name: entry.to_dict() for name, entry in sorted(self.files.items())
            },
        }

    def render(self) -> str:
        """Fixed-width text table, one row per file plus a totals line."""
        if not self.files:
            return "(no I/O recorded)"
        header = (
            f"{'file':<28s} {'reads':>8s} {'seq%':>6s} {'seeks':>7s} "
            f"{'seek p50':>10s} {'seek max':>10s} {'run mean':>9s} {'run max':>8s}"
        )
        lines = [header, "-" * len(header)]
        for name in sorted(self.files):
            entry = self.files[name]
            short = name if len(name) <= 28 else "..." + name[-25:]
            lines.append(
                f"{short:<28s} {entry.reads:>8d} "
                f"{entry.sequential_fraction * 100.0:>5.1f}% {entry.seeks:>7d} "
                f"{entry.seek_distance.p50 if entry.seek_distance.count else 0.0:>10.0f} "
                f"{entry.seek_distance.max:>10.0f} "
                f"{entry.run_reads.mean:>9.1f} {entry.run_reads.max:>8.0f}"
            )
        lines.append(
            f"{'TOTAL':<28s} {self.total_reads:>8d} "
            f"{self.sequential_fraction * 100.0:>5.1f}% {self.total_seeks:>7d}"
        )
        return "\n".join(lines)
