"""Opt-in access-pattern profiler layered on the storage engine.

The aggregate counters of :mod:`repro.storage.metrics` say *how much* I/O
a workload did; this package says *which* accesses, *how far apart*, and
*what the cache would have done at any other size*:

* :mod:`repro.obs.profile.trace` — bounded ring-buffer recording of raw
  storage events (file reads, page reads, buffer hits/misses/admissions)
  hooked into :class:`~repro.storage.device.CountedFile`,
  :class:`~repro.storage.device.PageDevice` and
  :class:`~repro.storage.bufferpool.BufferPool`, with JSONL export;
* :mod:`repro.obs.profile.stackdist` — Mattson one-pass LRU
  stack-distance analysis over a buffer trace, producing the exact
  predicted hit ratio at *every* cache size (a miss-ratio curve) from a
  single recorded run;
* :mod:`repro.obs.profile.seekprof` — per-file seek-distance histograms
  and sequential-run-length statistics, quantifying the linear-layout
  benefit (Figure 8) directly;
* :mod:`repro.obs.profile.heatmap` — per-key access-frequency profiles:
  hot-set skew, top-k hot supernodes, cumulative working-set curves.

Everything follows the activation pattern of :mod:`repro.obs.tracing`:
storage code calls module-level hooks unconditionally, and the hooks
return immediately — recording and allocating nothing — unless a tracer
has been installed with :func:`~repro.obs.profile.trace.activated`.
``repro profile`` is the CLI entry point.
"""

from repro.obs.profile.heatmap import AccessHeatmap
from repro.obs.profile.seekprof import SeekProfile
from repro.obs.profile.stackdist import (
    MissRatioCurve,
    StackDistance,
    analyze_buffer_trace,
)
from repro.obs.profile.trace import AccessTracer, activated, current_profiler

__all__ = [
    "AccessHeatmap",
    "AccessTracer",
    "MissRatioCurve",
    "SeekProfile",
    "StackDistance",
    "activated",
    "analyze_buffer_trace",
    "current_profiler",
]
