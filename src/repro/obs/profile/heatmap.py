"""Access-frequency profiles: hot sets, skew, and working-set curves.

The buffer sweep shows that a small pool suffices for S-Node queries; this
profile shows *why* — query workloads concentrate their accesses on a
small hot set of supernodes and pages.  Built by replaying the buffer and
page streams of an :class:`~repro.obs.profile.trace.AccessTracer`:

* per-kind access counts for every buffer key (how often each intranode
  table, superedge list, heap page, ... was requested);
* per-file page-read counts from :class:`PageDevice` traffic;
* summary skew statistics — top-k shares and a cumulative working-set
  curve ("the hottest N keys absorb X% of accesses").

Supernode extraction: structured buffer keys carry the supernode in
position 1 (``("intra", s)``, ``("super", s, t)``), so hot-supernode
rankings fold per-key counts by that component.
"""

from __future__ import annotations

from collections import Counter


def _default_node_of(key):
    """Supernode of a structured buffer key, or None when not node-shaped."""
    if isinstance(key, tuple) and len(key) >= 2 and isinstance(key[1], int):
        return key[1]
    return None


class AccessHeatmap:
    """Per-key and per-page access-frequency profile of one trace."""

    def __init__(self) -> None:
        # kind -> Counter of buffer keys (unpinned lookups only).
        self.by_kind: dict[str, Counter] = {}
        # file -> Counter of page numbers.
        self.pages: dict[str, Counter] = {}
        self.accesses = 0
        self.pinned_accesses = 0

    @classmethod
    def from_events(cls, buffer_events, io_events=()) -> "AccessHeatmap":
        """Build a heatmap from tracer buffer (and optionally I/O) streams."""
        from repro.obs.profile.trace import BufferEvent, PageEvent

        heatmap = cls()
        for event in buffer_events:
            if type(event) is not BufferEvent:
                continue
            if event.pinned:
                heatmap.pinned_accesses += 1
                continue
            heatmap.accesses += 1
            kind = event.kind or "unattributed"
            counter = heatmap.by_kind.get(kind)
            if counter is None:
                counter = heatmap.by_kind[kind] = Counter()
            counter[event.key] += 1
        for event in io_events:
            if type(event) is not PageEvent:
                continue
            counter = heatmap.pages.get(event.file)
            if counter is None:
                counter = heatmap.pages[event.file] = Counter()
            counter[event.page] += 1
        return heatmap

    # -- rankings -----------------------------------------------------------

    def top(self, kind: str, k: int = 10) -> list[tuple[object, int]]:
        """The ``k`` most-accessed keys of ``kind`` with their counts."""
        counter = self.by_kind.get(kind)
        return counter.most_common(k) if counter else []

    def hot_supernodes(self, k: int = 10, node_of=_default_node_of) -> list[tuple[int, int]]:
        """The ``k`` most-accessed supernodes, folded across all kinds."""
        folded: Counter = Counter()
        for counter in self.by_kind.values():
            for key, count in counter.items():
                node = node_of(key)
                if node is not None:
                    folded[node] += count
        return folded.most_common(k)

    def hot_pages(self, file: str, k: int = 10) -> list[tuple[int, int]]:
        """The ``k`` most-read pages of ``file`` with their read counts."""
        counter = self.pages.get(file)
        return counter.most_common(k) if counter else []

    # -- skew ---------------------------------------------------------------

    @property
    def distinct_keys(self) -> int:
        return sum(len(counter) for counter in self.by_kind.values())

    def working_set_curve(self, max_points: int = 64) -> list[dict]:
        """Cumulative access share by key rank, hottest first.

        Each point says: the hottest ``keys`` keys absorb ``fraction`` of
        all unpinned buffer accesses.  Sampled down to ``max_points``.
        """
        counts = sorted(
            (count for counter in self.by_kind.values() for count in counter.values()),
            reverse=True,
        )
        if not counts or not self.accesses:
            return []
        points: list[dict] = []
        stride = max(1, len(counts) // max_points)
        running = 0
        for rank, count in enumerate(counts, start=1):
            running += count
            if rank % stride == 0 or rank == len(counts):
                points.append(
                    {"keys": rank, "fraction": running / self.accesses}
                )
        return points

    def skew(self) -> dict:
        """Concentration summary: top-1/top-10% shares over all keys."""
        counts = sorted(
            (count for counter in self.by_kind.values() for count in counter.values()),
            reverse=True,
        )
        if not counts or not self.accesses:
            return {"distinct_keys": 0, "top1_share": 0.0, "top10pct_share": 0.0}
        top10 = max(1, len(counts) // 10)
        return {
            "distinct_keys": len(counts),
            "top1_share": counts[0] / self.accesses,
            "top10pct_share": sum(counts[:top10]) / self.accesses,
        }

    # -- export -------------------------------------------------------------

    @staticmethod
    def _json_key(key):
        return list(key) if isinstance(key, tuple) else key

    def to_dict(self, top_k: int = 10) -> dict:
        """Serializable profile: skew, hot sets, working-set curve."""
        return {
            "accesses": self.accesses,
            "pinned_accesses": self.pinned_accesses,
            "skew": self.skew(),
            "by_kind": {
                kind: {
                    "accesses": sum(counter.values()),
                    "distinct_keys": len(counter),
                    "top": [
                        {"key": self._json_key(key), "count": count}
                        for key, count in counter.most_common(top_k)
                    ],
                }
                for kind, counter in sorted(self.by_kind.items())
            },
            "hot_supernodes": [
                {"supernode": node, "accesses": count}
                for node, count in self.hot_supernodes(top_k)
            ],
            "hot_pages": {
                file: [
                    {"page": page, "reads": count}
                    for page, count in counter.most_common(top_k)
                ]
                for file, counter in sorted(self.pages.items())
            },
            "working_set_curve": self.working_set_curve(),
        }

    def render(self, top_k: int = 10) -> str:
        """Text report: skew summary, per-kind hot keys, hot supernodes."""
        if not self.accesses and not self.pages:
            return "(no buffer accesses recorded)"
        skew = self.skew()
        lines = [
            f"buffer accesses: {self.accesses} unpinned"
            f" (+{self.pinned_accesses} pinned), {skew['distinct_keys']} distinct keys",
            f"skew: top key {skew['top1_share'] * 100.0:.1f}% of accesses,"
            f" top 10% of keys {skew['top10pct_share'] * 100.0:.1f}%",
        ]
        for kind in sorted(self.by_kind):
            counter = self.by_kind[kind]
            hot = ", ".join(
                f"{key}x{count}" for key, count in counter.most_common(min(top_k, 5))
            )
            lines.append(
                f"  {kind}: {sum(counter.values())} accesses over"
                f" {len(counter)} keys; hottest: {hot}"
            )
        hot_nodes = self.hot_supernodes(top_k)
        if hot_nodes:
            lines.append(
                "hot supernodes: "
                + ", ".join(f"s{node}x{count}" for node, count in hot_nodes)
            )
        for file in sorted(self.pages):
            counter = self.pages[file]
            lines.append(
                f"  pages[{file}]: {sum(counter.values())} reads over"
                f" {len(counter)} pages"
            )
        return "\n".join(lines)
