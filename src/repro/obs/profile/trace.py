"""Bounded ring-buffer recording of raw storage-engine access events.

An :class:`AccessTracer` captures two event streams while active:

* **I/O events** — one per :meth:`CountedFile.read_at` call, recording
  ``(file, offset, length, seek)`` exactly as the device metered it, plus
  page-granular reads from :class:`PageDevice` and position resets from
  cold-cache protocols;
* **buffer events** — one per :meth:`BufferPool.get`, recording
  ``(pool, key, kind, hit, pinned)``, plus admissions (with their byte
  costs) and drops — precisely the input the Mattson stack-distance
  analysis (:mod:`repro.obs.profile.stackdist`) replays.

Both streams share one monotonic sequence counter so they can be
interleaved, and both are bounded ring buffers (oldest events dropped,
drop counts kept) so tracing an arbitrarily long workload uses flat
memory.

**Free when disabled.**  Storage code calls the module-level hook
functions (:func:`io_read`, :func:`buffer_access`, ...) unconditionally;
each hook's first statement checks the active-tracer stack and returns
immediately when it is empty, recording and allocating nothing.  The
tests assert that no tracer method runs during an untraced build.
Activation mirrors :mod:`repro.obs.tracing`: ``with activated(tracer):``
installs the tracer for the enclosed block.
"""

from __future__ import annotations

import contextvars
import json
from collections import deque
from contextlib import contextmanager
from typing import Iterator, NamedTuple

#: Default per-stream ring-buffer bound (events).
DEFAULT_EVENT_CAPACITY = 1 << 16


class IOEvent(NamedTuple):
    """One ``CountedFile.read_at`` call, as the device metered it."""

    seq: int
    file: str
    offset: int
    length: int
    seek: bool


class PageEvent(NamedTuple):
    """One ``PageDevice.read_page`` call (page granularity)."""

    seq: int
    file: str
    page: int


class ForgetEvent(NamedTuple):
    """A ``forget_position`` reset: the next read is an unknown-distance seek."""

    seq: int
    file: str


class BufferEvent(NamedTuple):
    """One ``BufferPool.get``: a hit or miss on ``key`` of ``kind``."""

    seq: int
    pool: int
    key: object
    kind: str | None
    hit: bool
    pinned: bool


class AdmitEvent(NamedTuple):
    """One buffer admission, carrying the entry's byte cost."""

    seq: int
    pool: int
    key: object
    kind: str | None
    cost: int


class DropEvent(NamedTuple):
    """An invalidation: one key, or the whole pool when ``key`` is None."""

    seq: int
    pool: int
    key: object


class AccessTracer:
    """Two bounded ring buffers of storage events with a shared sequence."""

    __slots__ = (
        "capacity",
        "_io",
        "_buffer",
        "dropped_io",
        "dropped_buffer",
        "_seq",
    )

    def __init__(self, capacity: int = DEFAULT_EVENT_CAPACITY) -> None:
        if capacity <= 0:
            raise ValueError(f"event capacity must be > 0, got {capacity}")
        self.capacity = capacity
        self._io: deque = deque(maxlen=capacity)
        self._buffer: deque = deque(maxlen=capacity)
        self.dropped_io = 0
        self.dropped_buffer = 0
        self._seq = 0

    # -- recording ---------------------------------------------------------

    def _push_io(self, event) -> None:
        if len(self._io) == self.capacity:
            self.dropped_io += 1
        self._io.append(event)

    def _push_buffer(self, event) -> None:
        if len(self._buffer) == self.capacity:
            self.dropped_buffer += 1
        self._buffer.append(event)

    def record_io(self, file: str, offset: int, length: int, seek: bool) -> None:
        """Record one device read."""
        self._seq += 1
        self._push_io(IOEvent(self._seq, file, offset, length, seek))

    def record_page(self, file: str, page: int) -> None:
        """Record one page-granular read."""
        self._seq += 1
        self._push_io(PageEvent(self._seq, file, page))

    def record_forget(self, file: str) -> None:
        """Record a device position reset (cold-cache protocol)."""
        self._seq += 1
        self._push_io(ForgetEvent(self._seq, file))

    def record_buffer(
        self, pool: int, key, kind: str | None, hit: bool, pinned: bool
    ) -> None:
        """Record one buffer-pool lookup."""
        self._seq += 1
        self._push_buffer(BufferEvent(self._seq, pool, key, kind, hit, pinned))

    def record_admit(self, pool: int, key, kind: str | None, cost: int) -> None:
        """Record one buffer admission with its byte cost."""
        self._seq += 1
        self._push_buffer(AdmitEvent(self._seq, pool, key, kind, cost))

    def record_drop(self, pool: int, key=None) -> None:
        """Record an invalidation (``key`` None = the whole pool cleared)."""
        self._seq += 1
        self._push_buffer(DropEvent(self._seq, pool, key))

    # -- views -------------------------------------------------------------

    @property
    def seq(self) -> int:
        """Sequence number of the most recent event (0 when empty).

        Callers mark protocol boundaries (e.g. "warm-up ends here") by
        reading this between workload phases.
        """
        return self._seq

    def io_events(self) -> list:
        """Retained I/O-stream events, oldest first."""
        return list(self._io)

    def buffer_events(self) -> list:
        """Retained buffer-stream events, oldest first."""
        return list(self._buffer)

    def summary(self) -> dict[str, int]:
        """Event counts by type, plus drop counts."""
        counts: dict[str, int] = {
            "io_reads": 0,
            "page_reads": 0,
            "buffer_hits": 0,
            "buffer_misses": 0,
            "admits": 0,
            "drops": 0,
            "dropped_io": self.dropped_io,
            "dropped_buffer": self.dropped_buffer,
        }
        for event in self._io:
            if type(event) is IOEvent:
                counts["io_reads"] += 1
            elif type(event) is PageEvent:
                counts["page_reads"] += 1
        for event in self._buffer:
            if type(event) is BufferEvent:
                counts["buffer_hits" if event.hit else "buffer_misses"] += 1
            elif type(event) is AdmitEvent:
                counts["admits"] += 1
            elif type(event) is DropEvent:
                counts["drops"] += 1
        return counts

    # -- export ------------------------------------------------------------

    @staticmethod
    def _json_key(key):
        return list(key) if isinstance(key, tuple) else key

    def _records(self) -> Iterator[dict]:
        for event in self._io:
            if type(event) is IOEvent:
                yield {
                    "type": "io",
                    "seq": event.seq,
                    "file": event.file,
                    "offset": event.offset,
                    "length": event.length,
                    "seek": event.seek,
                }
            elif type(event) is PageEvent:
                yield {
                    "type": "page",
                    "seq": event.seq,
                    "file": event.file,
                    "page": event.page,
                }
            else:
                yield {"type": "forget", "seq": event.seq, "file": event.file}
        for event in self._buffer:
            if type(event) is BufferEvent:
                yield {
                    "type": "hit" if event.hit else "miss",
                    "seq": event.seq,
                    "pool": event.pool,
                    "key": self._json_key(event.key),
                    "kind": event.kind,
                    "pinned": event.pinned,
                }
            elif type(event) is AdmitEvent:
                yield {
                    "type": "admit",
                    "seq": event.seq,
                    "pool": event.pool,
                    "key": self._json_key(event.key),
                    "kind": event.kind,
                    "cost": event.cost,
                }
            else:
                yield {
                    "type": "drop",
                    "seq": event.seq,
                    "pool": event.pool,
                    "key": self._json_key(event.key),
                }

    def to_jsonl(self) -> str:
        """One JSON object per retained event (I/O stream, then buffer)."""
        return "\n".join(json.dumps(record, sort_keys=True) for record in self._records())

    def write_jsonl(self, path) -> None:
        """Write :meth:`to_jsonl` (plus trailing newline) to ``path``."""
        text = self.to_jsonl()
        with open(path, "w") as handle:
            if text:
                handle.write(text + "\n")


# -- module-level current profiler ------------------------------------------
#
# Like repro.obs.tracing, the active-profiler stack is a ContextVar:
# activation is confined to the current thread / async task, so a
# request-scoped access tracer on one daemon worker thread never records
# another thread's I/O.  An AccessTracer itself is not thread-safe; this
# confinement is what makes per-request tracing sound without locks.

_ACTIVE: contextvars.ContextVar[tuple[AccessTracer, ...]] = (
    contextvars.ContextVar("repro_active_profilers", default=())
)


def current_profiler() -> AccessTracer | None:
    """The access tracer activated innermost in this thread/task, or None."""
    stack = _ACTIVE.get()
    return stack[-1] if stack else None


@contextmanager
def activated(tracer: AccessTracer) -> Iterator[AccessTracer]:
    """Install ``tracer`` as the current profiler for the enclosed block."""
    token = _ACTIVE.set(_ACTIVE.get() + (tracer,))
    try:
        yield tracer
    finally:
        _ACTIVE.reset(token)


# -- storage-engine hooks ----------------------------------------------------
#
# Each hook's first statement is the emptiness check on the contextvar, so
# calling them with no profiler active does no work and allocates nothing.


def io_read(file, offset: int, length: int, seek: bool) -> None:
    """Hook: one ``CountedFile.read_at`` call."""
    stack = _ACTIVE.get()
    if not stack:
        return
    stack[-1].record_io(str(file), offset, length, seek)


def page_read(file, page: int) -> None:
    """Hook: one ``PageDevice.read_page`` call."""
    stack = _ACTIVE.get()
    if not stack:
        return
    stack[-1].record_page(str(file), page)


def position_forgotten(file) -> None:
    """Hook: a ``forget_position`` reset."""
    stack = _ACTIVE.get()
    if not stack:
        return
    stack[-1].record_forget(str(file))


def buffer_access(pool, key, kind: str | None, hit: bool, pinned: bool) -> None:
    """Hook: one ``BufferPool.get`` lookup."""
    stack = _ACTIVE.get()
    if not stack:
        return
    stack[-1].record_buffer(id(pool), key, kind, hit, pinned)


def buffer_admit(pool, key, kind: str | None, cost: int) -> None:
    """Hook: one buffer admission."""
    stack = _ACTIVE.get()
    if not stack:
        return
    stack[-1].record_admit(id(pool), key, kind, cost)


def buffer_drop(pool, key=None) -> None:
    """Hook: an invalidation (``key`` None = whole pool)."""
    stack = _ACTIVE.get()
    if not stack:
        return
    stack[-1].record_drop(id(pool), key)
