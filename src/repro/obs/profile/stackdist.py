"""Mattson LRU stack-distance analysis: miss-ratio curves in one pass.

The Figure 12 buffer sweep answers "what is the hit ratio at capacity C?"
by re-running the workload once per C.  Mattson's observation (1970): one
pass over the access trace answers it for *every* C simultaneously.
Maintain the LRU stack; for each access to a previously seen key, its
**stack distance** is the total byte cost of the distinct keys touched
since that key's last access, *including the key itself*.  Under byte-
budgeted LRU the access hits at capacity C exactly when its distance is
``<= C`` — entries above the key are never evicted before it (they are
younger), so the distance is both necessary and sufficient.

This matches :class:`repro.util.lru.LRUCache` exactly, with one
documented exception: that cache retains a single entry larger than the
whole budget ("admit oversized alone"), so for traces with entries
bigger than C the prediction is a *lower bound* on measured hits.  The
property tests pin both facts: exact equality for uniform costs (cost
``<= C``), and ``predicted <= measured`` always.

Feed accesses directly (:meth:`StackDistance.access`) or replay a
recorded buffer trace (:func:`analyze_buffer_trace`).  Accesses before a
protocol boundary (e.g. a warm-up execution) can update the stack
without being counted, so predictions line up with measurement windows
that begin warm.
"""

from __future__ import annotations

from bisect import bisect_right
from collections import OrderedDict

from repro.obs.profile.trace import AdmitEvent, BufferEvent, DropEvent


class StackDistance:
    """One-pass byte-weighted LRU stack-distance accumulator.

    Keys are tracked per ``pool`` (separate LRU stacks that each get the
    full capacity — the forward and backward stores of a scheme pair run
    one buffer pool each), and every counted access contributes either a
    finite distance or a compulsory (first-touch) miss.
    """

    def __init__(self) -> None:
        # pool -> OrderedDict[key, cost]; most recently used last.
        self._stacks: dict[object, OrderedDict] = {}
        self.distances: list[int] = []
        self.compulsory = 0
        self.accesses = 0
        self.uncounted = 0

    def access(self, key, cost: int | None = None, pool=0, count: bool = True) -> None:
        """Record one access to ``key``.

        ``cost`` sets (or updates) the key's byte cost; first touches
        with no cost enter the stack at cost 0 until an :meth:`admit`
        supplies it.  ``count=False`` updates the stack without counting
        the access (warm-up phases).
        """
        stack = self._stacks.get(pool)
        if stack is None:
            stack = self._stacks[pool] = OrderedDict()
        if key in stack:
            distance = 0
            for other in reversed(stack):
                distance += stack[other]
                if other == key:
                    break
            stack.move_to_end(key)
            if cost is not None:
                stack[key] = cost
            if count:
                self.distances.append(distance)
                self.accesses += 1
            else:
                self.uncounted += 1
        else:
            stack[key] = cost if cost is not None else 0
            if count:
                self.compulsory += 1
                self.accesses += 1
            else:
                self.uncounted += 1

    def admit(self, key, cost: int, pool=0) -> None:
        """Set the byte cost of ``key`` (typically right after its miss)."""
        stack = self._stacks.get(pool)
        if stack is None:
            stack = self._stacks[pool] = OrderedDict()
        stack[key] = cost

    def drop(self, key=None, pool=0) -> None:
        """Forget ``key`` (or the whole pool when None) — cache cleared."""
        stack = self._stacks.get(pool)
        if stack is None:
            return
        if key is None:
            stack.clear()
        else:
            stack.pop(key, None)

    def curve(self) -> "MissRatioCurve":
        """The miss-ratio curve over every counted access so far."""
        return MissRatioCurve(self.distances, self.compulsory, self.accesses)


class MissRatioCurve:
    """Predicted LRU hit/miss ratio as a function of cache capacity."""

    def __init__(
        self, distances: list[int], compulsory: int, accesses: int
    ) -> None:
        self._sorted = sorted(distances)
        self.compulsory = compulsory
        self.accesses = accesses

    def predicted_hits(self, capacity: int) -> int:
        """Exact predicted LRU hits at byte budget ``capacity``."""
        return bisect_right(self._sorted, capacity)

    def hit_ratio(self, capacity: int) -> float:
        """Predicted hit ratio at ``capacity`` (0 when no accesses)."""
        if not self.accesses:
            return 0.0
        return self.predicted_hits(capacity) / self.accesses

    def miss_ratio(self, capacity: int) -> float:
        """Predicted miss ratio at ``capacity`` (1 - hit ratio)."""
        return 1.0 - self.hit_ratio(capacity)

    @property
    def min_useful_capacity(self) -> int:
        """Smallest capacity with any predicted hit (0 when none)."""
        return self._sorted[0] if self._sorted else 0

    @property
    def saturation_capacity(self) -> int:
        """Capacity beyond which more memory cannot help (max distance).

        The byte budget at which every non-compulsory access hits — the
        "further increase in buffer size does not improve performance"
        knee of Figure 12, read off the curve instead of swept for.
        """
        return self._sorted[-1] if self._sorted else 0

    def breakpoints(self) -> list[tuple[int, int]]:
        """(capacity, cumulative hits) at every distinct stack distance.

        The full exact curve: hit count is a step function changing only
        at these capacities.
        """
        points: list[tuple[int, int]] = []
        for index, distance in enumerate(self._sorted):
            if points and points[-1][0] == distance:
                points[-1] = (distance, index + 1)
            else:
                points.append((distance, index + 1))
        return points

    def to_dict(self, capacities: list[int] | None = None, max_points: int = 256) -> dict:
        """Serializable curve: summary, sampled breakpoints, optional spot
        predictions at ``capacities``."""
        points = self.breakpoints()
        if len(points) > max_points:
            step = len(points) / max_points
            sampled = [points[int(i * step)] for i in range(max_points)]
            if sampled[-1] != points[-1]:
                sampled.append(points[-1])
            points = sampled
        out = {
            "accesses": self.accesses,
            "compulsory_misses": self.compulsory,
            "min_useful_capacity": self.min_useful_capacity,
            "saturation_capacity": self.saturation_capacity,
            "curve": [
                {
                    "capacity_bytes": capacity,
                    "hits": hits,
                    "hit_ratio": hits / self.accesses if self.accesses else 0.0,
                }
                for capacity, hits in points
            ],
        }
        if capacities is not None:
            out["at"] = {
                str(capacity): {
                    "predicted_hits": self.predicted_hits(capacity),
                    "hit_ratio": self.hit_ratio(capacity),
                }
                for capacity in capacities
            }
        return out


def analyze_buffer_trace(
    events,
    include_pinned: bool = False,
    count_from_seq: int = 0,
) -> MissRatioCurve:
    """Replay a recorded buffer-event stream through Mattson analysis.

    ``events`` is :meth:`AccessTracer.buffer_events` output (access,
    admit and drop events, in order).  Pinned lookups live outside the
    LRU budget and are skipped unless ``include_pinned``.  Events with
    ``seq < count_from_seq`` update the stack without being counted —
    pass the tracer's ``seq`` taken after a warm-up phase to predict the
    hit ratio of the measured window only.
    """
    analysis = StackDistance()
    for event in events:
        kind = type(event)
        if kind is BufferEvent:
            if event.pinned and not include_pinned:
                continue
            analysis.access(
                event.key, pool=event.pool, count=event.seq >= count_from_seq
            )
        elif kind is AdmitEvent:
            analysis.admit(event.key, event.cost, pool=event.pool)
        elif kind is DropEvent:
            analysis.drop(event.key, pool=event.pool)
    return analysis.curve()
