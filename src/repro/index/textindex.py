"""Inverted text index with positional phrase matching.

Supports the three text predicates the paper's workload uses:

* phrase search ("pages containing the phrase 'Mobile networking'");
* at-least-k-of-a-word-set matching (Analysis 2: "pages that contain at
  least two of the words in Cw");
* plain conjunctive word search.

Positions are stored per (term, page) so phrases are exact consecutive
matches, the way a repository-grade index (e.g. the WebBase text index)
resolves them.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.errors import QueryError
from repro.webdata.corpus import Repository


class TextIndex:
    """Positional inverted index over a repository's page terms."""

    def __init__(self, repository: Repository) -> None:
        # term -> {page_id -> sorted positions}
        self._postings: dict[str, dict[int, list[int]]] = {}
        self._num_pages = repository.num_pages
        for page in repository.pages:
            for position, term in enumerate(page.terms):
                term_map = self._postings.setdefault(term, {})
                term_map.setdefault(page.page_id, []).append(position)

    @property
    def num_terms(self) -> int:
        """Distinct terms indexed."""
        return len(self._postings)

    def document_frequency(self, term: str) -> int:
        """Number of pages containing ``term``."""
        return len(self._postings.get(term.lower(), {}))

    def pages_with_term(self, term: str) -> set[int]:
        """Pages containing ``term`` at least once."""
        return set(self._postings.get(term.lower(), {}))

    def pages_with_all(self, terms: Sequence[str]) -> set[int]:
        """Pages containing every term in ``terms`` (conjunction)."""
        if not terms:
            raise QueryError("empty term conjunction")
        sets = sorted(
            (self.pages_with_term(term) for term in terms), key=len
        )
        result = sets[0]
        for other in sets[1:]:
            result &= other
            if not result:
                break
        return result

    def pages_with_phrase(self, phrase: Sequence[str]) -> set[int]:
        """Pages containing ``phrase`` as consecutive terms."""
        words = [word.lower() for word in phrase]
        if not words:
            raise QueryError("empty phrase")
        if len(words) == 1:
            return self.pages_with_term(words[0])
        candidates = self.pages_with_all(words)
        result: set[int] = set()
        first_postings = self._postings.get(words[0], {})
        for page in candidates:
            positions = set(first_postings.get(page, ()))
            if not positions:
                continue
            for offset, word in enumerate(words[1:], start=1):
                next_positions = self._postings.get(word, {}).get(page, ())
                positions &= {p - offset for p in next_positions}
                if not positions:
                    break
            if positions:
                result.add(page)
        return result

    def pages_with_at_least(self, words: Iterable[str], k: int) -> set[int]:
        """Pages containing at least ``k`` distinct words of ``words``.

        Multi-word entries (e.g. "charlie brown") count as phrases.
        """
        if k < 1:
            raise QueryError(f"k must be >= 1, got {k}")
        counts: dict[int, int] = {}
        for entry in words:
            parts = entry.split()
            pages = (
                self.pages_with_phrase(parts)
                if len(parts) > 1
                else self.pages_with_term(entry)
            )
            for page in pages:
                counts[page] = counts.get(page, 0) + 1
        return {page for page, count in counts.items() if count >= k}
