"""PageRank index over a repository.

Wraps :func:`repro.graph.algorithms.pagerank` with the lookup and top-k
operations the paper's queries use (Query 1 weights pages by "normalized
PageRank value"; Query 3 takes "the top 100 pages in order of PageRank").
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from repro.errors import QueryError
from repro.graph.algorithms import pagerank
from repro.webdata.corpus import Repository


class PageRankIndex:
    """Precomputed PageRank scores with rank/top-k access."""

    def __init__(
        self,
        repository: Repository,
        damping: float = 0.85,
        tolerance: float = 1e-10,
    ) -> None:
        self._scores = pagerank(
            repository.graph, damping=damping, tolerance=tolerance
        )
        self._max = float(self._scores.max()) if len(self._scores) else 0.0

    def score(self, page: int) -> float:
        """Raw PageRank score of ``page`` (scores sum to one)."""
        if not 0 <= page < len(self._scores):
            raise QueryError(f"page {page} out of range")
        return float(self._scores[page])

    def normalized(self, page: int) -> float:
        """Score divided by the maximum score (the paper's page weights)."""
        if self._max == 0.0:
            return 0.0
        return self.score(page) / self._max

    def top_k(self, pages: Iterable[int], k: int) -> list[int]:
        """The ``k`` highest-ranked pages among ``pages`` (best first)."""
        if k < 0:
            raise QueryError(f"k must be >= 0, got {k}")
        candidates = list(pages)
        candidates.sort(key=lambda p: (-self._scores[p], p))
        return candidates[:k]

    def rank_order(self, pages: Iterable[int]) -> list[int]:
        """All of ``pages`` sorted by descending PageRank."""
        return sorted(pages, key=lambda p: (-self._scores[p], p))

    @property
    def scores(self) -> np.ndarray:
        """The full score vector (read-only use)."""
        return self._scores
