"""Auxiliary repository indexes: full-text (phrase) index and PageRank.

The paper's complex queries combine graph navigation with predicates over
these indexes.  They stand in for the Stanford WebBase indexing machinery,
which the paper accesses remotely and explicitly *excludes* from the
reported navigation times — we use them only to resolve query predicates.
"""

from repro.index.pagerank_index import PageRankIndex
from repro.index.textindex import TextIndex

__all__ = ["TextIndex", "PageRankIndex"]
