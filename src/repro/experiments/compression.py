"""Table 1: compression statistics for Plain Huffman, Link3 and S-Node.

For both the Web graph WG and its transpose WGT, the experiment measures
bits per edge for each scheme, averaged over three dataset sizes as in the
paper, and reproduces the last two columns ("max repository size given
8 GB of main memory") with the paper's exact arithmetic: a graph over n
pages holds ``mean_out_degree * n`` edges, so the largest n that fits is
``memory_bits / (mean_out_degree * bits_per_edge)``.
"""

from __future__ import annotations

import argparse
import tempfile
from dataclasses import asdict, dataclass

from repro.baselines import (
    HuffmanRepresentation,
    Link3Representation,
    SNodeRepresentation,
)
from repro.experiments.harness import (
    add_report_arguments,
    add_trace_arguments,
    dataset,
    emit_report,
    experiment_refinement_config,
    format_table,
    sweep_sizes,
    trace_session,
)
from repro.snode.build import BuildOptions, build_snode

MEMORY_BYTES = 8 * 1024**3  # the paper's 8 GB headline


@dataclass
class CompressionRow:
    """One scheme's Table 1 row."""

    scheme: str
    bits_per_edge_wg: float
    bits_per_edge_wgt: float
    max_pages_wg: int
    max_pages_wgt: int


def _measure_scheme(scheme: str, repository, workdir: str) -> tuple[float, float]:
    """(bits/edge on WG, bits/edge on WGT) for one scheme on one dataset."""
    transpose = repository.graph.transpose()
    if scheme == "plain-huffman":
        forward = HuffmanRepresentation(repository.graph)
        backward = HuffmanRepresentation(transpose)
        return forward.bits_per_edge(), backward.bits_per_edge()
    if scheme == "link3":
        with Link3Representation(repository, f"{workdir}/l3f") as forward:
            wg = forward.bits_per_edge()
        with Link3Representation(repository, f"{workdir}/l3b", graph=transpose) as backward:
            wgt = backward.bits_per_edge()
        return wg, wgt
    if scheme == "s-node":
        options = BuildOptions(refinement=experiment_refinement_config())
        build = build_snode(repository, f"{workdir}/snf", options)
        wg = SNodeRepresentation(build).bits_per_edge()
        build.store.close()
        options_t = BuildOptions(
            refinement=experiment_refinement_config(), transpose=True
        )
        build_t = build_snode(repository, f"{workdir}/snb", options_t)
        wgt = SNodeRepresentation(build_t).bits_per_edge()
        build_t.store.close()
        return wg, wgt
    raise ValueError(f"unknown scheme {scheme}")


def run(sizes: list[int] | None = None) -> tuple[list[CompressionRow], float]:
    """Measure all three schemes; returns (rows, mean out-degree)."""
    # Paper: "each entry is an average over the 25, 50 and 100 million
    # page data sets" — we use the same three relative sizes (1st, 2nd,
    # 4th of the sweep).
    all_sizes = sweep_sizes()
    sizes = sizes or [all_sizes[0], all_sizes[1], all_sizes[3]]
    accumulators: dict[str, list[tuple[float, float]]] = {
        "plain-huffman": [],
        "link3": [],
        "s-node": [],
    }
    degree_sum = 0.0
    for size in sizes:
        repository = dataset(size)
        degree_sum += repository.graph.mean_out_degree()
        with tempfile.TemporaryDirectory() as workdir:
            for scheme in accumulators:
                accumulators[scheme].append(
                    _measure_scheme(scheme, repository, workdir)
                )
    mean_degree = degree_sum / len(sizes)
    rows = []
    for scheme, samples in accumulators.items():
        wg = sum(s[0] for s in samples) / len(samples)
        wgt = sum(s[1] for s in samples) / len(samples)
        rows.append(
            CompressionRow(
                scheme=scheme,
                bits_per_edge_wg=wg,
                bits_per_edge_wgt=wgt,
                max_pages_wg=int(MEMORY_BYTES * 8 / (mean_degree * wg)),
                max_pages_wgt=int(MEMORY_BYTES * 8 / (mean_degree * wgt)),
            )
        )
    return rows, mean_degree


def report(rows: list[CompressionRow], mean_degree: float) -> str:
    """Paper-style Table 1."""
    table = format_table(
        [
            "scheme",
            "bits/edge WG",
            "bits/edge WGT",
            "max pages in 8GB (WG)",
            "max pages in 8GB (WGT)",
        ],
        [
            (
                r.scheme,
                r.bits_per_edge_wg,
                r.bits_per_edge_wgt,
                f"{r.max_pages_wg:,}",
                f"{r.max_pages_wgt:,}",
            )
            for r in rows
        ],
    )
    ordered = sorted(rows, key=lambda r: r.bits_per_edge_wg)
    summary = (
        f"\nmean out-degree = {mean_degree:.1f}; "
        f"WG ordering: {' < '.join(r.scheme for r in ordered)}"
    )
    return table + summary


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    add_report_arguments(parser)
    add_trace_arguments(parser)
    arguments = parser.parse_args()
    with trace_session(arguments, "compression") as tracer:
        rows, mean_degree = run()
    if not arguments.quiet:
        print("[compression] Table 1")
        print(report(rows, mean_degree))
    emit_report(
        arguments.json_dir,
        "compression",
        {
            "rows": [asdict(row) for row in rows],
            "mean_out_degree": mean_degree,
        },
        spans=tracer.summary_dict() if tracer else None,
    )


if __name__ == "__main__":
    main()
