"""Shared experiment infrastructure.

Scaling: the paper sweeps 25/50/75/100/115 million pages; we sweep the
same five-point shape at a pure-Python-friendly scale (default master
repository of 20 000 pages, overridable through the ``REPRO_SCALE``
environment variable, which multiplies every size).  Datasets are
crawl-order prefixes of one master repository, exactly the paper's
"reading the repository sequentially from the beginning".
"""

from __future__ import annotations

import os
from collections.abc import Sequence
from functools import lru_cache

from repro.partition.clustered_split import ClusteredSplitConfig
from repro.partition.refine import RefinementConfig
from repro.webdata.corpus import Repository
from repro.webdata.generator import GeneratorConfig, generate_web

MASTER_SEED = 2003


def scale_factor() -> float:
    """Global size multiplier from the ``REPRO_SCALE`` env var (default 1)."""
    try:
        return float(os.environ.get("REPRO_SCALE", "1"))
    except ValueError:
        return 1.0


def master_size() -> int:
    """Pages in the master repository."""
    return max(1000, int(20_000 * scale_factor()))


def sweep_sizes() -> list[int]:
    """The five dataset sizes (the paper's 25/50/75/100/115M shape)."""
    master = master_size()
    fractions = (0.2, 0.4, 0.6, 0.8, 1.0)
    return [int(master * fraction) for fraction in fractions]


@lru_cache(maxsize=1)
def master_repository() -> Repository:
    """The master synthetic crawl (generated once per process)."""
    return generate_web(GeneratorConfig(num_pages=master_size(), seed=MASTER_SEED))


@lru_cache(maxsize=8)
def dataset(num_pages: int) -> Repository:
    """Crawl-order prefix dataset of ``num_pages`` pages."""
    master = master_repository()
    if num_pages >= master.num_pages:
        return master
    return master.crawl_prefix(num_pages)


def experiment_refinement_config(seed: int = 7) -> RefinementConfig:
    """The refinement configuration every experiment uses."""
    return RefinementConfig(
        seed=seed,
        min_element_size=512,
        min_url_group_size=128,
        clustered=ClusteredSplitConfig(min_cluster_size=128),
    )


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """Fixed-width text table (all experiment CLIs print through this)."""
    def render(cell: object) -> str:
        if isinstance(cell, float):
            return f"{cell:.2f}"
        return str(cell)

    rendered = [[render(cell) for cell in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in rendered)) if rendered else len(headers[i])
        for i in range(len(headers))
    ]
    lines = [
        "  ".join(header.ljust(widths[i]) for i, header in enumerate(headers)),
        "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for row in rendered:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(row))))
    return "\n".join(lines)
