"""Shared experiment infrastructure.

Scaling: the paper sweeps 25/50/75/100/115 million pages; we sweep the
same five-point shape at a pure-Python-friendly scale (default master
repository of 20 000 pages, overridable through the ``REPRO_SCALE``
environment variable, which multiplies every size).  Datasets are
crawl-order prefixes of one master repository, exactly the paper's
"reading the repository sequentially from the beginning".
"""

from __future__ import annotations

import os
import sys
import warnings
from collections.abc import Sequence
from contextlib import contextmanager
from functools import lru_cache
from pathlib import Path

from repro.errors import ReproError
from repro.partition.clustered_split import ClusteredSplitConfig
from repro.partition.refine import RefinementConfig
from repro.webdata.corpus import Repository
from repro.webdata.generator import GeneratorConfig, generate_web

MASTER_SEED = 2003


def scale_factor() -> float:
    """Global size multiplier from the ``REPRO_SCALE`` env var (default 1).

    A value that does not parse as a float is *warned about* (naming the
    bad value) and replaced by 1.0; a value that parses but is not
    positive is rejected outright — silently running the full-size sweep
    because of a typo'd ``REPRO_SCALE=-1`` would waste hours.
    """
    raw = os.environ.get("REPRO_SCALE", "1")
    try:
        value = float(raw)
    except ValueError:
        warnings.warn(
            f"ignoring invalid REPRO_SCALE={raw!r} (not a number); using 1.0",
            RuntimeWarning,
            stacklevel=2,
        )
        return 1.0
    if value <= 0:
        raise ReproError(
            f"REPRO_SCALE must be positive, got {raw!r}"
        )
    return value


def master_size() -> int:
    """Pages in the master repository."""
    return max(1000, int(20_000 * scale_factor()))


def sweep_sizes() -> list[int]:
    """The five dataset sizes (the paper's 25/50/75/100/115M shape)."""
    master = master_size()
    fractions = (0.2, 0.4, 0.6, 0.8, 1.0)
    return [int(master * fraction) for fraction in fractions]


@lru_cache(maxsize=1)
def master_repository() -> Repository:
    """The master synthetic crawl (generated once per process)."""
    return generate_web(GeneratorConfig(num_pages=master_size(), seed=MASTER_SEED))


@lru_cache(maxsize=8)
def dataset(num_pages: int) -> Repository:
    """Crawl-order prefix dataset of ``num_pages`` pages."""
    master = master_repository()
    if num_pages >= master.num_pages:
        return master
    return master.crawl_prefix(num_pages)


def experiment_refinement_config(seed: int = 7) -> RefinementConfig:
    """The refinement configuration every experiment uses."""
    return RefinementConfig(
        seed=seed,
        min_element_size=512,
        min_url_group_size=128,
        clustered=ClusteredSplitConfig(min_cluster_size=128),
    )


def add_report_arguments(parser) -> None:
    """Add the uniform ``--json [DIR]`` bench-report flag to a parser.

    Every experiment CLI accepts it: ``--json`` alone writes
    ``BENCH_<experiment>.json`` into the current directory, ``--json DIR``
    writes it under ``DIR``.
    """
    parser.add_argument(
        "--json",
        nargs="?",
        const=".",
        default=None,
        metavar="DIR",
        dest="json_dir",
        help="write a machine-readable BENCH_<experiment>.json report "
        "(optionally into DIR)",
    )


def add_trace_arguments(parser) -> None:
    """Add the uniform tracing flags every experiment driver accepts.

    The same surface as ``repro build``: ``--trace`` prints the span tree
    to stderr, ``--trace-out FILE`` writes span JSONL, ``--folded FILE``
    writes flamegraph folded stacks, and ``--quiet`` suppresses the
    human-readable stdout report (useful with ``--json``).
    """
    parser.add_argument(
        "--trace",
        action="store_true",
        help="print the span tree attributing experiment time to phases (stderr)",
    )
    parser.add_argument(
        "--trace-out",
        default=None,
        metavar="FILE",
        help="write the full span tree as JSON lines to FILE",
    )
    parser.add_argument(
        "--trace-depth",
        type=int,
        default=2,
        help="maximum span depth shown by --trace (default 2)",
    )
    parser.add_argument(
        "--folded",
        default=None,
        metavar="FILE",
        help="write flamegraph folded stacks (span path + self time) to FILE",
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="suppress the human-readable report on stdout",
    )


@contextmanager
def trace_session(arguments, label: str):
    """Activate a span tracer for an experiment when any trace flag is set.

    Yields the active :class:`~repro.obs.tracing.Tracer` (rooted at a
    ``label`` span so buffer-pool load notes always have an open span), or
    None when no ``--trace``/``--trace-out``/``--folded`` flag was given —
    tracing stays strictly opt-in.  On exit the requested exports are
    written, mirroring ``repro build`` exactly.  Pass the tracer's
    :meth:`~repro.obs.tracing.Tracer.summary_dict` into
    :func:`emit_report`'s ``spans`` so bench reports carry the span
    aggregates.
    """
    wants_trace = getattr(arguments, "trace", False)
    trace_out = getattr(arguments, "trace_out", None)
    folded = getattr(arguments, "folded", None)
    if not (wants_trace or trace_out or folded):
        yield None
        return
    from repro.obs.tracing import Tracer, activated

    tracer = Tracer()
    with activated(tracer):
        with tracer.span(label):
            yield tracer
    if wants_trace:
        print(f"{label} trace (span-attributed phases):", file=sys.stderr)
        depth = getattr(arguments, "trace_depth", 2)
        print(tracer.render(max_depth=depth), file=sys.stderr)
    if trace_out:
        tracer.write_jsonl(trace_out)
        print(f"trace spans written to {trace_out}", file=sys.stderr)
    if folded:
        tracer.write_folded(folded)
        print(f"folded stacks written to {folded}", file=sys.stderr)


def emit_report(
    json_dir: str | None,
    experiment: str,
    results,
    params: dict | None = None,
    metrics: dict | None = None,
    histograms: dict | None = None,
    spans: dict | None = None,
) -> Path | None:
    """Write the experiment's bench report if ``--json`` was requested.

    Adds the harness-level context every report shares (``REPRO_SCALE``,
    master repository size) into ``params`` and prints the written path so
    scripts can pick it up.  Returns the path, or None when ``json_dir``
    is None (no ``--json``).
    """
    if json_dir is None:
        return None
    from repro.obs.report import build_report, write_report

    merged_params = {
        "scale_factor": scale_factor(),
        "master_size": master_size(),
    }
    merged_params.update(params or {})
    report = build_report(
        experiment,
        results,
        params=merged_params,
        metrics=metrics,
        histograms=histograms,
        spans=spans,
    )
    path = write_report(report, json_dir)
    print(f"bench report written to {path}")
    return path


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """Fixed-width text table (all experiment CLIs print through this)."""
    def render(cell: object) -> str:
        if isinstance(cell, float):
            return f"{cell:.2f}"
        return str(cell)

    rendered = [[render(cell) for cell in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in rendered)) if rendered else len(headers[i])
        for i in range(len(headers))
    ]
    lines = [
        "  ".join(header.ljust(widths[i]) for i, header in enumerate(headers)),
        "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for row in rendered:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(row))))
    return "\n".join(lines)
