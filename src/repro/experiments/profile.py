"""``repro profile``: one workload, every access-pattern view at once.

Runs a query (or build) workload under the access-pattern profiler
(:mod:`repro.obs.profile`) and renders the three analyses the aggregate
counters cannot provide:

* **miss-ratio curves** — Mattson stack-distance analysis of the recorded
  buffer trace gives the exact predicted LRU hit ratio at *every* cache
  size from one run, then a measured mini-sweep at the requested
  capacities validates the prediction in the same report;
* **seek profile** — per-file seek-distance histograms and
  sequential-run lengths (the distributional form of Figure 8's
  ``disk_seeks`` rule);
* **access heatmap** — hot-set skew, top-k hot supernodes and the
  cumulative working-set curve explaining *why* a small buffer suffices
  (Figure 12).

``--json`` writes the combined profile as a validated
``BENCH_profile.json`` bench report; ``--events-out`` dumps the raw
access-event JSONL for offline analysis.
"""

from __future__ import annotations

import argparse
import sys
import tempfile
from pathlib import Path

from repro.errors import BufferCapacityError, ReproError
from repro.experiments.buffer_sweep import PREDICT_TRACE_CAPACITY, SWEEP_QUERIES
from repro.experiments.harness import (
    add_report_arguments,
    add_trace_arguments,
    dataset,
    emit_report,
    format_table,
    sweep_sizes,
    trace_session,
)
from repro.experiments.queries import SCHEMES, _build_pair
from repro.index.pagerank_index import PageRankIndex
from repro.index.textindex import TextIndex
from repro.obs import profile as access_profile
from repro.obs import tracing
from repro.query.engine import QueryEngine

#: Capacities (KiB) the measured validation mini-sweep runs at.
DEFAULT_PROFILE_CAPACITIES_KB = (16, 32, 64, 128, 256)

WORKLOADS = ("queries", "build")


class ProfileResult:
    """Everything ``repro profile`` measured and derived for one workload."""

    def __init__(self, scheme: str, workload: str, num_pages: int, trials: int) -> None:
        self.scheme = scheme
        self.workload = workload
        self.num_pages = num_pages
        self.trials = trials
        #: Per-query Mattson curves (one entry, "build", for build runs).
        self.curves: dict[str, access_profile.MissRatioCurve] = {}
        #: Measured-vs-predicted rows from the validation mini-sweep.
        self.validation: list[dict] = []
        self.seek: access_profile.SeekProfile | None = None
        self.heatmap: access_profile.AccessHeatmap | None = None
        #: Summed event counts across all recording tracers.
        self.trace_counts: dict[str, int] = {}
        #: Raw per-phase JSONL dumps, for ``--events-out``.
        self.event_dumps: list[tuple[str, str]] = []

    @property
    def worst_delta(self) -> float:
        """Largest |predicted - measured| hit-ratio gap (0 when unswept)."""
        return max((abs(row["delta"]) for row in self.validation), default=0.0)


def _merge_counts(into: dict[str, int], counts: dict[str, int]) -> None:
    for name, value in counts.items():
        into[name] = into.get(name, 0) + value


def _record_query_traces(result: ProfileResult, pair, engine, trials: int) -> list:
    """Phase 1: one profiled run per query; fills curves, returns tracers."""
    tracers = []
    for query_name, query_fn in SWEEP_QUERIES.items():
        tracer = access_profile.AccessTracer(capacity=PREDICT_TRACE_CAPACITY)
        pair.drop_caches()
        with tracing.span("profile.record", query=query_name):
            with access_profile.activated(tracer):
                query_fn(engine)  # cold warm-up: stack-updating, uncounted
                boundary = tracer.seq
                for _ in range(trials):
                    query_fn(engine)
        result.curves[query_name] = access_profile.analyze_buffer_trace(
            tracer.buffer_events(), count_from_seq=boundary
        )
        _merge_counts(result.trace_counts, tracer.summary())
        result.event_dumps.append((query_name, tracer.to_jsonl()))
        tracers.append(tracer)
    return tracers


def _measure_validation(
    result: ProfileResult, pair, engine, capacities_kb, trials: int
) -> None:
    """Phase 2: measured mini-sweep at each capacity vs the predictions."""
    for capacity_kb in capacities_kb:
        try:
            pair.set_buffer_bytes(capacity_kb * 1024)
        except BufferCapacityError:
            # Capacity below the scheme's pinned floor: the point is
            # infeasible, not mispredicted — skip it explicitly.
            tracing.note("profile_validation_infeasible")
            continue
        for query_name, query_fn in SWEEP_QUERIES.items():
            pair.drop_caches()
            query_fn(engine)  # warm-up, matching the recorded protocol
            hits = 0
            misses = 0
            with tracing.span(
                "profile.measure", query=query_name, capacity_kb=capacity_kb
            ):
                for _ in range(trials):
                    pair.reset_io()
                    query_fn(engine)
                    trial_hits, trial_misses = pair.buffer_totals()
                    hits += trial_hits
                    misses += trial_misses
            measured = hits / (hits + misses) if (hits + misses) else 0.0
            predicted = result.curves[query_name].hit_ratio(capacity_kb * 1024)
            result.validation.append(
                {
                    "query": query_name,
                    "capacity_kb": capacity_kb,
                    "predicted_hit_ratio": predicted,
                    "measured_hit_ratio": measured,
                    "delta": predicted - measured,
                }
            )


def run(
    size: int | None = None,
    scheme: str = "s-node",
    workload: str = "queries",
    capacities_kb: tuple[int, ...] = DEFAULT_PROFILE_CAPACITIES_KB,
    trials: int = 2,
) -> ProfileResult:
    """Profile one workload; returns curves + validation + seek + heatmap."""
    if workload not in WORKLOADS:
        raise ReproError(f"unknown workload {workload!r}; choose from {WORKLOADS}")
    if scheme not in SCHEMES:
        raise ReproError(f"unknown scheme {scheme!r}; choose from {SCHEMES}")
    size = size or sweep_sizes()[3]
    repository = dataset(size)
    result = ProfileResult(scheme, workload, size, trials)
    with tempfile.TemporaryDirectory() as workdir:
        if workload == "build":
            _run_build(result, repository, Path(workdir))
        else:
            with tracing.span("profile.build", scheme=scheme):
                pair = _build_pair(
                    scheme, repository, Path(workdir) / scheme, capacities_kb[0] * 1024
                )
            engine = QueryEngine(
                repository,
                TextIndex(repository),
                PageRankIndex(repository),
                pair.forward,
                pair.backward,
            )
            tracers = _record_query_traces(result, pair, engine, trials)
            _measure_validation(result, pair, engine, capacities_kb, trials)
            io_events = [e for t in tracers for e in t.io_events()]
            buffer_events = [e for t in tracers for e in t.buffer_events()]
            result.seek = access_profile.SeekProfile.from_events(io_events)
            result.heatmap = access_profile.AccessHeatmap.from_events(
                buffer_events, io_events
            )
            pair.close()
    return result


def _run_build(result: ProfileResult, repository, workdir: Path) -> None:
    """Profile a fresh S-Node build (open + verify reads) end to end."""
    from repro.snode.build import BuildOptions, build_snode

    tracer = access_profile.AccessTracer(capacity=PREDICT_TRACE_CAPACITY)
    with tracing.span("profile.build_workload"):
        with access_profile.activated(tracer):
            build = build_snode(
                repository, workdir / "snode", BuildOptions()
            )
            # Touch every supernode once so the trace includes the read
            # path, not only the build's write-side bookkeeping.
            for supernode in range(build.model.num_supernodes):
                build.store.intranode_rows(supernode)
            build.store.close()
    result.curves["build"] = access_profile.analyze_buffer_trace(
        tracer.buffer_events()
    )
    _merge_counts(result.trace_counts, tracer.summary())
    result.event_dumps.append(("build", tracer.to_jsonl()))
    result.seek = access_profile.SeekProfile.from_events(tracer.io_events())
    result.heatmap = access_profile.AccessHeatmap.from_events(
        tracer.buffer_events(), tracer.io_events()
    )


def render(result: ProfileResult, top: int = 10) -> str:
    """The full text report."""
    lines = [
        f"[profile] scheme={result.scheme} workload={result.workload} "
        f"pages={result.num_pages} trials={result.trials}"
    ]
    lines.append("\n== miss-ratio curves (Mattson, one recorded run each) ==")
    for name, curve in sorted(result.curves.items()):
        lines.append(
            f"{name}: {curve.accesses} accesses, {curve.compulsory} compulsory; "
            f"first hit at {curve.min_useful_capacity / 1024.0:.1f} KiB, "
            f"saturates at {curve.saturation_capacity / 1024.0:.1f} KiB"
        )
    if result.validation:
        rows = [
            (
                row["query"],
                f"{row['capacity_kb']} KiB",
                f"{row['predicted_hit_ratio'] * 100.0:.2f}%",
                f"{row['measured_hit_ratio'] * 100.0:.2f}%",
                f"{row['delta'] * 100.0:+.2f}pp",
            )
            for row in result.validation
        ]
        lines.append("\npredicted vs measured hit ratio:")
        lines.append(
            format_table(
                ["query", "buffer", "predicted", "measured", "delta"], rows
            )
        )
        lines.append(
            f"worst |predicted - measured| = {result.worst_delta * 100.0:.2f}pp"
        )
    if result.seek is not None:
        lines.append("\n== seek profile (Figure 8 locality, distributional) ==")
        lines.append(result.seek.render())
    if result.heatmap is not None:
        lines.append("\n== access heatmap (hot set / working set) ==")
        lines.append(result.heatmap.render(top))
    dropped = result.trace_counts.get("dropped_io", 0) + result.trace_counts.get(
        "dropped_buffer", 0
    )
    if dropped:
        lines.append(f"\nwarning: {dropped} trace events dropped (ring bound)")
    return "\n".join(lines)


def to_results(result: ProfileResult, capacities_kb, top: int = 10) -> dict:
    """JSON-serializable profile payload (the ``--json`` artifact body)."""
    capacities = [kb * 1024 for kb in capacities_kb]
    return {
        "scheme": result.scheme,
        "workload": result.workload,
        "num_pages": result.num_pages,
        "trials": result.trials,
        "mrc": {
            name: curve.to_dict(capacities=capacities)
            for name, curve in sorted(result.curves.items())
        },
        "validation": result.validation,
        "worst_validation_delta": result.worst_delta,
        "seek_profile": result.seek.to_dict() if result.seek else {},
        "heatmap": result.heatmap.to_dict(top) if result.heatmap else {},
        "trace_events": result.trace_counts,
    }


def write_events(result: ProfileResult, path) -> None:
    """Dump every phase's raw access events as JSONL with phase markers."""
    with open(path, "w") as handle:
        for phase, dump in result.event_dumps:
            handle.write(f'{{"type": "phase", "name": "{phase}"}}\n')
            if dump:
                handle.write(dump + "\n")


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--size", type=int, default=None)
    parser.add_argument("--scheme", choices=SCHEMES, default="s-node")
    parser.add_argument("--workload", choices=WORKLOADS, default="queries")
    parser.add_argument(
        "--capacities-kb",
        type=int,
        nargs="+",
        default=list(DEFAULT_PROFILE_CAPACITIES_KB),
        help="buffer capacities (KiB) for the measured validation sweep",
    )
    parser.add_argument("--trials", type=int, default=2)
    parser.add_argument("--top", type=int, default=10, help="top-k hot entries shown")
    parser.add_argument(
        "--events-out",
        default=None,
        metavar="FILE",
        help="write the raw access-event trace as JSON lines to FILE",
    )
    add_report_arguments(parser)
    add_trace_arguments(parser)
    arguments = parser.parse_args(argv)
    with trace_session(arguments, "profile") as tracer:
        result = run(
            size=arguments.size,
            scheme=arguments.scheme,
            workload=arguments.workload,
            capacities_kb=tuple(arguments.capacities_kb),
            trials=arguments.trials,
        )
    if not arguments.quiet:
        print(render(result, top=arguments.top))
    if arguments.events_out:
        write_events(result, arguments.events_out)
        print(f"access events written to {arguments.events_out}", file=sys.stderr)
    emit_report(
        arguments.json_dir,
        "profile",
        to_results(result, arguments.capacities_kb, top=arguments.top),
        params={
            "scheme": arguments.scheme,
            "workload": arguments.workload,
            "trials": arguments.trials,
            "capacities_kb": list(arguments.capacities_kb),
        },
        spans=tracer.summary_dict() if tracer else None,
    )


if __name__ == "__main__":
    main()
