"""Experiment drivers regenerating every table and figure of the paper.

Each module has a ``run(...)`` function returning structured results and a
``python -m repro.experiments.<name>`` CLI that prints the paper-style
table.  The pytest-benchmark wrappers in ``benchmarks/`` call the same
``run`` functions.

| paper artifact | module |
|----------------|-------------------------|
| Figure 9(a,b)  | ``scalability``         |
| Figure 10      | ``scalability``         |
| Table 1        | ``compression``         |
| Table 2        | ``access_time``         |
| Figure 11      | ``queries``             |
| Figure 12      | ``buffer_sweep``        |
| ablations      | ``ablations``           |
"""
