"""Table 2: sequential and random in-memory access times (ns per edge).

Exactly the paper's protocol: the *smallest* dataset (so every scheme fits
comfortably in memory), 5000 random-page trials and 5000 sequential-page
trials, timing only decode+extract — buffers are warmed before measuring
so no disk time is included.

The "no disk time" claim is *verified*, not assumed: every representation
reports through the shared :mod:`repro.storage.metrics` registry, so after
warming we reset the counters and assert at report time that the measured
phase performed (nearly) zero device reads — the decode-only protocol,
made checkable.
"""

from __future__ import annotations

import argparse
import random
import tempfile
import time
from dataclasses import dataclass

from repro.baselines import (
    HuffmanRepresentation,
    Link3Representation,
    SNodeRepresentation,
)
from repro.baselines.base import GraphRepresentation
from repro.experiments.harness import (
    dataset,
    experiment_refinement_config,
    format_table,
    sweep_sizes,
)
from repro.snode.build import BuildOptions, build_snode

TRIALS = 5000


@dataclass
class AccessRow:
    """One scheme's Table 2 row."""

    scheme: str
    sequential_ns_per_edge: float
    random_ns_per_edge: float
    #: Device bytes read *during* the measured phase — ~0 when the warm-up
    #: succeeded and the run really timed only decode cost.
    measured_bytes_read: int = 0
    measured_disk_seeks: int = 0


def _warm(representation: GraphRepresentation) -> None:
    for _page, _row in representation.iterate_all():
        pass


def _measure(representation: GraphRepresentation, seed: int) -> AccessRow:
    _warm(representation)
    representation.reset_io_stats()
    # Sequential: walk adjacency lists in storage order.
    edges = 0
    start = time.perf_counter()
    iterator = representation.iterate_all()
    for _ in range(min(TRIALS, representation.num_pages)):
        _page, row = next(iterator)
        edges += len(row)
    sequential_elapsed = time.perf_counter() - start
    sequential = sequential_elapsed * 1e9 / max(1, edges)
    # Random: retrieve adjacency lists of random page ids.
    rng = random.Random(seed)
    pages = [rng.randrange(representation.num_pages) for _ in range(TRIALS)]
    edges = 0
    start = time.perf_counter()
    for page in pages:
        edges += len(representation.out_neighbors(page))
    random_elapsed = time.perf_counter() - start
    stats = representation.io_stats()
    return AccessRow(
        scheme=representation.name,
        sequential_ns_per_edge=sequential,
        random_ns_per_edge=random_elapsed * 1e9 / max(1, edges),
        measured_bytes_read=stats.get("bytes_read", 0),
        measured_disk_seeks=stats.get("disk_seeks", 0),
    )


def run(size: int | None = None, seed: int = 11) -> list[AccessRow]:
    """Measure the three compressed schemes on the smallest dataset."""
    size = size or sweep_sizes()[0]
    repository = dataset(size)
    rows: list[AccessRow] = []
    rows.append(_measure(HuffmanRepresentation(repository.graph), seed))
    with tempfile.TemporaryDirectory() as workdir:
        link3 = Link3Representation(
            repository, f"{workdir}/l3", buffer_bytes=1 << 30
        )
        rows.append(_measure(link3, seed))
        link3.close()
        build = build_snode(
            repository,
            f"{workdir}/sn",
            BuildOptions(
                refinement=experiment_refinement_config(), buffer_bytes=1 << 30
            ),
        )
        # Table 2 protocol: the *encoded* representation sits in memory and
        # every access pays its decode cost (see SNodeStore.cache_decoded).
        build.store.close()
        from repro.snode.store import SNodeStore

        build.store = SNodeStore(
            build.root, buffer_bytes=1 << 30, cache_decoded=False
        )
        rows.append(_measure(SNodeRepresentation(build), seed))
        build.store.close()
    return rows


def report(rows: list[AccessRow]) -> str:
    """Paper-style Table 2, plus the measured-phase I/O audit column."""
    table = format_table(
        ["scheme", "sequential ns/edge", "random ns/edge", "measured-phase bytes read"],
        [
            (
                r.scheme,
                r.sequential_ns_per_edge,
                r.random_ns_per_edge,
                r.measured_bytes_read,
            )
            for r in rows
        ],
    )
    fastest = min(rows, key=lambda r: r.random_ns_per_edge)
    return table + f"\nfastest random access: {fastest.scheme}"


def main() -> None:
    argparse.ArgumentParser(description=__doc__).parse_args()
    print("[access_time] Table 2 (in-memory decode times)")
    print(report(run()))


if __name__ == "__main__":
    main()
