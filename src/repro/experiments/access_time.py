"""Table 2: sequential and random in-memory access times (ns per edge).

Exactly the paper's protocol: the *smallest* dataset (so every scheme fits
comfortably in memory), 5000 random-page trials and 5000 sequential-page
trials, timing only decode+extract — buffers are warmed before measuring
so no disk time is included.

The "no disk time" claim is *verified*, not assumed: every representation
reports through the shared :mod:`repro.storage.metrics` registry, so after
warming we reset the counters and assert at report time that the measured
phase performed (nearly) zero device reads — the decode-only protocol,
made checkable.

Beyond the paper's means, every individual access is recorded into a
log-bucketed latency histogram, so the report shows the per-access
p50/p90/p99/max distribution — a scheme whose typical access is fast but
whose tail decodes a giant supernode looks identical to a uniform one in
ns/edge means, and different here.  (Timing per access adds ~2 clock
reads of overhead to each call; the distributions and the means are
measured in the same loop, so relative comparisons are unaffected.)
"""

from __future__ import annotations

import argparse
import random
import tempfile
import time
from dataclasses import dataclass, field

from repro.baselines import (
    HuffmanRepresentation,
    Link3Representation,
    SNodeRepresentation,
)
from repro.baselines.base import GraphRepresentation
from repro.experiments.harness import (
    add_report_arguments,
    add_trace_arguments,
    dataset,
    emit_report,
    experiment_refinement_config,
    format_table,
    sweep_sizes,
    trace_session,
)
from repro.obs.histogram import LatencyHistogram
from repro.snode.build import BuildOptions, build_snode

TRIALS = 5000


@dataclass
class AccessRow:
    """One scheme's Table 2 row."""

    scheme: str
    sequential_ns_per_edge: float
    random_ns_per_edge: float
    #: Device bytes read *during* the measured phase — ~0 when the warm-up
    #: succeeded and the run really timed only decode cost.
    measured_bytes_read: int = 0
    measured_disk_seeks: int = 0
    #: Per-access latency percentiles in ns/call (keys like
    #: ``random_ns_p50``), from the log-bucketed histograms.
    percentiles: dict[str, float] = field(default_factory=dict)


def _warm(representation: GraphRepresentation) -> None:
    for _page, _row in representation.iterate_all():
        pass


def _measure(
    representation: GraphRepresentation, seed: int
) -> tuple[AccessRow, dict[str, LatencyHistogram]]:
    _warm(representation)
    representation.reset_io_stats()
    sequential_histogram = LatencyHistogram()
    random_histogram = LatencyHistogram()
    # Sequential: walk adjacency lists in storage order, timing each access.
    edges = 0
    sequential_elapsed = 0.0
    iterator = representation.iterate_all()
    for _ in range(min(TRIALS, representation.num_pages)):
        start = time.perf_counter()
        _page, row = next(iterator)
        elapsed = time.perf_counter() - start
        sequential_elapsed += elapsed
        sequential_histogram.record(elapsed)
        edges += len(row)
    sequential = sequential_elapsed * 1e9 / max(1, edges)
    # Random: retrieve adjacency lists of random page ids.
    rng = random.Random(seed)
    pages = [rng.randrange(representation.num_pages) for _ in range(TRIALS)]
    edges = 0
    random_elapsed = 0.0
    for page in pages:
        start = time.perf_counter()
        row = representation.out_neighbors(page)
        elapsed = time.perf_counter() - start
        random_elapsed += elapsed
        random_histogram.record(elapsed)
        edges += len(row)
    stats = representation.io_stats()
    row_result = AccessRow(
        scheme=representation.name,
        sequential_ns_per_edge=sequential,
        random_ns_per_edge=random_elapsed * 1e9 / max(1, edges),
        measured_bytes_read=stats.get("bytes_read", 0),
        measured_disk_seeks=stats.get("disk_seeks", 0),
        percentiles={
            "sequential_ns_p50": sequential_histogram.p50 * 1e9,
            "sequential_ns_p99": sequential_histogram.p99 * 1e9,
            "random_ns_p50": random_histogram.p50 * 1e9,
            "random_ns_p90": random_histogram.p90 * 1e9,
            "random_ns_p99": random_histogram.p99 * 1e9,
            "random_ns_max": random_histogram.max * 1e9,
        },
    )
    histograms = {
        f"{representation.name}/sequential": sequential_histogram,
        f"{representation.name}/random": random_histogram,
    }
    return row_result, histograms


def run(
    size: int | None = None, seed: int = 11
) -> tuple[list[AccessRow], dict[str, LatencyHistogram]]:
    """Measure the three compressed schemes on the smallest dataset."""
    size = size or sweep_sizes()[0]
    repository = dataset(size)
    rows: list[AccessRow] = []
    histograms: dict[str, LatencyHistogram] = {}

    def measure(representation: GraphRepresentation) -> None:
        row, row_histograms = _measure(representation, seed)
        rows.append(row)
        histograms.update(row_histograms)

    measure(HuffmanRepresentation(repository.graph))
    with tempfile.TemporaryDirectory() as workdir:
        link3 = Link3Representation(
            repository, f"{workdir}/l3", buffer_bytes=1 << 30
        )
        measure(link3)
        link3.close()
        build = build_snode(
            repository,
            f"{workdir}/sn",
            BuildOptions(
                refinement=experiment_refinement_config(), buffer_bytes=1 << 30
            ),
        )
        # Table 2 protocol: the *encoded* representation sits in memory and
        # every access pays its decode cost (see SNodeStore.cache_decoded).
        build.store.close()
        from repro.snode.store import SNodeStore

        build.store = SNodeStore(
            build.root, buffer_bytes=1 << 30, cache_decoded=False
        )
        measure(SNodeRepresentation(build))
        build.store.close()
    return rows, histograms


def report(rows: list[AccessRow]) -> str:
    """Paper-style Table 2, plus I/O audit and per-access percentiles."""
    table = format_table(
        ["scheme", "sequential ns/edge", "random ns/edge", "measured-phase bytes read"],
        [
            (
                r.scheme,
                r.sequential_ns_per_edge,
                r.random_ns_per_edge,
                r.measured_bytes_read,
            )
            for r in rows
        ],
    )
    percentile_table = format_table(
        ["scheme", "random p50 ns", "random p90 ns", "random p99 ns", "random max ns"],
        [
            (
                r.scheme,
                r.percentiles.get("random_ns_p50", 0.0),
                r.percentiles.get("random_ns_p90", 0.0),
                r.percentiles.get("random_ns_p99", 0.0),
                r.percentiles.get("random_ns_max", 0.0),
            )
            for r in rows
        ],
    )
    fastest = min(rows, key=lambda r: r.random_ns_per_edge)
    return (
        table
        + "\n\nper-access latency distribution (ns per call):\n"
        + percentile_table
        + f"\nfastest random access: {fastest.scheme}"
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--size", type=int, default=None)
    add_report_arguments(parser)
    add_trace_arguments(parser)
    arguments = parser.parse_args()
    with trace_session(arguments, "access_time") as tracer:
        rows, histograms = run(size=arguments.size)
    if not arguments.quiet:
        print("[access_time] Table 2 (in-memory decode times)")
        print(report(rows))
    emit_report(
        arguments.json_dir,
        "access_time",
        [asdict_row(row) for row in rows],
        params={"trials": TRIALS},
        histograms={
            name: histogram.to_dict() for name, histogram in histograms.items()
        },
        spans=tracer.summary_dict() if tracer else None,
    )


def asdict_row(row: AccessRow) -> dict:
    """JSON-serializable view of one row."""
    from dataclasses import asdict

    return asdict(row)


if __name__ == "__main__":
    main()
