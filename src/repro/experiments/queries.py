"""Figure 11: complex-query navigation time across four representations.

Protocol (paper section 4.3): the six Table 3 queries run against the
flat-file, relational, Link3 and S-Node representations (forward and
transpose builds of each), all under the same memory bound; each bar is
the mean over several cold-cache trials.  The experiment also prints the
paper's per-query "% reduction vs next best scheme" table and the
section 4.3 instrumentation anecdote (how many intranode/superedge graphs
S-Node loaded per query).

**Disk-time simulation.** The paper ran on 2001 hardware where navigation
time was dominated by disk seeks; on a modern machine with an OS page
cache the same access patterns complete from memory and the measured wall
time reflects only Python decode cost.  We therefore report *simulated*
navigation time

    cpu_scale x wall_time + seeks x seek_ms + bytes / throughput

using the schemes' instrumented seek/byte counters and disk constants of
the paper's era (9 ms seek, 25 MB/s transfer).  ``cpu_scale`` compensates
for interpreting the decoders in Python instead of compiled C: comparing
our Table 2 ns/edge numbers against the paper's shows a 30-100x gap, so
the default 0.02 maps Python decode wall time onto the paper's CPU cost
scale.  Raw wall times and I/O counters are reported alongside, and all
three constants are CLI-adjustable (``--cpu-scale 1 --seek-ms 0 --mbps
inf`` gives pure wall time).
"""

from __future__ import annotations

import argparse
import tempfile
from dataclasses import asdict, dataclass, field
from pathlib import Path

from repro.baselines import (
    FlatFileRepresentation,
    Link3Representation,
    RelationalRepresentation,
    SNodeRepresentation,
)
from repro.baselines.base import GraphRepresentation
from repro.experiments.harness import (
    add_report_arguments,
    add_trace_arguments,
    dataset,
    emit_report,
    experiment_refinement_config,
    format_table,
    sweep_sizes,
    trace_session,
)
from repro.obs import tracing
from repro.obs.histogram import HistogramSet, LatencyHistogram
from repro.index.pagerank_index import PageRankIndex
from repro.index.textindex import TextIndex
from repro.query.engine import QueryEngine
from repro.query.workload import PAPER_QUERIES
from repro.snode.build import BuildOptions, build_snode

#: Scaled analogue of the paper's 325 MB representation-memory bound.
DEFAULT_BUFFER_BYTES = 512 * 1024

#: 2001-era disk constants for the simulated navigation time.
DEFAULT_SEEK_MS = 9.0
DEFAULT_MBPS = 25.0
#: Python-to-compiled-decoder wall-time compensation (see module docstring).
DEFAULT_CPU_SCALE = 0.02

SCHEMES = ("flat-file", "relational", "link3", "s-node")


@dataclass
class QueryTiming:
    """Per (scheme, query) measurements."""

    wall_ms: float
    simulated_ms: float
    disk_seeks: int
    bytes_read: int
    snode_intranode_loaded: int = 0
    snode_superedge_loaded: int = 0
    #: Distribution over the trials (keys like ``simulated_ms_p50``),
    #: because a mean hides the cold-vs-warm buffer split Figure 11 is
    #: actually about.
    percentiles: dict[str, float] = field(default_factory=dict)


@dataclass
class QueryExperiment:
    """Full Figure 11 result set."""

    num_pages: int
    buffer_bytes: int
    timings: dict[tuple[str, str], QueryTiming] = field(default_factory=dict)
    #: Per-scheme engine histograms: navigation latency distribution per
    #: query *operation* kind (out_neighborhood, in_neighborhood, ...).
    op_histograms: dict[str, HistogramSet] = field(default_factory=dict)
    #: Per-scheme metrics snapshot (forward + backward registries merged)
    #: taken after all trials.
    metrics: dict[str, dict[str, float]] = field(default_factory=dict)

    def reduction_vs_next_best(self) -> dict[str, float]:
        """The paper's table: % reduction of S-Node vs the next best."""
        reductions = {}
        for query_name, _fn in PAPER_QUERIES:
            snode = self.timings[("s-node", query_name)].simulated_ms
            others = [
                self.timings[(scheme, query_name)].simulated_ms
                for scheme in SCHEMES
                if scheme != "s-node"
            ]
            best_other = min(others)
            if best_other > 0:
                reductions[query_name] = 100.0 * (best_other - snode) / best_other
            else:
                reductions[query_name] = 0.0
        return reductions


class _SchemePair:
    """Forward + transpose representations of one scheme."""

    def __init__(
        self,
        name: str,
        forward: GraphRepresentation,
        backward: GraphRepresentation,
    ) -> None:
        self.name = name
        self.forward = forward
        self.backward = backward

    def drop_caches(self) -> None:
        self.forward.drop_caches()
        self.backward.drop_caches()

    def reset_io(self) -> None:
        self.forward.reset_io_stats()
        self.backward.reset_io_stats()

    def set_buffer_bytes(self, buffer_bytes: int) -> None:
        self.forward.set_buffer_bytes(buffer_bytes)
        self.backward.set_buffer_bytes(buffer_bytes)

    def io_totals(self) -> tuple[int, int]:
        stats_f = self.forward.io_stats()
        stats_b = self.backward.io_stats()
        seeks = stats_f.get("disk_seeks", 0) + stats_b.get("disk_seeks", 0)
        bytes_read = stats_f.get("bytes_read", 0) + stats_b.get("bytes_read", 0)
        return seeks, bytes_read

    def eviction_totals(self) -> int:
        return self.forward.metrics.get("buffer_evictions") + self.backward.metrics.get(
            "buffer_evictions"
        )

    def buffer_totals(self) -> tuple[int, int]:
        """(unpinned hits, misses) across both directions.

        Pinned hits are excluded: they are served outside the LRU budget
        at every capacity, so only the unpinned ratio is comparable with
        stack-distance predictions.
        """
        hits = 0
        misses = 0
        for metrics in (self.forward.metrics, self.backward.metrics):
            hits += metrics.get("buffer_hits") - metrics.get("buffer_pinned_hits")
            misses += metrics.get("buffer_misses")
        return hits, misses

    def merged_snapshot(self) -> dict[str, float]:
        """Forward + backward metrics snapshots, summed per name."""
        merged = dict(self.forward.metrics.snapshot())
        for name, value in self.backward.metrics.snapshot().items():
            merged[name] = merged.get(name, 0) + value
        return merged

    def close(self) -> None:
        self.forward.close()
        self.backward.close()


def _build_pair(
    name: str, repository, workdir: Path, buffer_bytes: int
) -> _SchemePair:
    transpose = repository.graph.transpose()
    if name == "flat-file":
        return _SchemePair(
            name,
            FlatFileRepresentation(repository.graph, workdir / "ff_f"),
            FlatFileRepresentation(transpose, workdir / "ff_b"),
        )
    if name == "relational":
        return _SchemePair(
            name,
            RelationalRepresentation(
                repository, workdir / "rel_f", buffer_bytes=buffer_bytes
            ),
            RelationalRepresentation(
                repository, workdir / "rel_b", graph=transpose, buffer_bytes=buffer_bytes
            ),
        )
    if name == "link3":
        # The Link Database is a memory-resident design (the paper: it
        # "does not use the two-level representation"); when forced to
        # page from a bounded buffer it fetches small per-row extents
        # rather than S-Node's purpose-laid-out graph regions.  16-row
        # extents (~1-2 KiB) model that charitably — one extent still
        # covers a row's whole reference chain.
        return _SchemePair(
            name,
            Link3Representation(
                repository,
                workdir / "l3_f",
                rows_per_block=16,
                buffer_bytes=buffer_bytes,
            ),
            Link3Representation(
                repository,
                workdir / "l3_b",
                graph=transpose,
                rows_per_block=16,
                buffer_bytes=buffer_bytes,
            ),
        )
    if name == "s-node":
        options = BuildOptions(
            refinement=experiment_refinement_config(), buffer_bytes=buffer_bytes
        )
        forward_build = build_snode(repository, workdir / "sn_f", options)
        backward_build = build_snode(
            repository,
            workdir / "sn_b",
            BuildOptions(
                refinement=experiment_refinement_config(),
                buffer_bytes=buffer_bytes,
                transpose=True,
            ),
        )
        return _SchemePair(
            name,
            SNodeRepresentation(forward_build),
            SNodeRepresentation(backward_build),
        )
    raise ValueError(f"unknown scheme {name}")


def run(
    size: int | None = None,
    buffer_bytes: int = DEFAULT_BUFFER_BYTES,
    trials: int = 3,
    seek_ms: float = DEFAULT_SEEK_MS,
    mbps: float = DEFAULT_MBPS,
    cpu_scale: float = DEFAULT_CPU_SCALE,
    schemes: tuple[str, ...] = SCHEMES,
    workdir: str | None = None,
) -> QueryExperiment:
    """Run the Figure 11 experiment; returns all timings."""
    size = size or sweep_sizes()[3]  # the paper uses the 100M (4th) dataset
    repository = dataset(size)
    text_index = TextIndex(repository)
    pagerank_index = PageRankIndex(repository)
    experiment = QueryExperiment(num_pages=size, buffer_bytes=buffer_bytes)
    own_tmp = tempfile.TemporaryDirectory() if workdir is None else None
    base = Path(workdir or own_tmp.name)
    try:
        for scheme in schemes:
            with tracing.span("queries.build", scheme=scheme):
                pair = _build_pair(scheme, repository, base, buffer_bytes)
            engine = QueryEngine(
                repository, text_index, pagerank_index, pair.forward, pair.backward
            )
            for query_name, query_fn in PAPER_QUERIES:
                wall_total = 0.0
                seeks_total = 0
                bytes_total = 0
                intranode_loaded = 0
                superedge_loaded = 0
                # Per-trial distributions (seconds): the first trial runs
                # cold, later ones over a warming buffer, so percentiles
                # expose the cold/warm split a mean averages away.
                wall_histogram = LatencyHistogram()
                simulated_histogram = LatencyHistogram()
                # Caches are dropped once per (scheme, query); the trials
                # then average over a warming buffer, as the paper's
                # 6-trial averages did.  Buffered schemes keep their hot
                # B-tree levels / supernode graphs across trials, the flat
                # file pays every access — exactly the contrast Figure 11
                # shows.
                pair.drop_caches()
                for _ in range(trials):
                    pair.reset_io()
                    with tracing.span(
                        "queries.trial", scheme=scheme, query=query_name
                    ):
                        result = query_fn(engine)
                    wall_total += result.navigation_seconds
                    seeks, bytes_read = pair.io_totals()
                    seeks_total += seeks
                    bytes_total += bytes_read
                    wall_histogram.record(result.navigation_seconds)
                    simulated_histogram.record(
                        result.navigation_seconds * cpu_scale
                        + seeks * seek_ms / 1000.0
                        + bytes_read / (mbps * 1e6)
                    )
                    if scheme == "s-node":
                        # Section 4.3 "graphs touched per query": distinct
                        # load tallies from the shared metrics registry.
                        intranode_loaded = pair.forward.metrics.distinct(
                            "intranode"
                        ) + pair.backward.metrics.distinct("intranode")
                        superedge_loaded = pair.forward.metrics.distinct(
                            "superedge"
                        ) + pair.backward.metrics.distinct("superedge")
                wall_ms = wall_total * 1000.0 / trials
                mean_seeks = seeks_total / trials
                mean_bytes = bytes_total / trials
                simulated_ms = (
                    wall_ms * cpu_scale
                    + mean_seeks * seek_ms
                    + (mean_bytes / (mbps * 1e6)) * 1000.0
                )
                experiment.timings[(scheme, query_name)] = QueryTiming(
                    wall_ms=wall_ms,
                    simulated_ms=simulated_ms,
                    disk_seeks=int(mean_seeks),
                    bytes_read=int(mean_bytes),
                    snode_intranode_loaded=intranode_loaded,
                    snode_superedge_loaded=superedge_loaded,
                    percentiles={
                        "wall_ms_p50": wall_histogram.p50 * 1000.0,
                        "wall_ms_p90": wall_histogram.p90 * 1000.0,
                        "wall_ms_p99": wall_histogram.p99 * 1000.0,
                        "simulated_ms_p50": simulated_histogram.p50 * 1000.0,
                        "simulated_ms_p90": simulated_histogram.p90 * 1000.0,
                        "simulated_ms_p99": simulated_histogram.p99 * 1000.0,
                        "simulated_ms_max": simulated_histogram.max * 1000.0,
                    },
                )
            experiment.op_histograms[scheme] = engine.histograms
            experiment.metrics[scheme] = pair.merged_snapshot()
            pair.close()
    finally:
        if own_tmp is not None:
            own_tmp.cleanup()
    return experiment


def report(experiment: QueryExperiment) -> str:
    """Figure 11 bar-chart data + the % reduction table + the load log."""
    rows = []
    for query_name, _fn in PAPER_QUERIES:
        row = [query_name]
        for scheme in SCHEMES:
            timing = experiment.timings.get((scheme, query_name))
            row.append(
                f"{timing.simulated_ms:.1f} ({timing.disk_seeks}s)"
                if timing
                else "-"
            )
        rows.append(row)
    table = format_table(
        ["query"] + [f"{s} ms(seeks)" for s in SCHEMES], rows
    )
    reductions = experiment.reduction_vs_next_best()
    reduction_rows = [
        (query, f"{value:.1f}%") for query, value in reductions.items()
    ]
    reduction_table = format_table(
        ["query", "S-Node reduction vs next best"], reduction_rows
    )
    load_rows = []
    for query_name, _fn in PAPER_QUERIES:
        timing = experiment.timings.get(("s-node", query_name))
        if timing:
            load_rows.append(
                (
                    query_name,
                    timing.snode_intranode_loaded,
                    timing.snode_superedge_loaded,
                    timing.disk_seeks,
                )
            )
    load_table = format_table(
        ["query", "intranode graphs", "superedge graphs", "disk seeks"], load_rows
    )
    op_rows = []
    for scheme in SCHEMES:
        histogram_set = experiment.op_histograms.get(scheme)
        if histogram_set is None:
            continue
        for op in histogram_set.names():
            histogram = histogram_set.get(op)
            op_rows.append(
                (
                    scheme,
                    op,
                    histogram.count,
                    histogram.p50 * 1000.0,
                    histogram.p90 * 1000.0,
                    histogram.p99 * 1000.0,
                    histogram.max * 1000.0,
                )
            )
    op_table = format_table(
        ["scheme", "operation", "n", "p50 ms", "p90 ms", "p99 ms", "max ms"],
        op_rows,
    )
    return (
        table
        + "\n\n"
        + reduction_table
        + "\n\nS-Node instrumentation (distinct graphs loaded per query):\n"
        + load_table
        + "\n\nper-operation navigation latency (wall time):\n"
        + op_table
    )


def to_results(experiment: QueryExperiment) -> dict:
    """JSON-serializable view of the experiment (bench-report payload)."""
    timings: dict[str, dict] = {}
    for (scheme, query_name), timing in experiment.timings.items():
        timings.setdefault(scheme, {})[query_name] = asdict(timing)
    return {
        "num_pages": experiment.num_pages,
        "buffer_bytes": experiment.buffer_bytes,
        "timings": timings,
        "reduction_vs_next_best": experiment.reduction_vs_next_best(),
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--size", type=int, default=None)
    parser.add_argument("--buffer-kb", type=int, default=DEFAULT_BUFFER_BYTES // 1024)
    parser.add_argument("--trials", type=int, default=3)
    parser.add_argument("--seek-ms", type=float, default=DEFAULT_SEEK_MS)
    parser.add_argument("--mbps", type=float, default=DEFAULT_MBPS)
    parser.add_argument("--cpu-scale", type=float, default=DEFAULT_CPU_SCALE)
    add_report_arguments(parser)
    add_trace_arguments(parser)
    arguments = parser.parse_args()
    with trace_session(arguments, "queries") as tracer:
        experiment = run(
            size=arguments.size,
            buffer_bytes=arguments.buffer_kb * 1024,
            trials=arguments.trials,
            seek_ms=arguments.seek_ms,
            mbps=arguments.mbps,
            cpu_scale=arguments.cpu_scale,
        )
    if not arguments.quiet:
        print(
            f"[queries] Figure 11 (pages={experiment.num_pages}, "
            f"buffer={experiment.buffer_bytes // 1024} KiB)"
        )
        print(report(experiment))
    histograms = {
        f"{scheme}/{op}": histogram_set.get(op).to_dict()
        for scheme, histogram_set in experiment.op_histograms.items()
        for op in histogram_set.names()
    }
    emit_report(
        arguments.json_dir,
        "queries",
        to_results(experiment),
        params={
            "trials": arguments.trials,
            "seek_ms": arguments.seek_ms,
            "mbps": arguments.mbps,
            "cpu_scale": arguments.cpu_scale,
            "buffer_bytes": experiment.buffer_bytes,
        },
        metrics={"by_scheme": experiment.metrics},
        histograms=histograms,
        spans=tracer.summary_dict() if tracer else None,
    )


if __name__ == "__main__":
    main()
