"""Ablations of the design choices the paper calls out.

1. **Positive/negative superedge choice** (section 2's compactness rule)
   — rebuild with every superedge forced positive and compare bytes.
2. **Reference encoding** (section 3.1) — rebuild with references and the
   target dictionary disabled (every row direct-coded) and compare.
3. **Split policy** (section 3.2: random vs largest-first, which the paper
   found indistinguishable) — compare final partition sizes and
   representation sizes under both policies.
"""

from __future__ import annotations

import argparse
import tempfile
from dataclasses import asdict, dataclass, replace

from repro.experiments.harness import (
    add_report_arguments,
    add_trace_arguments,
    dataset,
    emit_report,
    experiment_refinement_config,
    format_table,
    sweep_sizes,
    trace_session,
)
from repro.snode.build import BuildOptions, build_snode


@dataclass
class AblationRow:
    """One configuration's size outcome."""

    configuration: str
    bits_per_edge: float
    payload_bytes: int
    supernodes: int
    superedges: int
    negative_superedges: int


def _build(repository, workdir: str, label: str, options: BuildOptions) -> AblationRow:
    build = build_snode(repository, workdir, options)
    manifest = build.manifest
    row = AblationRow(
        configuration=label,
        bits_per_edge=build.bits_per_edge,
        payload_bytes=manifest["payload_bytes"],
        supernodes=build.model.num_supernodes,
        superedges=build.model.num_superedges,
        negative_superedges=build.model.negative_count,
    )
    build.store.close()
    return row


def run(size: int | None = None) -> list[AblationRow]:
    """Run every ablation on one dataset; returns one row per config."""
    size = size or sweep_sizes()[1]
    repository = dataset(size)
    rows: list[AblationRow] = []
    base_config = experiment_refinement_config()
    with tempfile.TemporaryDirectory() as base:
        rows.append(
            _build(
                repository,
                f"{base}/full",
                "full S-Node",
                BuildOptions(refinement=base_config),
            )
        )
        rows.append(
            _build(
                repository,
                f"{base}/pos",
                "always-positive superedges",
                BuildOptions(refinement=base_config, force_positive_superedges=True),
            )
        )
        rows.append(
            _build(
                repository,
                f"{base}/noref",
                "no reference encoding",
                BuildOptions(
                    refinement=base_config,
                    reference_window=0,
                    full_affinity_limit=0,
                    use_dictionary=False,
                ),
            )
        )
        rows.append(
            _build(
                repository,
                f"{base}/largest",
                "largest-first split policy",
                BuildOptions(refinement=replace(base_config, policy="largest")),
            )
        )
    return rows


def report(rows: list[AblationRow]) -> str:
    """Comparison table across configurations."""
    return format_table(
        [
            "configuration",
            "bits/edge",
            "payload bytes",
            "supernodes",
            "superedges",
            "negative",
        ],
        [
            (
                r.configuration,
                r.bits_per_edge,
                r.payload_bytes,
                r.supernodes,
                r.superedges,
                r.negative_superedges,
            )
            for r in rows
        ],
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--size", type=int, default=None)
    add_report_arguments(parser)
    add_trace_arguments(parser)
    arguments = parser.parse_args()
    with trace_session(arguments, "ablations") as tracer:
        rows = run(size=arguments.size)
    if not arguments.quiet:
        print("[ablations]")
        print(report(rows))
    emit_report(
        arguments.json_dir,
        "ablations",
        [asdict(row) for row in rows],
        spans=tracer.summary_dict() if tracer else None,
    )


if __name__ == "__main__":
    main()
