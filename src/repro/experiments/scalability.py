"""Figures 9(a), 9(b) and 10: supernode-graph growth with repository size.

For each dataset size the experiment runs the full iterative refinement,
builds the supernode graph, and reports

* the number of supernodes (Fig 9a) and superedges (Fig 9b),
* the Huffman-encoded supernode-graph size in megabytes *including a
  4-byte pointer per vertex and per edge* (Fig 10's accounting),
* the growth ratios the paper quotes ("a 20-fold increase in input size
  resulted in less than a 3-fold increase in supernodes/superedges").

``--policy largest`` reruns the sweep with largest-first element choice,
the ablation the paper reports as indistinguishable from random.

``--build-bench`` switches to the staged-build benchmark instead: one
full ``build_snode`` per worker count (default 1/2/4) at the *largest*
sweep point, reporting per-stage wall-clock, the encode-stage time, the
shard count and the manifest digest.  The digest and shard count must be
identical across worker counts — that is the determinism contract CI
gates with ``repro bench-diff --exact digest --exact shards`` (wall-clock
leaves are machine-dependent and ignored; on a single-core runner the
parallel sweep shows no speedup at all, which is why the gate pins only
the deterministic markers).  The report is written as
``BENCH_build.json``.
"""

from __future__ import annotations

import argparse
import os
import tempfile
from dataclasses import asdict, dataclass, replace
from pathlib import Path

from repro.experiments.harness import (
    add_report_arguments,
    add_trace_arguments,
    dataset,
    emit_report,
    experiment_refinement_config,
    format_table,
    sweep_sizes,
    trace_session,
)
from repro.snode.encode import supernode_graph_size_bytes
from repro.snode.model import build_model
from repro.snode.numbering import build_numbering


@dataclass(frozen=True)
class ScalabilityPoint:
    """One dataset size's measurements."""

    num_pages: int
    num_edges: int
    num_supernodes: int
    num_superedges: int
    supernode_graph_bytes: int
    refinement_iterations: int


def run(
    sizes: list[int] | None = None, policy: str = "random", seed: int = 7
) -> list[ScalabilityPoint]:
    """Run the sweep; returns one point per size."""
    sizes = sizes or sweep_sizes()
    config = replace(experiment_refinement_config(seed), policy=policy)
    points: list[ScalabilityPoint] = []
    for size in sizes:
        repository = dataset(size)
        from repro.partition.refine import refine_partition

        refinement = refine_partition(repository, config)
        numbering = build_numbering(repository, refinement.partition)
        model = build_model(repository.graph, numbering)
        points.append(
            ScalabilityPoint(
                num_pages=repository.num_pages,
                num_edges=repository.num_links,
                num_supernodes=model.num_supernodes,
                num_superedges=model.num_superedges,
                supernode_graph_bytes=supernode_graph_size_bytes(model),
                refinement_iterations=refinement.iterations,
            )
        )
    return points


def report(points: list[ScalabilityPoint]) -> str:
    """Paper-style table plus the growth-ratio summary."""
    rows = [
        (
            p.num_pages,
            p.num_edges,
            p.num_supernodes,
            p.num_superedges,
            p.supernode_graph_bytes / (1024 * 1024),
        )
        for p in points
    ]
    table = format_table(
        ["pages", "edges", "supernodes (Fig9a)", "superedges (Fig9b)", "MB (Fig10)"],
        rows,
    )
    first, last = points[0], points[-1]
    input_ratio = last.num_pages / max(1, first.num_pages)
    supernode_ratio = last.num_supernodes / max(1, first.num_supernodes)
    superedge_ratio = last.num_superedges / max(1, first.num_superedges)
    summary = (
        f"\ninput grew {input_ratio:.1f}x -> supernodes {supernode_ratio:.1f}x, "
        f"superedges {superedge_ratio:.1f}x "
        f"(sublinear: {'yes' if supernode_ratio < input_ratio else 'NO'})"
    )
    return table + summary


@dataclass(frozen=True)
class BuildBenchPoint:
    """One worker count's full-build measurements (largest sweep point)."""

    workers: int
    shards: int
    encode_s: float
    total_s: float
    stages_s: dict
    digest: str
    num_supernodes: int
    num_superedges: int


def run_build_bench(
    workers_list: tuple[int, ...] = (1, 2, 4), seed: int = 7
) -> tuple[int, list[BuildBenchPoint]]:
    """Build the largest sweep point once per worker count.

    Returns ``(num_pages, points)``.  Every point must carry the same
    digest and shard count — a parallel build is byte-identical to the
    serial one by construction (frozen code tables + ordered shard
    reassembly); this benchmark is where CI checks that claim against a
    committed baseline.
    """
    from repro.snode.build import BuildOptions, build_snode

    size = sweep_sizes()[-1]
    repository = dataset(size)
    options_base = BuildOptions(refinement=experiment_refinement_config(seed))
    points: list[BuildBenchPoint] = []
    for workers in workers_list:
        with tempfile.TemporaryDirectory(prefix="repro-build-bench-") as tmp:
            build = build_snode(
                repository,
                Path(tmp) / "snode",
                options=replace(options_base, workers=workers),
            )
            stages_s = {
                f"{name}_s": seconds
                for name, seconds in build.stage_seconds.items()
            }
            points.append(
                BuildBenchPoint(
                    workers=build.workers,
                    shards=build.shards,
                    encode_s=build.stage_seconds.get("encode", 0.0),
                    total_s=sum(build.stage_seconds.values()),
                    stages_s=stages_s,
                    digest=build.manifest["digest"],
                    num_supernodes=build.model.num_supernodes,
                    num_superedges=build.model.num_superedges,
                )
            )
            build.store.close()
    return size, points


def report_build_bench(num_pages: int, points: list[BuildBenchPoint]) -> str:
    """Workers-sweep table plus the determinism check."""
    rows = [
        (p.workers, p.shards, p.encode_s, p.total_s, p.digest[:16])
        for p in points
    ]
    table = format_table(
        ["workers", "shards", "encode_s", "total_s", "digest[:16]"], rows
    )
    digests = {p.digest for p in points}
    serial = next((p for p in points if p.workers == 1), points[0])
    fastest = min(points, key=lambda p: p.encode_s)
    # Shard counts differ by design (about 4x the worker count); the
    # byte-level determinism claim is that the *digest* never moves.
    summary = (
        f"\n{num_pages} pages, cpu_count={os.cpu_count()}: "
        f"deterministic across workers: "
        f"{'yes' if len(digests) == 1 else 'NO'}; "
        f"best encode {fastest.encode_s:.3f}s at workers={fastest.workers} "
        f"({serial.encode_s / max(fastest.encode_s, 1e-9):.2f}x vs serial)"
    )
    return table + summary


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--policy", choices=("random", "largest"), default="random")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--build-bench",
        action="store_true",
        help="benchmark the staged build at the largest sweep point across "
        "worker counts (writes BENCH_build.json with --json)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        nargs="+",
        default=[1, 2, 4],
        metavar="N",
        help="worker counts swept by --build-bench (default: 1 2 4)",
    )
    add_report_arguments(parser)
    add_trace_arguments(parser)
    arguments = parser.parse_args()
    if arguments.build_bench:
        with trace_session(arguments, "build") as tracer:
            num_pages, points = run_build_bench(
                workers_list=tuple(arguments.workers), seed=arguments.seed
            )
        if not arguments.quiet:
            print("[build] workers sweep (largest scalability point)")
            print(report_build_bench(num_pages, points))
        emit_report(
            arguments.json_dir,
            "build",
            [asdict(point) for point in points],
            params={
                "seed": arguments.seed,
                "num_pages": num_pages,
                "workers_list": list(arguments.workers),
                # Wall-clock context: with one core, no speedup is possible.
                "cpu_count": os.cpu_count(),
            },
            spans=tracer.summary_dict() if tracer else None,
        )
        return
    with trace_session(arguments, "scalability") as tracer:
        points = run(policy=arguments.policy, seed=arguments.seed)
    if not arguments.quiet:
        print(f"[scalability] policy={arguments.policy}")
        print(report(points))
    emit_report(
        arguments.json_dir,
        "scalability",
        [asdict(point) for point in points],
        params={"policy": arguments.policy, "seed": arguments.seed},
        spans=tracer.summary_dict() if tracer else None,
    )


if __name__ == "__main__":
    main()
