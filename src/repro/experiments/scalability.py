"""Figures 9(a), 9(b) and 10: supernode-graph growth with repository size.

For each dataset size the experiment runs the full iterative refinement,
builds the supernode graph, and reports

* the number of supernodes (Fig 9a) and superedges (Fig 9b),
* the Huffman-encoded supernode-graph size in megabytes *including a
  4-byte pointer per vertex and per edge* (Fig 10's accounting),
* the growth ratios the paper quotes ("a 20-fold increase in input size
  resulted in less than a 3-fold increase in supernodes/superedges").

``--policy largest`` reruns the sweep with largest-first element choice,
the ablation the paper reports as indistinguishable from random.
"""

from __future__ import annotations

import argparse
from dataclasses import asdict, dataclass, replace

from repro.experiments.harness import (
    add_report_arguments,
    add_trace_arguments,
    dataset,
    emit_report,
    experiment_refinement_config,
    format_table,
    sweep_sizes,
    trace_session,
)
from repro.snode.encode import supernode_graph_size_bytes
from repro.snode.model import build_model
from repro.snode.numbering import build_numbering


@dataclass(frozen=True)
class ScalabilityPoint:
    """One dataset size's measurements."""

    num_pages: int
    num_edges: int
    num_supernodes: int
    num_superedges: int
    supernode_graph_bytes: int
    refinement_iterations: int


def run(
    sizes: list[int] | None = None, policy: str = "random", seed: int = 7
) -> list[ScalabilityPoint]:
    """Run the sweep; returns one point per size."""
    sizes = sizes or sweep_sizes()
    config = replace(experiment_refinement_config(seed), policy=policy)
    points: list[ScalabilityPoint] = []
    for size in sizes:
        repository = dataset(size)
        from repro.partition.refine import refine_partition

        refinement = refine_partition(repository, config)
        numbering = build_numbering(repository, refinement.partition)
        model = build_model(repository.graph, numbering)
        points.append(
            ScalabilityPoint(
                num_pages=repository.num_pages,
                num_edges=repository.num_links,
                num_supernodes=model.num_supernodes,
                num_superedges=model.num_superedges,
                supernode_graph_bytes=supernode_graph_size_bytes(model),
                refinement_iterations=refinement.iterations,
            )
        )
    return points


def report(points: list[ScalabilityPoint]) -> str:
    """Paper-style table plus the growth-ratio summary."""
    rows = [
        (
            p.num_pages,
            p.num_edges,
            p.num_supernodes,
            p.num_superedges,
            p.supernode_graph_bytes / (1024 * 1024),
        )
        for p in points
    ]
    table = format_table(
        ["pages", "edges", "supernodes (Fig9a)", "superedges (Fig9b)", "MB (Fig10)"],
        rows,
    )
    first, last = points[0], points[-1]
    input_ratio = last.num_pages / max(1, first.num_pages)
    supernode_ratio = last.num_supernodes / max(1, first.num_supernodes)
    superedge_ratio = last.num_superedges / max(1, first.num_superedges)
    summary = (
        f"\ninput grew {input_ratio:.1f}x -> supernodes {supernode_ratio:.1f}x, "
        f"superedges {superedge_ratio:.1f}x "
        f"(sublinear: {'yes' if supernode_ratio < input_ratio else 'NO'})"
    )
    return table + summary


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--policy", choices=("random", "largest"), default="random")
    parser.add_argument("--seed", type=int, default=7)
    add_report_arguments(parser)
    add_trace_arguments(parser)
    arguments = parser.parse_args()
    with trace_session(arguments, "scalability") as tracer:
        points = run(policy=arguments.policy, seed=arguments.seed)
    if not arguments.quiet:
        print(f"[scalability] policy={arguments.policy}")
        print(report(points))
    emit_report(
        arguments.json_dir,
        "scalability",
        [asdict(point) for point in points],
        params={"policy": arguments.policy, "seed": arguments.seed},
        spans=tracer.summary_dict() if tracer else None,
    )


if __name__ == "__main__":
    main()
