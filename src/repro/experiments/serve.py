"""Concurrent serving benchmark: the Figure 11 mix over one shared store.

Boots the graph query daemon in-process (real TCP sockets, its own event
loop thread), drives it with the load generator at a configurable
concurrency, and checks three properties the serving refactor promises:

* **serial equivalence** — every concurrently-served query returns a
  payload whose canonical digest equals the serial baseline's, whatever
  the thread interleaving (``matches_serial``);
* **metric conservation** — the per-client session counters reported by
  each connection, summed, equal the growth of the shared stores' totals
  over the run (``metrics_conserved``) — nothing is lost or
  double-counted by session accounting;
* **graceful overload** — the default configuration offers more
  concurrency than the admission queue admits, so a healthy run *sheds*
  requests with typed backpressure replies (retried by the generator)
  and still answers every request (``requests_ok`` is exact);
* **request conservation** — the daemon's telemetry accounts for every
  frame the generator sent: per-op totals equal the client's
  ok + shed + failed counts, and the backpressure outcome count equals
  the client's retry count exactly (``requests_conserved``);
* **attribution conservation** — every reply echoes the request's exact
  session counter delta; summed per query name over the whole run, those
  per-request attributions must reproduce the session totals bit-for-bit
  (``attribution_conserved``) — so the tracing layer's "this request did
  those seeks" claims add up to the truth, with nothing lost or
  double-counted.  The per-op split is reported as the ``attribution``
  section (values vary with cache interleaving; only the conservation
  flag is deterministic).  Every reply must also echo the propagated
  trace id (``traces_propagated``).

After the reference run, an **overload sweep** drives the same daemon
configuration at an offered-concurrency ladder (at, past and far past
the admission limit) and emits per-level shed-rate and server-measured
queue-wait columns — the ``results.overload`` rows in
``BENCH_serve.json`` that plot saturation behaviour.

Then two resilience phases:

* **chaos sweep** — a corrupted *copy* of the store pair (one flipped
  byte in every intranode region) is served with
  ``on_corruption="degrade"`` under an activated
  :class:`~repro.storage.faults.FaultPlan` (transient EIOs + seeded
  slow reads) while the load generator attaches deadlines to every
  third request.  Gates: no request lost (``chaos_conserved``,
  ``chaos_zero_failed``), corruption answered as typed ``degraded``
  replies with quarantine counters moving (``chaos_degraded_served``,
  ``chaos_degraded_accounted``), deadlines honored under slow I/O
  (``chaos_deadline_honored``).
* **hot swap** — a second, freshly built store pair is swapped in via
  the ``swap`` admin op *while the load generator is mid-run*.  Gates:
  zero failed or dropped requests across the swap
  (``swap_zero_failed``, ``swap_conserved``), the swap actually
  happened (``swap_applied``) and every reply — before and after the
  flip — carries the serial baseline's digest
  (``swap_matches_serial``).

Reported costs: throughput, request latency percentiles, queue-wait
percentiles, hit rates.  Latency, throughput, shed/timeout counts and
the ``chaos_detail``/``swap_detail`` sections are machine-/
interleaving-dependent (CI ignores them); the digests,
``matches_serial``, ``metrics_conserved``, ``requests_conserved``,
``attribution_conserved``, ``traces_propagated``, ``requests_ok`` and
every ``chaos_*``/``swap_*`` boolean gate are deterministic and
CI-gated exactly.
"""

from __future__ import annotations

import argparse
import shutil
import tempfile
import threading
import time
from pathlib import Path

from repro.errors import ServeError
from repro.experiments.harness import (
    add_report_arguments,
    add_trace_arguments,
    dataset,
    emit_report,
    format_table,
    sweep_sizes,
    trace_session,
)
from repro.obs import tracing
from repro.serve import protocol
from repro.serve.daemon import (
    DEFAULT_BUFFER_BYTES,
    DEFAULT_STRIPES,
    DaemonHandle,
    GraphQueryDaemon,
    ServeContext,
)
from repro.serve.loadgen import DEFAULT_MIX, ServeClient, run_load
from repro.serve.telemetry import DELTA_COUNTERS
from repro.query.workload import run_query
from repro.storage import faults

DEFAULT_CONCURRENCY = 8
DEFAULT_REQUESTS_PER_CLIENT = 12
DEFAULT_WORKERS = 4
#: Below the default concurrency on purpose: a standard run exercises
#: admission control (sheds + retries) rather than only the happy path.
DEFAULT_QUEUE_LIMIT = 4

#: Counters that sessions accumulate (everything else — evictions,
#: quarantines — charges the shared base registry by design).  The same
#: set the daemon attributes per request, so the per-request attribution
#: echoes can be conservation-checked against the session totals.
_ATTRIBUTABLE = DELTA_COUNTERS

#: Raw session counter -> report key for the ``attribution`` section.
#: Mirrors the ``counter_growth`` convention: the names carry no
#: bench-diff cost markers, because per-op splits vary with cache
#: interleaving and must never be threshold-compared as costs.
_ATTRIBUTION_KEYS = {
    "bytes_read": "bytes",
    "disk_seeks": "seek_count",
    "buffer_hits": "hits",
    "buffer_pinned_hits": "pinned_hits",
    "buffer_misses": "misses",
    "loads": "loads",
    "intranode_loads": "intranode",
    "superedge_loads": "superedge",
    "degraded_reads": "degraded",
}


def _counter_totals(context: ServeContext) -> dict[str, int]:
    """Attributable counters summed over both directions (base + live)."""
    totals = {name: 0 for name in _ATTRIBUTABLE}
    for direction in context.shared_totals().values():
        for name in _ATTRIBUTABLE:
            totals[name] += int(direction.get(name, 0))
    return totals


def _client_sums(load) -> dict[str, int]:
    """Attributable counters summed over every client's final stats."""
    totals = {name: 0 for name in _ATTRIBUTABLE}
    for client in load.clients:
        for direction in client.io_stats.values():
            for name in _ATTRIBUTABLE:
                totals[name] += int(direction.get(name, 0))
    return totals


def _conservation(daemon: GraphQueryDaemon, load) -> tuple[bool, dict]:
    """Check the daemon's telemetry accounts for every frame sent.

    Five identities must hold whatever the thread interleaving:

    * telemetry's ``query`` op total equals the client-side frame count
      ok + degraded + shed + timeout + failed (every retry is its own
      frame);
    * the ``backpressure`` outcome total equals the client's retry count;
    * the ``degraded`` outcome total equals the client's count of
      answers served from quarantined regions;
    * the ``timeout`` outcome total equals the client's typed timeout
      replies;
    * whole (``ok``) outcomes equal the client's successful queries plus
      its non-query frames (the per-client ``stats`` call, a ``swap``).
    """
    snapshot = daemon.telemetry.snapshot()
    op_totals = {
        name: data.get("requests", {}).get("total", 0)
        for name, data in snapshot["ops"].items()
        if not name.startswith("phase:")
    }
    outcome_totals = {
        name: data["total"] for name, data in snapshot["outcomes"].items()
    }
    query_frames = (
        load.requests_ok
        + load.requests_degraded
        + load.shed_retries
        + load.requests_timeout
        + load.requests_failed
    )
    other_frames = sum(
        total for name, total in op_totals.items() if name != "query"
    )
    conserved = (
        op_totals.get("query", 0) == query_frames
        and outcome_totals["backpressure"] == load.shed_retries
        and outcome_totals.get("degraded", 0) == load.requests_degraded
        and outcome_totals.get("timeout", 0) == load.requests_timeout
        and outcome_totals["ok"] == load.requests_ok + other_frames
    )
    return conserved, outcome_totals


def _overload_levels(queue_limit: int, concurrency: int) -> tuple[int, ...]:
    """Offered-concurrency ladder: at, past and far past admission."""
    return tuple(
        sorted({queue_limit, max(2 * queue_limit, concurrency), 4 * queue_limit})
    )


def _overload_level(
    context: ServeContext,
    clients: int,
    requests_per_client: int,
    workers: int,
    queue_limit: int,
) -> dict:
    """One sweep level: fresh daemon, ``clients`` offered concurrency."""
    daemon = GraphQueryDaemon(context, workers=workers, queue_limit=queue_limit)
    with DaemonHandle(daemon) as handle:
        load = run_load(
            "127.0.0.1",
            handle.port,
            concurrency=clients,
            requests_per_client=requests_per_client,
        )
    conserved, _ = _conservation(daemon, load)
    queue_hist = load.queue_wait_histogram()
    server_hist = load.server_latency_histogram()
    attempts = load.requests_ok + load.shed_retries + load.requests_failed
    # Key names deliberately avoid both bench-diff cost markers and the
    # exact-pinned names of the reference run (shed counts and latencies
    # vary with interleaving; only the conservation flag is pinned).
    return {
        "clients": clients,
        "offered": clients * requests_per_client,
        "completed": load.requests_ok,
        "shed": load.shed_retries,
        "gave_up": load.requests_failed,
        "shed_rate_pct": 100.0 * load.shed_retries / attempts if attempts else 0.0,
        "queue_wait_ms_p50": (queue_hist.p50 if queue_hist.count else 0.0) * 1000.0,
        "queue_wait_ms_p99": (queue_hist.p99 if queue_hist.count else 0.0) * 1000.0,
        "server_ms_p50": (server_hist.p50 if server_hist.count else 0.0) * 1000.0,
        "server_ms_p99": (server_hist.p99 if server_hist.count else 0.0) * 1000.0,
        "requests_conserved": conserved,
    }


#: Seed of the chaos fixture's byte flips (which byte of each region).
_CHAOS_CORRUPT_SEED = 29
#: Seeded fault schedule of the chaos sweep: transient EIOs well under
#: the storage layer's bounded-retry coverage, slow reads frequent
#: enough to stress the deadline path without starving it.
_CHAOS_FAULT_SEED = 31
_CHAOS_EIO_RATE = 0.02
_CHAOS_SLOW_RATE = 0.05
_CHAOS_SLOW_SECONDS = 0.004
#: Deadline budget of the chaos sweep, attached to every third request.
_CHAOS_DEADLINE_MS = 250.0
_CHAOS_DEADLINE_EVERY = 3


def _chaos_phase(
    repository,
    base: Path,
    concurrency: int,
    requests_per_client: int,
    workers: int,
    queue_limit: int,
    buffer_bytes: int,
    stripes: int,
) -> dict:
    """Serve a corrupted store copy under injected faults and deadlines.

    Copies the committed pair, flips one byte in *every* intranode
    region (so any adjacency read is guaranteed to hit a CRC mismatch),
    reopens the copy cold with ``on_corruption="degrade"`` and drives
    the Figure 11 mix through a fresh daemon while a seeded
    :class:`~repro.storage.faults.FaultPlan` injects transient EIOs and
    slow reads.  Returns the flat ``chaos_*`` gate booleans plus the
    interleaving-dependent counts under ``chaos_detail``.
    """
    chaos_dir = base / "chaos"
    corrupted = 0
    for name in ("serve_f", "serve_b"):
        shutil.copytree(base / name, chaos_dir / name)
        corrupted += faults.corrupt_snode_regions(
            chaos_dir / name, seed=_CHAOS_CORRUPT_SEED
        )
    context = ServeContext.open(
        repository,
        chaos_dir,
        buffer_bytes=buffer_bytes,
        stripes=stripes,
        on_corruption="degrade",
    )
    try:
        before = _counter_totals(context)
        daemon = GraphQueryDaemon(
            context, workers=workers, queue_limit=queue_limit
        )
        plan = faults.FaultPlan(
            seed=_CHAOS_FAULT_SEED,
            eio_rate=_CHAOS_EIO_RATE,
            slow_read_rate=_CHAOS_SLOW_RATE,
            slow_read_seconds=_CHAOS_SLOW_SECONDS,
        )
        with faults.activated(plan), DaemonHandle(daemon) as handle:
            load = run_load(
                "127.0.0.1",
                handle.port,
                concurrency=concurrency,
                requests_per_client=requests_per_client,
                deadline_ms=_CHAOS_DEADLINE_MS,
                deadline_every=_CHAOS_DEADLINE_EVERY,
            )
        after = _counter_totals(context)
        conserved, outcome_totals = _conservation(daemon, load)
        degraded_read_growth = (
            after["degraded_reads"] - before["degraded_reads"]
        )
        storage = daemon.io_resilience()
        client_errors = [c.error for c in load.clients if c.error]
        return {
            # Deterministic gates (CI exact-pins these):
            "chaos_conserved": conserved,
            "chaos_zero_failed": load.requests_failed == 0
            and not client_errors,
            "chaos_degraded_served": load.requests_degraded > 0
            and degraded_read_growth > 0,
            "chaos_degraded_accounted": outcome_totals.get("degraded", 0)
            == load.requests_degraded,
            "chaos_deadline_honored": load.deadline_honored(),
            # Interleaving-/timing-dependent observability (CI ignores):
            "chaos_detail": {
                "regions_corrupted": corrupted,
                "degraded": load.requests_degraded,
                "whole": load.requests_ok,
                "timeouts": load.requests_timeout,
                "shed": load.shed_retries,
                "deadline_carried": load.deadline_requests,
                "deadline_violations": load.deadline_violations,
                "degraded_reads": degraded_read_growth,
                "io_retries": storage.get("io_retries", 0),
                "fault_eio": storage.get("fault_eio", 0),
                "slow_reads": storage.get("fault_slow_reads", 0),
                "errors": client_errors,
            },
        }
    finally:
        context.close()


#: How long the swap-phase load runs before the swap op lands — long
#: enough that requests are in flight, short enough that plenty follow
#: the flip.
_SWAP_DELAY_S = 0.05


def _swap_phase(
    repository,
    context: ServeContext,
    base: Path,
    serial_digests: dict[str, str],
    concurrency: int,
    requests_per_client: int,
    workers: int,
    queue_limit: int,
    buffer_bytes: int,
    stripes: int,
) -> dict:
    """Hot-swap onto a freshly built pair while the load generator runs.

    Builds a second, byte-identical store pair under ``base/swap_store``
    (same repository, same refinement — so replies must carry the same
    digests), starts the Figure 11 load in a background thread, sends
    the ``swap`` admin op mid-run, and checks nothing failed, nothing
    was lost and every digest still matches the serial baseline.

    Mutates ``context``: on return it serves from the swapped-in pair
    (the original stores are closed).
    """
    from repro.experiments.harness import experiment_refinement_config
    from repro.snode.build import BuildOptions, build_snode

    swap_dir = base / "swap_store"
    refinement = experiment_refinement_config()
    build_snode(
        repository,
        swap_dir / "serve_f",
        BuildOptions(refinement=refinement, buffer_bytes=buffer_bytes),
    ).store.close()
    build_snode(
        repository,
        swap_dir / "serve_b",
        BuildOptions(
            refinement=refinement, buffer_bytes=buffer_bytes, transpose=True
        ),
    ).store.close()
    daemon = GraphQueryDaemon(
        context, workers=workers, queue_limit=queue_limit
    )
    box: dict = {}
    with DaemonHandle(daemon) as handle:

        def _drive() -> None:
            box["load"] = run_load(
                "127.0.0.1",
                handle.port,
                concurrency=concurrency,
                requests_per_client=requests_per_client,
            )

        thread = threading.Thread(target=_drive, name="swap-load")
        thread.start()
        time.sleep(_SWAP_DELAY_S)
        with ServeClient("127.0.0.1", handle.port) as admin:
            swap_outcome = admin.swap(str(swap_dir))
        thread.join()
    load = box["load"]
    conserved, _ = _conservation(daemon, load)
    observed = load.digests()
    matches_serial = load.consistent() and all(
        observed.get(name) == {digest}
        for name, digest in serial_digests.items()
    )
    client_errors = [c.error for c in load.clients if c.error]
    return {
        # Deterministic gates (CI exact-pins these):
        "swap_applied": bool(swap_outcome.get("swapped"))
        and daemon.counters.store_swaps == 1
        and context.generation == 1,
        "swap_matches_serial": matches_serial,
        "swap_zero_failed": load.requests_failed == 0
        and load.requests_timeout == 0
        and not client_errors,
        "swap_conserved": conserved,
        # Timing-dependent observability (CI ignores):
        "swap_detail": {
            "drained_in_flight": swap_outcome.get("drained", 0),
            "generation": swap_outcome.get("generation", 0),
            "completed": load.requests_ok,
            "shed": load.shed_retries,
            "errors": client_errors,
        },
    }


def run(
    size: int | None = None,
    buffer_bytes: int = DEFAULT_BUFFER_BYTES,
    concurrency: int = DEFAULT_CONCURRENCY,
    requests_per_client: int = DEFAULT_REQUESTS_PER_CLIENT,
    workers: int = DEFAULT_WORKERS,
    queue_limit: int = DEFAULT_QUEUE_LIMIT,
    stripes: int = DEFAULT_STRIPES,
    workdir: str | None = None,
) -> dict:
    """Run the serving benchmark end-to-end; returns the results dict."""
    size = size or sweep_sizes()[3]
    repository = dataset(size)
    own_tmp = tempfile.TemporaryDirectory() if workdir is None else None
    base = Path(workdir or own_tmp.name)
    try:
        with tracing.span("serve.build"):
            context = ServeContext.build(
                repository, base, buffer_bytes=buffer_bytes, stripes=stripes
            )
        try:
            # Serial baseline: the six queries through the root (shared)
            # path, establishing the reference digests.  This also warms
            # the shared cache, so serial and concurrent runs read the
            # same warmed pool.
            serial_engine = context.serial_engine()
            serial_digests: dict[str, str] = {}
            with tracing.span("serve.serial"):
                for name in DEFAULT_MIX:
                    result = run_query(serial_engine, name)
                    serial_digests[name] = protocol.payload_digest(result.payload)
            before = _counter_totals(context)
            daemon = GraphQueryDaemon(
                context, workers=workers, queue_limit=queue_limit
            )
            with tracing.span("serve.load"):
                with DaemonHandle(daemon) as handle:
                    load = run_load(
                        "127.0.0.1",
                        handle.port,
                        concurrency=concurrency,
                        requests_per_client=requests_per_client,
                    )
            after = _counter_totals(context)
            client_errors = [
                client.error for client in load.clients if client.error
            ]
            if client_errors:
                raise ServeError(
                    f"load generator reported errors: {client_errors[:3]}"
                )
            observed = load.digests()
            matches_serial = load.consistent() and all(
                observed.get(name) == {digest}
                for name, digest in serial_digests.items()
            )
            session_sums = _client_sums(load)
            growth = {
                name: after[name] - before[name] for name in _ATTRIBUTABLE
            }
            metrics_conserved = growth == session_sums
            requests_conserved, outcome_totals = _conservation(daemon, load)
            # Attribution conservation: the per-request session deltas
            # echoed in every ok reply, summed over the run, must equal
            # the session totals the clients read back — bit-for-bit.
            attributed = load.attributed_totals()
            attribution_conserved = all(
                attributed.get(name, 0) == session_sums[name]
                for name in _ATTRIBUTABLE
            )
            histogram = load.latency_histogram()
            queue_hist = load.queue_wait_histogram()
            server_hist = load.server_latency_histogram()
            with tracing.span("serve.overload"):
                overload = [
                    _overload_level(
                        context,
                        clients,
                        requests_per_client,
                        workers,
                        queue_limit,
                    )
                    for clients in _overload_levels(queue_limit, concurrency)
                ]
            with tracing.span("serve.chaos"):
                chaos = _chaos_phase(
                    repository,
                    base,
                    concurrency,
                    requests_per_client,
                    workers,
                    queue_limit,
                    buffer_bytes,
                    stripes,
                )
            # The swap phase runs last: it retires the original stores
            # and leaves the context serving from the swapped-in pair.
            with tracing.span("serve.swap"):
                swap = _swap_phase(
                    repository,
                    context,
                    base,
                    serial_digests,
                    concurrency,
                    requests_per_client,
                    workers,
                    queue_limit,
                    buffer_bytes,
                    stripes,
                )
            results = {
                "num_pages": repository.num_pages,
                "buffer_bytes": buffer_bytes,
                "concurrency": concurrency,
                "requests_per_client": requests_per_client,
                "workers": workers,
                "queue_limit": queue_limit,
                "stripes": stripes,
                "requests_total": concurrency * requests_per_client,
                "requests_ok": load.requests_ok,
                "requests_failed": load.requests_failed,
                "shed_retries": load.shed_retries,
                "throughput_qps": load.throughput_qps,
                "latency": {
                    "latency_ms_p50": histogram.p50 * 1000.0,
                    "latency_ms_p90": histogram.p90 * 1000.0,
                    "latency_ms_p99": histogram.p99 * 1000.0,
                    "latency_ms_max": histogram.max * 1000.0,
                },
                "queue_wait": {
                    "queue_wait_ms_p50": (
                        queue_hist.p50 if queue_hist.count else 0.0
                    ) * 1000.0,
                    "queue_wait_ms_p99": (
                        queue_hist.p99 if queue_hist.count else 0.0
                    ) * 1000.0,
                },
                "matches_serial": matches_serial,
                "metrics_conserved": metrics_conserved,
                "requests_conserved": requests_conserved,
                "attribution_conserved": attribution_conserved,
                "traces_propagated": load.traces_propagated(),
                # Per-query-name share of the run's I/O, from the
                # server-echoed per-request deltas.  Interleaving-
                # dependent (cache state decides hits vs misses), so CI
                # ignores the values and exact-gates only the flag.
                "attribution": {
                    name: {
                        _ATTRIBUTION_KEYS[counter]: value
                        for counter, value in sorted(counters.items())
                        if counter in _ATTRIBUTION_KEYS
                    }
                    for name, counters in sorted(load.attribution().items())
                },
                # Per-outcome telemetry totals; backpressure varies with
                # interleaving, so these are reported, not gated.
                "outcome_totals": outcome_totals,
                "overload": overload,
                "per_query_digests": {
                    name: sorted(digests)[0]
                    for name, digests in sorted(observed.items())
                    if digests
                },
                "digest": protocol.payload_digest(
                    {"per_query": serial_digests}
                ),
                # Concurrency-dependent (duplicate loads under races);
                # reported for observability.  Key names deliberately
                # avoid bench-diff cost markers so runs are not gated on
                # interleaving-dependent counts.
                "counter_growth": {
                    "bytes": growth["bytes_read"],
                    "seek_count": growth["disk_seeks"],
                    "hits": growth["buffer_hits"],
                    "pinned_hits": growth["buffer_pinned_hits"],
                    "misses": growth["buffer_misses"],
                    "loads": growth["loads"],
                    "intranode": growth["intranode_loads"],
                    "superedge": growth["superedge_loads"],
                    "degraded": growth["degraded_reads"],
                },
                "daemon": daemon.counters.as_dict(),
            }
            results.update(chaos)
            results.update(swap)
            hits = growth["buffer_hits"] - growth["buffer_pinned_hits"]
            lookups = hits + growth["buffer_misses"]
            results["hit_rate_pct"] = (
                100.0 * hits / lookups if lookups else 0.0
            )
            return {
                "results": results,
                "histograms": {
                    "serve_latency": histogram.to_dict(),
                    "server_latency": server_hist.to_dict(),
                    "queue_wait": queue_hist.to_dict(),
                },
            }
        finally:
            context.close()
    finally:
        if own_tmp is not None:
            own_tmp.cleanup()


def report(results: dict) -> str:
    """Human-readable summary table."""
    rows = [
        ("pages", results["num_pages"]),
        ("concurrency", results["concurrency"]),
        ("workers / queue limit", f"{results['workers']} / {results['queue_limit']}"),
        ("buffer stripes", results["stripes"]),
        ("requests ok / total", f"{results['requests_ok']} / {results['requests_total']}"),
        ("backpressure retries", results["shed_retries"]),
        ("throughput (q/s)", f"{results['throughput_qps']:.1f}"),
        ("latency p50 / p99 (ms)",
         f"{results['latency']['latency_ms_p50']:.1f} / "
         f"{results['latency']['latency_ms_p99']:.1f}"),
        ("queue wait p50 / p99 (ms)",
         f"{results['queue_wait']['queue_wait_ms_p50']:.1f} / "
         f"{results['queue_wait']['queue_wait_ms_p99']:.1f}"),
        ("buffer hit rate", f"{results['hit_rate_pct']:.1f}%"),
        ("matches serial", results["matches_serial"]),
        ("metrics conserved", results["metrics_conserved"]),
        ("requests conserved", results["requests_conserved"]),
        ("attribution conserved", results["attribution_conserved"]),
        ("traces propagated", results["traces_propagated"]),
    ]
    if "chaos_conserved" in results:
        detail = results.get("chaos_detail", {})
        rows.extend([
            ("chaos: conserved / zero failed",
             f"{results['chaos_conserved']} / {results['chaos_zero_failed']}"),
            ("chaos: degraded served / accounted",
             f"{results['chaos_degraded_served']} / "
             f"{results['chaos_degraded_accounted']}"),
            ("chaos: deadlines honored", results["chaos_deadline_honored"]),
            ("chaos: degraded / timeouts / retries",
             f"{detail.get('degraded', 0)} / {detail.get('timeouts', 0)} / "
             f"{detail.get('io_retries', 0)}"),
        ])
    if "swap_applied" in results:
        detail = results.get("swap_detail", {})
        rows.extend([
            ("swap: applied / matches serial",
             f"{results['swap_applied']} / {results['swap_matches_serial']}"),
            ("swap: zero failed / conserved",
             f"{results['swap_zero_failed']} / {results['swap_conserved']}"),
            ("swap: drained in flight", detail.get("drained_in_flight", 0)),
        ])
    table = format_table(["metric", "value"], rows)
    attribution_rows = [
        (
            name,
            counters.get("bytes", 0),
            counters.get("seek_count", 0),
            counters.get("hits", 0),
            counters.get("misses", 0),
            counters.get("loads", 0),
        )
        for name, counters in sorted(results.get("attribution", {}).items())
    ]
    if attribution_rows:
        table += "\n\nper-query attributed I/O:\n" + format_table(
            ["query", "bytes", "seeks", "hits", "misses", "loads"],
            attribution_rows,
        )
    overload_rows = [
        (
            level["clients"],
            level["offered"],
            level["completed"],
            level["shed"],
            f"{level['shed_rate_pct']:.1f}%",
            f"{level['queue_wait_ms_p50']:.1f}",
            f"{level['queue_wait_ms_p99']:.1f}",
            level["requests_conserved"],
        )
        for level in results.get("overload", [])
    ]
    if overload_rows:
        table += "\n\noverload sweep:\n" + format_table(
            ["clients", "offered", "completed", "shed", "shed rate",
             "qwait p50ms", "qwait p99ms", "conserved"],
            overload_rows,
        )
    return table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--size", type=int, default=None)
    parser.add_argument(
        "--buffer-kb", type=int, default=DEFAULT_BUFFER_BYTES // 1024
    )
    parser.add_argument("--concurrency", type=int, default=DEFAULT_CONCURRENCY)
    parser.add_argument(
        "--requests", type=int, default=DEFAULT_REQUESTS_PER_CLIENT,
        help="query requests per client",
    )
    parser.add_argument("--workers", type=int, default=DEFAULT_WORKERS)
    parser.add_argument("--queue-limit", type=int, default=DEFAULT_QUEUE_LIMIT)
    parser.add_argument("--stripes", type=int, default=DEFAULT_STRIPES)
    add_report_arguments(parser)
    add_trace_arguments(parser)
    arguments = parser.parse_args()
    with trace_session(arguments, "serve") as tracer:
        outcome = run(
            size=arguments.size,
            buffer_bytes=arguments.buffer_kb * 1024,
            concurrency=arguments.concurrency,
            requests_per_client=arguments.requests,
            workers=arguments.workers,
            queue_limit=arguments.queue_limit,
            stripes=arguments.stripes,
        )
    results = outcome["results"]
    if not arguments.quiet:
        print(
            f"[serve] concurrent Figure 11 mix "
            f"(pages={results['num_pages']}, "
            f"concurrency={results['concurrency']})"
        )
        print(report(results))
    if not results["matches_serial"]:
        raise ServeError("concurrent results diverged from the serial baseline")
    if not results["metrics_conserved"]:
        raise ServeError("per-client metrics do not sum to the shared totals")
    if not results["requests_conserved"]:
        raise ServeError("telemetry did not account for every request sent")
    if not results["attribution_conserved"]:
        raise ServeError(
            "per-request attributed I/O does not sum to the session totals"
        )
    if not results["traces_propagated"]:
        raise ServeError("a reply failed to echo its propagated trace id")
    unconserved = [
        level["clients"]
        for level in results["overload"]
        if not level["requests_conserved"]
    ]
    if unconserved:
        raise ServeError(
            f"overload sweep lost requests at concurrency {unconserved}"
        )
    chaos_gates = {
        "chaos_conserved": "chaos sweep lost requests",
        "chaos_zero_failed": "chaos sweep failed requests hard",
        "chaos_degraded_served":
            "chaos sweep never answered from quarantined regions",
        "chaos_degraded_accounted":
            "degraded replies do not match the degraded outcome total",
        "chaos_deadline_honored":
            "a deadline request answered later than deadline + grace",
        "swap_applied": "the hot store swap did not happen",
        "swap_matches_serial":
            "replies across the swap diverged from the serial baseline",
        "swap_zero_failed": "requests failed during the hot swap",
        "swap_conserved": "telemetry lost requests across the hot swap",
    }
    for gate, message in chaos_gates.items():
        if not results[gate]:
            raise ServeError(message)
    emit_report(
        arguments.json_dir,
        "serve",
        results,
        params={
            "concurrency": arguments.concurrency,
            "requests_per_client": arguments.requests,
            "workers": arguments.workers,
            "queue_limit": arguments.queue_limit,
            "stripes": arguments.stripes,
            "buffer_bytes": arguments.buffer_kb * 1024,
        },
        histograms=outcome["histograms"],
        spans=tracer.summary_dict() if tracer else None,
    )


if __name__ == "__main__":
    main()
