"""Mutable-graph benchmark: recrawl deltas over the immutable build.

The S-Node store is built once and never rewritten; mutability comes
from a CRC-framed WAL (:mod:`repro.storage.wal`) replayed into per-source
delta overlays (:mod:`repro.snode.delta`) that merge into every
adjacency read.  This experiment drives that stack with the seeded
recrawl workload (:mod:`repro.webdata.recrawl`) and checks the two
promises the design makes, plus its cost profile:

* **Digest equivalence at every delta depth** — after each recrawl step
  the full adjacency (both directions) served through *base store +
  overlay* must hash identically to (a) a **full rebuild** of the
  mutated repository and (b) the in-memory ground-truth graph.  One
  flag, ``adjacency_equivalent``, ANDs the comparison over every depth;
  the per-depth digests are reported (and exact-pinned in CI).
* **Query equivalence at final depth** — the six paper queries through a
  :class:`~repro.serve.daemon.ServeContext` opened on the *base* store
  with the accumulated WAL replayed must produce payload digests equal
  to the same queries on a fresh build of the final mutated repository
  (``queries_equivalent``; both sides share the final repository's
  text/PageRank indexes, so adjacency is the only variable).
* **Query cost vs delta depth** — per depth: WAL bytes, overlay
  edges/rows, the deterministic merge counters (``delta_merges`` /
  ``delta_merge_edges`` charged by the read path) and the wall-clock of
  the full-adjacency probe (the only non-deterministic column, cost-
  marked ``probe_s`` so CI threshold-compares rather than pins it).
* **Live write/compact smoke** — a real daemon (TCP, event loop) with
  mutation enabled takes the first recrawl delta through the
  ``add_edges``/``remove_edges`` ops, establishes serial reference
  digests, then runs the Figure 11 query mix concurrently while a
  ``compact`` admin op rebuilds and hot-swaps mid-load.  Gates: zero
  failed requests across the compaction (``live_zero_failed``), every
  reply matching the serial baseline before *and* after the flip
  (``live_matches_serial``), the compaction actually adopted
  (``live_compacted``: generation bump + compaction counter), the
  absorbed WAL prefix truncated (``live_wal_truncated``), a
  post-compaction write landing in the *new* store's log
  (``live_post_write_ok``) and request conservation
  (``live_conserved``).

Every digest and boolean above is deterministic and CI-gated with
``bench-diff --exact``; throughput/latency columns vary with the machine
and are threshold-checked only.
"""

from __future__ import annotations

import argparse
import hashlib
import shutil
import tempfile
import threading
import time
from pathlib import Path

from repro.errors import ServeError
from repro.experiments.harness import (
    add_report_arguments,
    add_trace_arguments,
    dataset,
    emit_report,
    experiment_refinement_config,
    format_table,
    sweep_sizes,
    trace_session,
)
from repro.obs import tracing
from repro.serve import protocol
from repro.serve.daemon import (
    DEFAULT_BUFFER_BYTES,
    DaemonHandle,
    GraphQueryDaemon,
    ServeContext,
)
from repro.serve.loadgen import DEFAULT_MIX, ServeClient, run_load
from repro.experiments.serve import _conservation
from repro.query.workload import run_query
from repro.webdata.recrawl import RecrawlConfig, recrawl

DEFAULT_STEPS = 4
DEFAULT_CONCURRENCY = 6
DEFAULT_REQUESTS_PER_CLIENT = 8
DEFAULT_WORKERS = 4
DEFAULT_QUEUE_LIMIT = 4
#: Edges per write request in the live phase — small enough to produce
#: several WAL appends per step, large enough to keep frame overhead low.
_WRITE_BATCH = 256
#: How long the live-phase load runs before the compact op lands.
_COMPACT_DELAY_S = 0.05


def _digest_rows(hasher: "hashlib._Hash", rows) -> None:
    """Fold ``(page, sorted-row)`` pairs into ``hasher`` canonically."""
    for page, row in rows:
        hasher.update(int(page).to_bytes(8, "little"))
        hasher.update(len(row).to_bytes(8, "little"))
        for target in row:
            hasher.update(int(target).to_bytes(8, "little"))


def _representation_digest(forward, backward) -> str:
    """Canonical digest of both directions' full served adjacency.

    Pages are probed in id order (``iterate_all`` yields physical
    supernode order, which depends on the partition and would make two
    equivalent stores hash differently).
    """
    hasher = hashlib.sha256()
    for representation in (forward, backward):
        num_pages = representation.num_pages
        for start in range(0, num_pages, 1024):
            pages = range(start, min(start + 1024, num_pages))
            rows = representation.out_neighbors_many(pages)
            _digest_rows(hasher, ((page, rows[page]) for page in pages))
    return hasher.hexdigest()


def _graph_digest(graph) -> str:
    """Same framing as :func:`_representation_digest`, from a Digraph."""
    hasher = hashlib.sha256()
    transpose = graph.transpose()
    for side in (graph, transpose):
        _digest_rows(
            hasher,
            (
                (page, side.successors_list(page))
                for page in range(side.num_vertices)
            ),
        )
    return hasher.hexdigest()


def _build_pair(repository, workdir: Path, buffer_bytes: int):
    """Build a forward + transpose pair; returns open representations."""
    from repro.baselines import SNodeRepresentation
    from repro.snode.build import BuildOptions, build_snode

    refinement = experiment_refinement_config()
    forward = SNodeRepresentation(
        build_snode(
            repository,
            workdir / "serve_f",
            BuildOptions(refinement=refinement, buffer_bytes=buffer_bytes),
        )
    )
    backward = SNodeRepresentation(
        build_snode(
            repository,
            workdir / "serve_b",
            BuildOptions(
                refinement=refinement, buffer_bytes=buffer_bytes, transpose=True
            ),
        )
    )
    return forward, backward


def _equivalence_sweep(
    repository, steps, base: Path, buffer_bytes: int
) -> tuple[list[dict], bool]:
    """Per-depth digest equivalence: base+overlay vs rebuild vs truth.

    Returns the per-depth rows and the ANDed equivalence flag.  The
    overlay side accumulates every step in one WAL beside one base pair
    (exactly how a serving daemon would); the rebuild side builds a
    fresh pair from the mutated repository at every depth and is thrown
    away immediately after hashing.
    """
    from repro.snode.delta import DeltaOverlay
    from repro.storage.wal import GraphWal

    forward, backward = _build_pair(repository, base / "mutable", buffer_bytes)
    wal = GraphWal.for_build(forward.build.root)
    overlay_forward = DeltaOverlay()
    overlay_backward = DeltaOverlay(transpose=True)
    forward.attach_overlay(overlay_forward)
    backward.attach_overlay(overlay_backward)
    depths: list[dict] = []
    equivalent = True
    try:
        for step in steps:
            for op, edges in (("remove", step.removed), ("add", step.added)):
                if not edges:
                    continue
                wal.append(op, list(edges))
                overlay_forward.apply(op, edges)
                overlay_backward.apply(op, edges)
            merges_before = forward.metrics.get("delta_merges") + backward.metrics.get(
                "delta_merges"
            )
            merge_edges_before = forward.metrics.get(
                "delta_merge_edges"
            ) + backward.metrics.get("delta_merge_edges")
            started = time.perf_counter()
            overlay_digest = _representation_digest(forward, backward)
            probe_s = time.perf_counter() - started
            merges = (
                forward.metrics.get("delta_merges")
                + backward.metrics.get("delta_merges")
                - merges_before
            )
            merge_edges = (
                forward.metrics.get("delta_merge_edges")
                + backward.metrics.get("delta_merge_edges")
                - merge_edges_before
            )
            rebuild_dir = base / f"rebuild_{step.index}"
            rebuilt_forward, rebuilt_backward = _build_pair(
                step.repository, rebuild_dir, buffer_bytes
            )
            try:
                rebuild_digest = _representation_digest(
                    rebuilt_forward, rebuilt_backward
                )
            finally:
                rebuilt_forward.close()
                rebuilt_backward.close()
                shutil.rmtree(rebuild_dir)
            truth_digest = _graph_digest(step.repository.graph)
            matches = overlay_digest == rebuild_digest == truth_digest
            equivalent = equivalent and matches
            depths.append(
                {
                    "depth": step.index + 1,
                    "step_edges": step.delta_edges,
                    "url_moves": step.url_moves,
                    "host_reorgs": step.host_reorgs,
                    "wal_bytes": wal.size_bytes(),
                    "overlay_edges": overlay_forward.edge_count,
                    "overlay_rows": overlay_forward.row_count,
                    "delta_merges": merges,
                    "delta_merge_edges": merge_edges,
                    "digest": overlay_digest,
                    "matches_rebuild": matches,
                    # The only timing column; cost-marked for bench-diff.
                    "probe_s": probe_s,
                }
            )
    finally:
        forward.close()
        backward.close()
    return depths, equivalent


def _query_equivalence(final_repository, base: Path, buffer_bytes: int) -> dict:
    """Final-depth query equivalence: overlay serving vs full rebuild.

    Both contexts are handed the *final* repository (identical text and
    PageRank indexes); the overlay side opens the base pair — whose WAL
    already holds every recrawl delta — and replays it via
    ``enable_mutation``, while the rebuild side builds fresh stores from
    the mutated graph.  Every paper query must digest identically.
    """
    overlay_context = ServeContext.open(
        final_repository, base / "mutable", buffer_bytes=buffer_bytes
    )
    try:
        replay = overlay_context.enable_mutation()
        engine = overlay_context.serial_engine()
        overlay_digests = {
            name: protocol.payload_digest(run_query(engine, name).payload)
            for name in DEFAULT_MIX
        }
    finally:
        overlay_context.close()
    rebuild_dir = base / "rebuild_final"
    rebuild_context = ServeContext.build(
        final_repository, rebuild_dir, buffer_bytes=buffer_bytes
    )
    try:
        engine = rebuild_context.serial_engine()
        rebuild_digests = {
            name: protocol.payload_digest(run_query(engine, name).payload)
            for name in DEFAULT_MIX
        }
    finally:
        rebuild_context.close()
        shutil.rmtree(rebuild_dir)
    return {
        "queries_equivalent": overlay_digests == rebuild_digests,
        "per_query_digests": dict(sorted(overlay_digests.items())),
        "replayed_wal_records": replay["wal_records"],
    }


def _apply_live_writes(client: ServeClient, step) -> int:
    """Send one recrawl step through the daemon's write ops, batched."""
    writes = 0
    for op, edges in (("remove", step.removed), ("add", step.added)):
        batch = [list(edge) for edge in edges]
        for start in range(0, len(batch), _WRITE_BATCH):
            chunk = batch[start : start + _WRITE_BATCH]
            if not chunk:
                continue
            if op == "add":
                client.add_edges(chunk)
            else:
                client.remove_edges(chunk)
            writes += 1
    return writes


def _live_phase(
    repository,
    step,
    base: Path,
    buffer_bytes: int,
    concurrency: int,
    requests_per_client: int,
    workers: int,
    queue_limit: int,
) -> dict:
    """Writes + compaction under live load against a real daemon."""
    live_dir = base / "live"
    context = ServeContext.build(repository, live_dir, buffer_bytes=buffer_bytes)
    try:
        context.enable_mutation()
        daemon = GraphQueryDaemon(
            context, workers=workers, queue_limit=queue_limit
        )
        box: dict = {}
        with DaemonHandle(daemon) as handle:
            with ServeClient("127.0.0.1", handle.port) as admin:
                writes = _apply_live_writes(admin, step)
            # Serial reference digests *after* the writes: every reply
            # during the load — before and after the compaction flip —
            # must match these.
            engine = context.serial_engine()
            serial_digests = {
                name: protocol.payload_digest(run_query(engine, name).payload)
                for name in DEFAULT_MIX
            }
            wal_bytes_before = context.wal.size_bytes()

            def _drive() -> None:
                box["load"] = run_load(
                    "127.0.0.1",
                    handle.port,
                    concurrency=concurrency,
                    requests_per_client=requests_per_client,
                )

            thread = threading.Thread(target=_drive, name="mutate-load")
            thread.start()
            time.sleep(_COMPACT_DELAY_S)
            with ServeClient("127.0.0.1", handle.port) as admin:
                compact_outcome = admin.compact(str(live_dir / "compacted"))
            thread.join()
            # The compacted store must accept new writes into its own,
            # fresh WAL.
            with ServeClient("127.0.0.1", handle.port) as admin:
                post = admin.add_edges([[0, repository.num_pages - 1]])
        load = box["load"]
        conserved, _ = _conservation(daemon, load)
        observed = load.digests()
        matches_serial = load.consistent() and all(
            observed.get(name) == {digest}
            for name, digest in serial_digests.items()
        )
        client_errors = [c.error for c in load.clients if c.error]
        mutation = context.mutation_stats()
        return {
            # Deterministic gates (CI exact-pins these):
            "live_compacted": bool(compact_outcome.get("compacted"))
            and context.generation == 1
            and context.compactions == 1
            and context.last_compaction_generation == 1,
            "live_matches_serial": matches_serial,
            "live_zero_failed": load.requests_failed == 0
            and load.requests_timeout == 0
            and not client_errors,
            "live_conserved": conserved,
            "live_wal_truncated": compact_outcome.get("absorbed_bytes")
            == wal_bytes_before
            and compact_outcome.get("mutation", {}).get("carried_bytes") == 0,
            "live_post_write_ok": post.get("edges_applied") == 1
            and post.get("wal_bytes", 0) > 0
            and mutation.get("delta_edges") == 1,
            "live_writes_applied": writes + 1,
            # Timing-dependent observability (CI ignores):
            "live_detail": {
                "wal_bytes_before_compact": wal_bytes_before,
                "absorbed_records": compact_outcome.get("absorbed_records", 0),
                "drained_in_flight": compact_outcome.get("drained", 0),
                "completed": load.requests_ok,
                "shed": load.shed_retries,
                "errors": client_errors,
            },
        }
    finally:
        context.close()


def run(
    size: int | None = None,
    steps: int = DEFAULT_STEPS,
    seed: int = 2003,
    buffer_bytes: int = DEFAULT_BUFFER_BYTES,
    concurrency: int = DEFAULT_CONCURRENCY,
    requests_per_client: int = DEFAULT_REQUESTS_PER_CLIENT,
    workers: int = DEFAULT_WORKERS,
    queue_limit: int = DEFAULT_QUEUE_LIMIT,
    workdir: str | None = None,
) -> dict:
    """Run the mutation benchmark end-to-end; returns the results dict."""
    size = size or sweep_sizes()[1]
    repository = dataset(size)
    with tracing.span("mutate.recrawl"):
        recrawl_steps = recrawl(
            repository, RecrawlConfig(steps=steps, seed=seed)
        )
    own_tmp = tempfile.TemporaryDirectory() if workdir is None else None
    base = Path(workdir or own_tmp.name)
    try:
        with tracing.span("mutate.equivalence"):
            depths, adjacency_equivalent = _equivalence_sweep(
                repository, recrawl_steps, base, buffer_bytes
            )
        with tracing.span("mutate.queries"):
            queries = _query_equivalence(
                recrawl_steps[-1].repository, base, buffer_bytes
            )
        with tracing.span("mutate.live"):
            live = _live_phase(
                repository,
                recrawl_steps[0],
                base,
                buffer_bytes,
                concurrency,
                requests_per_client,
                workers,
                queue_limit,
            )
        results = {
            "num_pages": repository.num_pages,
            "recrawl_steps": steps,
            "seed": seed,
            "buffer_bytes": buffer_bytes,
            "total_delta_edges": sum(s.delta_edges for s in recrawl_steps),
            "adjacency_equivalent": adjacency_equivalent,
            "depths": depths,
            "digest": protocol.payload_digest(
                {"per_depth": [row["digest"] for row in depths]}
            ),
        }
        results.update(queries)
        results.update(live)
        return {"results": results}
    finally:
        if own_tmp is not None:
            own_tmp.cleanup()


def report(results: dict) -> str:
    """Human-readable summary table."""
    rows = [
        ("pages", results["num_pages"]),
        ("recrawl steps", results["recrawl_steps"]),
        ("total delta edges", results["total_delta_edges"]),
        ("adjacency equivalent (all depths)", results["adjacency_equivalent"]),
        ("queries equivalent (final depth)", results["queries_equivalent"]),
        ("live: compacted / matches serial",
         f"{results['live_compacted']} / {results['live_matches_serial']}"),
        ("live: zero failed / conserved",
         f"{results['live_zero_failed']} / {results['live_conserved']}"),
        ("live: wal truncated / post-write ok",
         f"{results['live_wal_truncated']} / {results['live_post_write_ok']}"),
    ]
    table = format_table(["metric", "value"], rows)
    depth_rows = [
        (
            row["depth"],
            row["step_edges"],
            row["overlay_edges"],
            row["overlay_rows"],
            row["wal_bytes"],
            row["delta_merges"],
            f"{row['probe_s'] * 1000.0:.1f}",
            row["matches_rebuild"],
        )
        for row in results.get("depths", [])
    ]
    if depth_rows:
        table += "\n\nquery cost vs delta depth:\n" + format_table(
            ["depth", "step edges", "delta edges", "delta rows",
             "wal bytes", "merges", "probe ms", "matches rebuild"],
            depth_rows,
        )
    return table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--size", type=int, default=None)
    parser.add_argument("--steps", type=int, default=DEFAULT_STEPS)
    parser.add_argument("--seed", type=int, default=2003)
    parser.add_argument(
        "--buffer-kb", type=int, default=DEFAULT_BUFFER_BYTES // 1024
    )
    parser.add_argument("--concurrency", type=int, default=DEFAULT_CONCURRENCY)
    parser.add_argument(
        "--requests", type=int, default=DEFAULT_REQUESTS_PER_CLIENT,
        help="query requests per client in the live phase",
    )
    parser.add_argument("--workers", type=int, default=DEFAULT_WORKERS)
    parser.add_argument("--queue-limit", type=int, default=DEFAULT_QUEUE_LIMIT)
    add_report_arguments(parser)
    add_trace_arguments(parser)
    arguments = parser.parse_args()
    with trace_session(arguments, "mutate") as tracer:
        outcome = run(
            size=arguments.size,
            steps=arguments.steps,
            seed=arguments.seed,
            buffer_bytes=arguments.buffer_kb * 1024,
            concurrency=arguments.concurrency,
            requests_per_client=arguments.requests,
            workers=arguments.workers,
            queue_limit=arguments.queue_limit,
        )
    results = outcome["results"]
    if not arguments.quiet:
        print(report(results))
    if not (
        results["adjacency_equivalent"]
        and results["queries_equivalent"]
        and results["live_matches_serial"]
    ):
        raise ServeError(
            "mutation equivalence violated: base+delta diverged from rebuild"
        )
    emit_report(
        arguments.json_dir,
        "mutate",
        results,
        params={
            "steps": arguments.steps,
            "seed": arguments.seed,
            "concurrency": arguments.concurrency,
            "requests_per_client": arguments.requests,
        },
        spans=tracer.summary_dict() if tracer else None,
    )


if __name__ == "__main__":
    main()
