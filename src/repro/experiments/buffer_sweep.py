"""Figure 12: navigation time vs memory-buffer size.

Queries 1, 5 and 6 run repeatedly while the buffer-manager budget sweeps
from very small to comfortably large.  The paper's expected shape: time
drops as the buffer grows, then flattens once every graph/page the query
touches fits simultaneously — "further increase in buffer size does not
improve performance".

Because every representation now resizes through the one
``set_buffer_bytes()`` protocol of the shared storage engine and reports
I/O through the one :class:`repro.storage.metrics.MetricsRegistry`, the
sweep runs identically against S-Node *and* the relational baseline (or
any other scheme) with no representation-specific branches — the paper's
"same memory bound" comparison, made literal.

The same disk-time simulation as the Figure 11 experiment converts the
instrumented I/O counters into navigation milliseconds.

``--predict`` additionally runs each (scheme, query) once under the
access-pattern profiler and feeds the recorded buffer trace through
Mattson stack-distance analysis (:mod:`repro.obs.profile.stackdist`),
emitting the predicted hit ratio at every swept capacity next to the
measured one — the sweep validates the one-pass miss-ratio curve, and
the curve in turn reads off the Figure 12 saturation knee without
sweeping.  Pinned-entry hits are excluded from both sides: they are
served outside the LRU budget at any capacity.
"""

from __future__ import annotations

import argparse
import tempfile
from dataclasses import asdict, dataclass
from pathlib import Path

from repro.experiments.harness import (
    add_report_arguments,
    add_trace_arguments,
    dataset,
    emit_report,
    format_table,
    sweep_sizes,
    trace_session,
)
from repro.errors import BufferCapacityError
from repro.experiments.queries import (
    DEFAULT_CPU_SCALE,
    DEFAULT_MBPS,
    DEFAULT_SEEK_MS,
    _build_pair,
)
from repro.index.pagerank_index import PageRankIndex
from repro.index.textindex import TextIndex
from repro.query.engine import QueryEngine
from repro.query.workload import (
    query1_referred_universities,
    query5_intra_set_ranking,
    query6_joint_references,
)

SWEEP_QUERIES = {
    "query1": query1_referred_universities,
    "query5": query5_intra_set_ranking,
    "query6": query6_joint_references,
}

DEFAULT_BUFFER_SWEEP_KB = (4, 16, 64, 128, 256, 512, 1024, 2048, 4096, 8192)

#: Schemes swept by default: the paper's Figure 12 subject (S-Node) plus
#: the relational baseline under the identical memory bound.
DEFAULT_SWEEP_SCHEMES = ("s-node", "relational")


@dataclass
class SweepPoint:
    """(scheme, query, buffer size) measurement."""

    scheme: str
    query: str
    buffer_kb: int
    simulated_ms: float
    wall_ms: float
    evictions: int
    #: Unpinned buffer hits/misses summed over the measured trials.
    hits: int = 0
    misses: int = 0

    @property
    def hit_ratio(self) -> float:
        """Measured unpinned hit ratio over the trials."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


#: Ring-buffer bound for ``--predict`` traces: large enough that seed-scale
#: sweeps never drop buffer events (dropped events would bias the curve).
PREDICT_TRACE_CAPACITY = 1 << 20


def _predict_curves(pair, engine, trials: int):
    """Record one profiled run per query and return its miss-ratio curve.

    The buffer request stream is capacity-independent (queries request the
    same graphs no matter what is cached), so a single trace recorded at
    the current capacity predicts every swept capacity.  The warm-up
    execution updates the LRU stack *uncounted* so the counted window
    matches the measured trials, which also start warm.
    """
    from repro.obs import profile as access_profile

    curves = {}
    for query_name, query_fn in SWEEP_QUERIES.items():
        tracer = access_profile.AccessTracer(capacity=PREDICT_TRACE_CAPACITY)
        pair.drop_caches()
        with access_profile.activated(tracer):
            query_fn(engine)  # cold warm-up, uncounted
            boundary = tracer.seq
            for _ in range(trials):
                query_fn(engine)
        if tracer.dropped_buffer:
            print(
                f"[buffer_sweep] warning: {tracer.dropped_buffer} buffer "
                f"events dropped while predicting {pair.name}/{query_name}; "
                "curve is biased"
            )
        curves[query_name] = access_profile.analyze_buffer_trace(
            tracer.buffer_events(), count_from_seq=boundary
        )
    return curves


def run(
    size: int | None = None,
    buffer_sizes_kb: tuple[int, ...] = DEFAULT_BUFFER_SWEEP_KB,
    trials: int = 3,
    seek_ms: float = DEFAULT_SEEK_MS,
    mbps: float = DEFAULT_MBPS,
    cpu_scale: float = DEFAULT_CPU_SCALE,
    schemes: tuple[str, ...] = DEFAULT_SWEEP_SCHEMES,
    predict: bool = False,
):
    """Run the sweep; returns one point per (scheme, query, buffer size).

    With ``predict=True`` returns ``(points, predictions)`` where
    ``predictions`` maps ``(scheme, query)`` to the Mattson
    :class:`~repro.obs.profile.stackdist.MissRatioCurve` recorded from a
    single profiled run per query.
    """
    from repro.obs import tracing

    size = size or sweep_sizes()[3]
    repository = dataset(size)
    text_index = TextIndex(repository)
    pagerank_index = PageRankIndex(repository)
    points: list[SweepPoint] = []
    predictions: dict[tuple[str, str], object] = {}
    with tempfile.TemporaryDirectory() as workdir:
        for scheme in schemes:
            with tracing.span("buffer_sweep.build", scheme=scheme):
                pair = _build_pair(
                    scheme, repository, Path(workdir) / scheme, buffer_sizes_kb[0] * 1024
                )
            engine = QueryEngine(
                repository, text_index, pagerank_index, pair.forward, pair.backward
            )
            if predict:
                with tracing.span("buffer_sweep.predict", scheme=scheme):
                    for query_name, curve in _predict_curves(
                        pair, engine, trials
                    ).items():
                        predictions[(scheme, query_name)] = curve
            for buffer_kb in buffer_sizes_kb:
                try:
                    pair.set_buffer_bytes(buffer_kb * 1024)
                except BufferCapacityError:
                    # Budget below the scheme's pinned floor (supernode
                    # graph, root pages): the point is infeasible for this
                    # scheme, not slow — skip it explicitly.
                    tracing.note("buffer_sweep_infeasible")
                    continue
                for query_name, query_fn in SWEEP_QUERIES.items():
                    # Paper protocol: "we executed queries 1, 5, and 6
                    # repeatedly" — one cold warm-up execution, then
                    # measured repetitions.  With a buffer big enough for
                    # the query's working set the repetitions do no I/O
                    # and the curve flattens; below that they keep
                    # evicting and re-seeking.
                    pair.drop_caches()
                    query_fn(engine)  # cold warm-up, not measured
                    wall_total = 0.0
                    seeks_total = 0
                    bytes_total = 0
                    evictions = 0
                    hits_total = 0
                    misses_total = 0
                    for _ in range(trials):
                        pair.reset_io()
                        with tracing.span(
                            "buffer_sweep.trial",
                            scheme=scheme,
                            query=query_name,
                            buffer_kb=buffer_kb,
                        ):
                            result = query_fn(engine)
                        wall_total += result.navigation_seconds
                        seeks, bytes_read = pair.io_totals()
                        seeks_total += seeks
                        bytes_total += bytes_read
                        evictions += pair.eviction_totals()
                        hits, misses = pair.buffer_totals()
                        hits_total += hits
                        misses_total += misses
                    wall_ms = wall_total * 1000.0 / trials
                    simulated_ms = (
                        wall_ms * cpu_scale
                        + (seeks_total / trials) * seek_ms
                        + (bytes_total / trials / (mbps * 1e6)) * 1000.0
                    )
                    points.append(
                        SweepPoint(
                            scheme=scheme,
                            query=query_name,
                            buffer_kb=buffer_kb,
                            simulated_ms=simulated_ms,
                            wall_ms=wall_ms,
                            evictions=evictions // trials,
                            hits=hits_total,
                            misses=misses_total,
                        )
                    )
            pair.close()
    if predict:
        return points, predictions
    return points


def prediction_report(
    points: list[SweepPoint], predictions: dict
) -> str:
    """Predicted (Mattson) vs measured hit ratio at every swept capacity."""
    rows = []
    worst = 0.0
    for point in points:
        curve = predictions.get((point.scheme, point.query))
        if curve is None:
            continue
        predicted = curve.hit_ratio(point.buffer_kb * 1024)
        measured = point.hit_ratio
        delta = predicted - measured
        worst = max(worst, abs(delta))
        rows.append(
            (
                f"{point.scheme}/{point.query}",
                f"{point.buffer_kb} KiB",
                f"{predicted * 100.0:.2f}%",
                f"{measured * 100.0:.2f}%",
                f"{delta * 100.0:+.2f}pp",
            )
        )
    table = format_table(
        ["scheme/query", "buffer", "predicted hit", "measured hit", "delta"],
        rows,
    )
    knees = "; ".join(
        f"{scheme}/{query}: saturates at "
        f"{curve.saturation_capacity / 1024.0:.0f} KiB"
        for (scheme, query), curve in sorted(predictions.items())
    )
    return (
        table
        + f"\nworst |predicted - measured| = {worst * 100.0:.2f}pp\n"
        + "MRC saturation capacities (no sweep needed): "
        + knees
    )


def report(points: list[SweepPoint]) -> str:
    """One column per (scheme, query), one row per buffer size."""
    buffer_sizes = sorted({p.buffer_kb for p in points})
    columns = sorted({(p.scheme, p.query) for p in points})
    by_key = {(p.scheme, p.query, p.buffer_kb): p for p in points}
    rows = []
    for buffer_kb in buffer_sizes:
        row: list[object] = [f"{buffer_kb} KiB"]
        for scheme, query in columns:
            point = by_key[(scheme, query, buffer_kb)]
            row.append(f"{point.simulated_ms:.1f}")
        rows.append(row)
    table = format_table(
        ["buffer"] + [f"{scheme}/{query} (ms)" for scheme, query in columns],
        rows,
    )
    # Flatness check: last two points of each curve should be close.
    checks = []
    for scheme, query in columns:
        curve = [
            by_key[(scheme, query, b)].simulated_ms for b in buffer_sizes
        ]
        flat = abs(curve[-1] - curve[-2]) <= max(0.15 * max(curve[-1], 1e-9), 1.0)
        checks.append(
            f"{scheme}/{query}: {'flattens' if flat else 'still falling'}"
        )
    return table + "\n" + "; ".join(checks)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--size", type=int, default=None)
    parser.add_argument("--trials", type=int, default=3)
    parser.add_argument(
        "--schemes",
        nargs="+",
        default=list(DEFAULT_SWEEP_SCHEMES),
        help="representations to sweep (any of flat-file, relational, link3, s-node)",
    )
    parser.add_argument(
        "--predict",
        action="store_true",
        help="record one profiled run per query and print the Mattson "
        "miss-ratio curve's predictions next to the measured sweep",
    )
    add_report_arguments(parser)
    add_trace_arguments(parser)
    arguments = parser.parse_args()
    predictions: dict = {}
    with trace_session(arguments, "buffer_sweep") as tracer:
        if arguments.predict:
            points, predictions = run(
                size=arguments.size,
                trials=arguments.trials,
                schemes=tuple(arguments.schemes),
                predict=True,
            )
        else:
            points = run(
                size=arguments.size,
                trials=arguments.trials,
                schemes=tuple(arguments.schemes),
            )
    if not arguments.quiet:
        print("[buffer_sweep] Figure 12")
        print(report(points))
        if predictions:
            print("\nMattson MRC validation (predicted vs measured):")
            print(prediction_report(points, predictions))
    capacities = sorted({point.buffer_kb * 1024 for point in points})
    results: dict = {"points": [asdict(point) for point in points]}
    if predictions:
        results["predictions"] = {
            f"{scheme}/{query}": curve.to_dict(capacities=capacities)
            for (scheme, query), curve in sorted(predictions.items())
        }
    emit_report(
        arguments.json_dir,
        "buffer_sweep",
        results,
        params={
            "trials": arguments.trials,
            "schemes": list(arguments.schemes),
            "predict": arguments.predict,
        },
        spans=tracer.summary_dict() if tracer else None,
    )


if __name__ == "__main__":
    main()
