"""Figure 12: S-Node navigation time vs memory-buffer size.

Queries 1, 5 and 6 run repeatedly on the S-Node representation while the
buffer-manager budget sweeps from very small to comfortably large.  The
paper's expected shape: time drops as the buffer grows, then flattens once
every intranode/superedge graph the query touches fits simultaneously —
"further increase in buffer size does not improve performance".

The same disk-time simulation as the Figure 11 experiment converts the
instrumented I/O counters into navigation milliseconds.
"""

from __future__ import annotations

import argparse
import tempfile
from dataclasses import dataclass

from repro.baselines import SNodeRepresentation
from repro.experiments.harness import (
    dataset,
    experiment_refinement_config,
    format_table,
    sweep_sizes,
)
from repro.experiments.queries import (
    DEFAULT_CPU_SCALE,
    DEFAULT_MBPS,
    DEFAULT_SEEK_MS,
)
from repro.index.pagerank_index import PageRankIndex
from repro.index.textindex import TextIndex
from repro.query.engine import QueryEngine
from repro.query.workload import (
    query1_referred_universities,
    query5_intra_set_ranking,
    query6_joint_references,
)
from repro.snode.build import BuildOptions, build_snode

SWEEP_QUERIES = {
    "query1": query1_referred_universities,
    "query5": query5_intra_set_ranking,
    "query6": query6_joint_references,
}

DEFAULT_BUFFER_SWEEP_KB = (4, 16, 64, 128, 256, 512, 1024, 2048, 4096, 8192)


@dataclass
class SweepPoint:
    """(query, buffer size) measurement."""

    query: str
    buffer_kb: int
    simulated_ms: float
    wall_ms: float
    evictions: int


def run(
    size: int | None = None,
    buffer_sizes_kb: tuple[int, ...] = DEFAULT_BUFFER_SWEEP_KB,
    trials: int = 3,
    seek_ms: float = DEFAULT_SEEK_MS,
    mbps: float = DEFAULT_MBPS,
    cpu_scale: float = DEFAULT_CPU_SCALE,
) -> list[SweepPoint]:
    """Run the sweep; returns one point per (query, buffer size)."""
    size = size or sweep_sizes()[3]
    repository = dataset(size)
    text_index = TextIndex(repository)
    pagerank_index = PageRankIndex(repository)
    points: list[SweepPoint] = []
    with tempfile.TemporaryDirectory() as workdir:
        forward_build = build_snode(
            repository,
            f"{workdir}/f",
            BuildOptions(refinement=experiment_refinement_config()),
        )
        backward_build = build_snode(
            repository,
            f"{workdir}/b",
            BuildOptions(refinement=experiment_refinement_config(), transpose=True),
        )
        forward = SNodeRepresentation(forward_build)
        backward = SNodeRepresentation(backward_build)
        engine = QueryEngine(
            repository, text_index, pagerank_index, forward, backward
        )
        for buffer_kb in buffer_sizes_kb:
            forward_build.store.set_buffer_bytes(buffer_kb * 1024)
            backward_build.store.set_buffer_bytes(buffer_kb * 1024)
            for query_name, query_fn in SWEEP_QUERIES.items():
                # Paper protocol: "we executed queries 1, 5, and 6
                # repeatedly" — one cold warm-up execution, then measured
                # repetitions.  With a buffer big enough for the query's
                # working set the repetitions do no I/O and the curve
                # flattens; below that they keep evicting and re-seeking.
                forward.drop_caches()
                backward.drop_caches()
                query_fn(engine)  # cold warm-up, not measured
                wall_total = 0.0
                seeks_total = 0
                bytes_total = 0
                evictions = 0
                for _ in range(trials):
                    forward.reset_io_stats()
                    backward.reset_io_stats()
                    result = query_fn(engine)
                    wall_total += result.navigation_seconds
                    for stats in (forward.io_stats(), backward.io_stats()):
                        seeks_total += stats.get("disk_seeks", 0)
                        bytes_total += stats.get("bytes_read", 0)
                        evictions += stats.get("graphs_evicted", 0)
                wall_ms = wall_total * 1000.0 / trials
                simulated_ms = (
                    wall_ms * cpu_scale
                    + (seeks_total / trials) * seek_ms
                    + (bytes_total / trials / (mbps * 1e6)) * 1000.0
                )
                points.append(
                    SweepPoint(
                        query=query_name,
                        buffer_kb=buffer_kb,
                        simulated_ms=simulated_ms,
                        wall_ms=wall_ms,
                        evictions=evictions // trials,
                    )
                )
        forward.close()
        backward.close()
    return points


def report(points: list[SweepPoint]) -> str:
    """One column per query, one row per buffer size (Figure 12's axes)."""
    buffer_sizes = sorted({p.buffer_kb for p in points})
    queries = sorted({p.query for p in points})
    by_key = {(p.query, p.buffer_kb): p for p in points}
    rows = []
    for buffer_kb in buffer_sizes:
        row: list[object] = [f"{buffer_kb} KiB"]
        for query in queries:
            point = by_key[(query, buffer_kb)]
            row.append(f"{point.simulated_ms:.1f}")
        rows.append(row)
    table = format_table(["buffer"] + [f"{q} (ms)" for q in queries], rows)
    # Flatness check: last two points of each curve should be close.
    checks = []
    for query in queries:
        curve = [by_key[(query, b)].simulated_ms for b in buffer_sizes]
        flat = abs(curve[-1] - curve[-2]) <= max(0.15 * max(curve[-1], 1e-9), 1.0)
        checks.append(f"{query}: {'flattens' if flat else 'still falling'}")
    return table + "\n" + "; ".join(checks)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--size", type=int, default=None)
    parser.add_argument("--trials", type=int, default=3)
    arguments = parser.parse_args()
    points = run(size=arguments.size, trials=arguments.trials)
    print("[buffer_sweep] Figure 12")
    print(report(points))


if __name__ == "__main__":
    main()
