"""Compressed-sparse-row directed graph.

This is the library's ground-truth graph structure: the synthetic Web
generator produces one, every representation scheme (S-Node, Huffman,
Link3, relational, flat file) is built from one, and tests validate each
scheme by comparing reconstructed adjacency lists against it.

The CSR arrays are numpy ``int64`` so a few-million-edge graph stays cheap;
the class is immutable once built (use :class:`GraphBuilder` to construct).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence

import numpy as np

from repro.errors import GraphError


class Digraph:
    """Immutable directed graph over vertex ids ``0 .. n-1`` in CSR form."""

    def __init__(self, offsets: np.ndarray, targets: np.ndarray) -> None:
        if offsets.ndim != 1 or targets.ndim != 1:
            raise GraphError("CSR arrays must be one-dimensional")
        if len(offsets) == 0 or offsets[0] != 0 or offsets[-1] != len(targets):
            raise GraphError("CSR offsets are inconsistent with targets")
        if np.any(np.diff(offsets) < 0):
            raise GraphError("CSR offsets must be non-decreasing")
        n = len(offsets) - 1
        if len(targets) and (targets.min() < 0 or targets.max() >= n):
            raise GraphError("edge target out of vertex range")
        self._offsets = offsets.astype(np.int64, copy=False)
        self._targets = targets.astype(np.int64, copy=False)

    # -- basic properties ---------------------------------------------------

    @property
    def num_vertices(self) -> int:
        """Number of vertices."""
        return len(self._offsets) - 1

    @property
    def num_edges(self) -> int:
        """Number of directed edges."""
        return len(self._targets)

    @property
    def offsets(self) -> np.ndarray:
        """CSR offsets array (read-only view)."""
        return self._offsets

    @property
    def targets(self) -> np.ndarray:
        """CSR targets array (read-only view)."""
        return self._targets

    def __repr__(self) -> str:
        return f"Digraph(vertices={self.num_vertices}, edges={self.num_edges})"

    # -- access ---------------------------------------------------------------

    def _check_vertex(self, vertex: int) -> None:
        if not 0 <= vertex < self.num_vertices:
            raise GraphError(
                f"vertex {vertex} out of range [0, {self.num_vertices})"
            )

    def out_degree(self, vertex: int) -> int:
        """Out-degree of ``vertex``."""
        self._check_vertex(vertex)
        return int(self._offsets[vertex + 1] - self._offsets[vertex])

    def successors(self, vertex: int) -> np.ndarray:
        """Adjacency list of ``vertex`` (numpy view, sorted ascending)."""
        self._check_vertex(vertex)
        return self._targets[self._offsets[vertex] : self._offsets[vertex + 1]]

    def successors_list(self, vertex: int) -> list[int]:
        """Adjacency list of ``vertex`` as plain Python ints."""
        return [int(t) for t in self.successors(vertex)]

    def has_edge(self, source: int, target: int) -> bool:
        """True iff the edge ``source -> target`` exists."""
        row = self.successors(source)
        index = int(np.searchsorted(row, target))
        return index < len(row) and row[index] == target

    def edges(self) -> Iterator[tuple[int, int]]:
        """Iterate over all edges as ``(source, target)`` pairs."""
        for source in range(self.num_vertices):
            for target in self.successors(source):
                yield source, int(target)

    def mean_out_degree(self) -> float:
        """Average out-degree (the paper measured 14 on WebBase)."""
        if self.num_vertices == 0:
            return 0.0
        return self.num_edges / self.num_vertices

    # -- derived graphs ---------------------------------------------------------

    def transpose(self) -> "Digraph":
        """Return the transpose graph (all edges reversed, "backlinks")."""
        n = self.num_vertices
        in_degrees = np.bincount(self._targets, minlength=n)
        offsets = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(in_degrees, out=offsets[1:])
        sources = np.repeat(
            np.arange(n, dtype=np.int64), np.diff(self._offsets)
        )
        # Stable counting-sort placement keeps each in-list sorted by source.
        order = np.argsort(self._targets, kind="stable")
        targets = sources[order]
        return Digraph(offsets, targets)

    def subgraph(self, vertices: Sequence[int]) -> tuple["Digraph", dict[int, int]]:
        """Induced subgraph on ``vertices``.

        Returns the new graph (vertices relabelled ``0..k-1`` in the order
        given) and the old->new id mapping.
        """
        mapping = {int(v): i for i, v in enumerate(vertices)}
        if len(mapping) != len(vertices):
            raise GraphError("duplicate vertices in subgraph request")
        builder = GraphBuilder(len(mapping))
        for old, new in mapping.items():
            for target in self.successors(old):
                mapped = mapping.get(int(target))
                if mapped is not None:
                    builder.add_edge(new, mapped)
        return builder.build(), mapping

    def relabel(self, permutation: Sequence[int]) -> "Digraph":
        """Relabel vertices: new id of old vertex ``v`` is ``permutation[v]``."""
        n = self.num_vertices
        perm = np.asarray(permutation, dtype=np.int64)
        if len(perm) != n or len(np.unique(perm)) != n:
            raise GraphError("permutation must be a bijection on vertices")
        inverse = np.empty(n, dtype=np.int64)
        inverse[perm] = np.arange(n, dtype=np.int64)
        degrees = np.diff(self._offsets)[inverse]
        offsets = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(degrees, out=offsets[1:])
        targets = np.empty(self.num_edges, dtype=np.int64)
        for new in range(n):
            old = int(inverse[new])
            row = perm[self.successors(old)]
            row.sort()
            targets[offsets[new] : offsets[new + 1]] = row
        return Digraph(offsets, targets)

    # -- construction helpers -----------------------------------------------

    @classmethod
    def from_adjacency(cls, adjacency: Sequence[Iterable[int]]) -> "Digraph":
        """Build from a list of adjacency iterables (deduplicated, sorted)."""
        builder = GraphBuilder(len(adjacency))
        for source, row in enumerate(adjacency):
            for target in row:
                builder.add_edge(source, target)
        return builder.build()

    @classmethod
    def from_edges(cls, num_vertices: int, edges: Iterable[tuple[int, int]]) -> "Digraph":
        """Build from an iterable of ``(source, target)`` pairs."""
        builder = GraphBuilder(num_vertices)
        for source, target in edges:
            builder.add_edge(source, target)
        return builder.build()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Digraph):
            return NotImplemented
        return (
            np.array_equal(self._offsets, other._offsets)
            and np.array_equal(self._targets, other._targets)
        )

    def __hash__(self) -> int:  # pragma: no cover - identity hashing only
        return id(self)


class GraphBuilder:
    """Mutable edge accumulator that produces a deduplicated :class:`Digraph`.

    Edges are spilled from a small Python append buffer into packed numpy
    ``int64`` chunks every :data:`CHUNK_EDGES` additions, so ingesting a
    multi-million-edge stream holds at most one small Python list plus the
    compact chunk arrays — the builder's memory stays proportional to the
    *edge count in packed form*, never to boxed Python ints.  Chunked edge
    iterables can be fed incrementally via :meth:`add_edges` /
    :meth:`add_links`; :meth:`build` concatenates the chunks once and
    deduplicates in numpy.
    """

    #: Python-side append buffer size before spilling to a numpy chunk.
    CHUNK_EDGES = 1 << 16

    def __init__(self, num_vertices: int) -> None:
        if num_vertices < 0:
            raise GraphError(f"vertex count must be >= 0, got {num_vertices}")
        self._num_vertices = num_vertices
        self._chunks: list[np.ndarray] = []  # packed (source, target) pairs
        self._sources: list[int] = []
        self._targets: list[int] = []
        self._num_buffered = 0

    @property
    def num_vertices(self) -> int:
        """Number of vertices the built graph will have."""
        return self._num_vertices

    @property
    def num_buffered_edges(self) -> int:
        """Edges recorded so far (duplicates still counted)."""
        return self._num_buffered

    def add_vertex(self) -> int:
        """Append a fresh vertex; returns its id."""
        self._num_vertices += 1
        return self._num_vertices - 1

    def _spill(self) -> None:
        """Move the Python append buffer into a packed numpy chunk."""
        if not self._sources:
            return
        chunk = np.empty((2, len(self._sources)), dtype=np.int64)
        chunk[0] = self._sources
        chunk[1] = self._targets
        self._chunks.append(chunk)
        self._sources.clear()
        self._targets.clear()

    def add_edge(self, source: int, target: int) -> None:
        """Record the edge ``source -> target`` (duplicates collapse)."""
        if not 0 <= source < self._num_vertices:
            raise GraphError(f"source {source} out of range")
        if not 0 <= target < self._num_vertices:
            raise GraphError(f"target {target} out of range")
        self._sources.append(source)
        self._targets.append(target)
        self._num_buffered += 1
        if len(self._sources) >= self.CHUNK_EDGES:
            self._spill()

    def add_edges(self, edges: Iterable[tuple[int, int]]) -> None:
        """Record many edges (any iterable, consumed incrementally)."""
        for source, target in edges:
            self.add_edge(source, target)

    def add_links(self, source: int, targets: Iterable[int]) -> None:
        """Record one source's out-links (an adjacency-row chunk).

        The natural unit a streaming ingest produces — one page record's
        link list goes straight into the packed buffer without building
        per-edge tuples.
        """
        if not 0 <= source < self._num_vertices:
            raise GraphError(f"source {source} out of range")
        for target in targets:
            if not 0 <= target < self._num_vertices:
                raise GraphError(f"target {target} out of range")
            self._sources.append(source)
            self._targets.append(target)
            self._num_buffered += 1
        if len(self._sources) >= self.CHUNK_EDGES:
            self._spill()

    def build(self) -> Digraph:
        """Produce the immutable CSR graph (edges deduplicated and sorted)."""
        n = self._num_vertices
        self._spill()
        if not self._chunks:
            return Digraph(np.zeros(n + 1, dtype=np.int64), np.empty(0, dtype=np.int64))
        packed = (
            self._chunks[0]
            if len(self._chunks) == 1
            else np.concatenate(self._chunks, axis=1)
        )
        keys = packed[0] * n + packed[1]
        unique_keys = np.unique(keys)
        sources = unique_keys // n
        targets = unique_keys % n
        degrees = np.bincount(sources, minlength=n)
        offsets = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(degrees, out=offsets[1:])
        return Digraph(offsets, targets)
