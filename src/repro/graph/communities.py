"""Community trawling and diameter estimation.

Two more of the global computations the paper's section 1.2 motivates the
compact representation with: "computing the Web graph diameter" and
"mining for communities [15]" — reference [15] being Kumar et al.'s
*Trawling the Web for emerging cyber-communities*, which identifies
communities by their signature (i, j) **bipartite cores**: i *fan* pages
that all link to the same j *center* pages.

The trawler implements the paper's iterative pruning followed by core
enumeration; the diameter estimator uses multi-source BFS sampling (exact
all-pairs is quadratic and unnecessary for the effective diameter the Web
literature reports).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from itertools import combinations

import numpy as np

from repro.errors import GraphError
from repro.graph.algorithms import bfs_distances
from repro.graph.digraph import Digraph


@dataclass(frozen=True)
class BipartiteCore:
    """An (i, j) community core: every fan links to every center."""

    fans: tuple[int, ...]
    centers: tuple[int, ...]


def trawl_bipartite_cores(
    graph: Digraph,
    fans: int = 3,
    centers: int = 3,
    max_cores: int = 1000,
) -> list[BipartiteCore]:
    """Enumerate (``fans``, ``centers``) bipartite cores.

    Follows Kumar et al.'s two phases:

    1. **Iterative pruning** — repeatedly discard pages whose out-degree
       (< ``centers``) or in-degree (< ``fans``) makes them unusable as a
       fan / center; pruning one side shrinks the other until fixpoint.
    2. **Core enumeration** — for every surviving candidate center set of
       size ``centers`` drawn from some fan's adjacency list, collect the
       fans pointing to all of them.

    Enumeration is exact but bounded by ``max_cores`` results.  Cores that
    are subsets of an already-emitted core (same centers) are not emitted
    twice.
    """
    if fans < 1 or centers < 1:
        raise GraphError("core dimensions must be >= 1")
    n = graph.num_vertices
    out_sets: list[set[int]] = [set(graph.successors_list(v)) for v in range(n)]
    in_sets: list[set[int]] = [set() for _ in range(n)]
    for source in range(n):
        for target in out_sets[source]:
            in_sets[target].add(source)

    # Phase 1: iterative pruning.
    alive_fan = [len(out_sets[v]) >= centers for v in range(n)]
    alive_center = [len(in_sets[v]) >= fans for v in range(n)]
    changed = True
    while changed:
        changed = False
        for v in range(n):
            if alive_fan[v]:
                usable = sum(1 for t in out_sets[v] if alive_center[t])
                if usable < centers:
                    alive_fan[v] = False
                    changed = True
            if alive_center[v]:
                usable = sum(1 for s in in_sets[v] if alive_fan[s])
                if usable < fans:
                    alive_center[v] = False
                    changed = True

    # Phase 2: enumerate center combinations from surviving fans.
    cores: list[BipartiteCore] = []
    seen_centers: set[tuple[int, ...]] = set()
    for fan in range(n):
        if not alive_fan[fan]:
            continue
        candidate_centers = sorted(
            t for t in out_sets[fan] if alive_center[t]
        )
        if len(candidate_centers) < centers:
            continue
        for center_set in combinations(candidate_centers, centers):
            if center_set in seen_centers:
                continue
            supporters = set(
                s for s in in_sets[center_set[0]] if alive_fan[s]
            )
            for center in center_set[1:]:
                supporters &= in_sets[center]
                if len(supporters) < fans:
                    break
            else:
                if len(supporters) >= fans:
                    seen_centers.add(center_set)
                    cores.append(
                        BipartiteCore(
                            fans=tuple(sorted(supporters)),
                            centers=center_set,
                        )
                    )
                    if len(cores) >= max_cores:
                        return cores
    return cores


def effective_diameter(
    graph: Digraph,
    percentile: float = 0.9,
    samples: int = 64,
    seed: int = 0,
) -> float:
    """Sampled effective diameter: the ``percentile`` quantile of finite
    pairwise BFS distances from ``samples`` random sources.

    This is the statistic Broder et al. report for the Web ("the diameter
    of the SCC is at least 28"); exact diameter needs all-pairs BFS, which
    the estimator approximates unbiasedly by source sampling.
    """
    if not 0.0 < percentile <= 1.0:
        raise GraphError(f"percentile must be in (0, 1], got {percentile}")
    n = graph.num_vertices
    if n == 0:
        return 0.0
    rng = random.Random(seed)
    sources = [rng.randrange(n) for _ in range(min(samples, n))]
    finite: list[int] = []
    for source in sources:
        distances = bfs_distances(graph, [source])
        reached = distances[distances > 0]
        finite.extend(int(d) for d in reached)
    if not finite:
        return 0.0
    return float(np.quantile(np.asarray(finite), percentile))


def reachability_profile(
    graph: Digraph, samples: int = 32, seed: int = 0
) -> dict[str, float]:
    """Bow-tie-style reachability summary (Broder et al., reference [8]).

    Returns the mean fraction of pages reachable forward and backward from
    random samples — the statistics that characterize the giant component
    structure the paper's Observation sources report.
    """
    n = graph.num_vertices
    if n == 0:
        return {"forward_reach": 0.0, "backward_reach": 0.0}
    transpose = graph.transpose()
    rng = random.Random(seed)
    sources = [rng.randrange(n) for _ in range(min(samples, n))]
    forward = []
    backward = []
    for source in sources:
        forward.append((bfs_distances(graph, [source]) >= 0).sum() / n)
        backward.append((bfs_distances(transpose, [source]) >= 0).sum() / n)
    return {
        "forward_reach": float(np.mean(forward)),
        "backward_reach": float(np.mean(backward)),
    }
