"""In-memory directed-graph substrate (CSR storage + classic algorithms)."""

from repro.graph.digraph import Digraph, GraphBuilder
from repro.graph.algorithms import (
    bfs_distances,
    degree_statistics,
    hits,
    in_neighborhood,
    out_neighborhood,
    pagerank,
    strongly_connected_components,
)

__all__ = [
    "Digraph",
    "GraphBuilder",
    "bfs_distances",
    "degree_statistics",
    "hits",
    "in_neighborhood",
    "out_neighborhood",
    "pagerank",
    "strongly_connected_components",
]
