"""Classic graph algorithms over :class:`~repro.graph.digraph.Digraph`.

These are the "global/bulk access" computations the paper motivates
(section 1.2): PageRank, strongly connected components, HITS, BFS, and the
neighborhood primitives that complex queries build on.  All of them operate
on the in-memory CSR graph; the point the paper makes is that a compact
representation lets these run fully in memory.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterable, Sequence

import numpy as np

from repro.errors import GraphError
from repro.graph.digraph import Digraph


def bfs_distances(graph: Digraph, sources: Iterable[int]) -> np.ndarray:
    """Multi-source BFS; returns hop distances (-1 = unreachable)."""
    distances = np.full(graph.num_vertices, -1, dtype=np.int64)
    queue: deque[int] = deque()
    for source in sources:
        if not 0 <= source < graph.num_vertices:
            raise GraphError(f"BFS source {source} out of range")
        if distances[source] < 0:
            distances[source] = 0
            queue.append(source)
    while queue:
        vertex = queue.popleft()
        next_distance = distances[vertex] + 1
        for target in graph.successors(vertex):
            if distances[target] < 0:
                distances[target] = next_distance
                queue.append(int(target))
    return distances


def out_neighborhood(graph: Digraph, pages: Iterable[int]) -> set[int]:
    """Union of the successors of every page in ``pages``."""
    result: set[int] = set()
    for page in pages:
        result.update(int(t) for t in graph.successors(page))
    return result


def in_neighborhood(transpose: Digraph, pages: Iterable[int]) -> set[int]:
    """Union of the predecessors of every page, given the transpose graph."""
    return out_neighborhood(transpose, pages)


def strongly_connected_components(graph: Digraph) -> list[list[int]]:
    """Tarjan's SCC algorithm, iterative so deep Web graphs don't recurse out.

    Returns components as lists of vertex ids, in reverse topological order
    of the condensation (Tarjan's natural output order).
    """
    n = graph.num_vertices
    index_counter = 0
    indices = np.full(n, -1, dtype=np.int64)
    lowlinks = np.zeros(n, dtype=np.int64)
    on_stack = np.zeros(n, dtype=bool)
    stack: list[int] = []
    components: list[list[int]] = []

    for root in range(n):
        if indices[root] != -1:
            continue
        # Each work-stack frame is (vertex, iterator position into successors).
        work: list[tuple[int, int]] = [(root, 0)]
        while work:
            vertex, child_index = work.pop()
            if child_index == 0:
                indices[vertex] = index_counter
                lowlinks[vertex] = index_counter
                index_counter += 1
                stack.append(vertex)
                on_stack[vertex] = True
            row = graph.successors(vertex)
            advanced = False
            while child_index < len(row):
                child = int(row[child_index])
                child_index += 1
                if indices[child] == -1:
                    work.append((vertex, child_index))
                    work.append((child, 0))
                    advanced = True
                    break
                if on_stack[child]:
                    lowlinks[vertex] = min(lowlinks[vertex], indices[child])
            if advanced:
                continue
            if lowlinks[vertex] == indices[vertex]:
                component: list[int] = []
                while True:
                    member = stack.pop()
                    on_stack[member] = False
                    component.append(member)
                    if member == vertex:
                        break
                components.append(component)
            if work:
                parent = work[-1][0]
                lowlinks[parent] = min(lowlinks[parent], lowlinks[vertex])
    return components


def pagerank(
    graph: Digraph,
    damping: float = 0.85,
    tolerance: float = 1e-9,
    max_iterations: int = 100,
) -> np.ndarray:
    """Power-iteration PageRank with uniform teleport and dangling handling.

    Returns scores normalized to sum to one.  This backs the PageRank index
    used by queries 1 and 3 of the paper's workload.
    """
    if not 0.0 < damping < 1.0:
        raise GraphError(f"damping must be in (0, 1), got {damping}")
    n = graph.num_vertices
    if n == 0:
        return np.zeros(0, dtype=np.float64)
    out_degrees = np.diff(graph.offsets).astype(np.float64)
    dangling = out_degrees == 0
    scores = np.full(n, 1.0 / n, dtype=np.float64)
    sources = np.repeat(np.arange(n, dtype=np.int64), np.diff(graph.offsets))
    targets = graph.targets
    for _ in range(max_iterations):
        contrib = np.zeros(n, dtype=np.float64)
        weights = scores[sources] / out_degrees[sources]
        np.add.at(contrib, targets, weights)
        dangling_mass = scores[dangling].sum() / n
        new_scores = (1.0 - damping) / n + damping * (contrib + dangling_mass)
        if np.abs(new_scores - scores).sum() < tolerance:
            scores = new_scores
            break
        scores = new_scores
    return scores / scores.sum()


def hits(
    graph: Digraph,
    transpose: Digraph,
    pages: Sequence[int],
    iterations: int = 25,
) -> tuple[dict[int, float], dict[int, float]]:
    """Kleinberg's HITS on the subgraph induced by ``pages``.

    Returns (authority, hub) score dictionaries keyed by original page id.
    Used by the Kleinberg-base-set query (paper query 3) follow-ups.
    """
    page_set = {int(p) for p in pages}
    order = sorted(page_set)
    position = {page: i for i, page in enumerate(order)}
    forward: list[list[int]] = [[] for _ in order]
    for page in order:
        for target in graph.successors(page):
            target = int(target)
            if target in page_set:
                forward[position[page]].append(position[target])
    k = len(order)
    authority = np.ones(k, dtype=np.float64)
    hub = np.ones(k, dtype=np.float64)
    for _ in range(iterations):
        new_authority = np.zeros(k, dtype=np.float64)
        for i, row in enumerate(forward):
            for j in row:
                new_authority[j] += hub[i]
        new_hub = np.zeros(k, dtype=np.float64)
        for i, row in enumerate(forward):
            for j in row:
                new_hub[i] += new_authority[j]
        norm_a = np.linalg.norm(new_authority) or 1.0
        norm_h = np.linalg.norm(new_hub) or 1.0
        authority = new_authority / norm_a
        hub = new_hub / norm_h
    return (
        {page: float(authority[position[page]]) for page in order},
        {page: float(hub[position[page]]) for page in order},
    )


def kleinberg_base_set(
    graph: Digraph, transpose: Digraph, root_set: Iterable[int]
) -> set[int]:
    """Root set plus out-neighborhood plus in-neighborhood (paper query 3)."""
    roots = {int(p) for p in root_set}
    base = set(roots)
    base |= out_neighborhood(graph, roots)
    base |= in_neighborhood(transpose, roots)
    return base


def degree_statistics(graph: Digraph) -> dict[str, float]:
    """Degree summary used by experiment reports (mean out-degree etc.)."""
    if graph.num_vertices == 0:
        return {"mean_out_degree": 0.0, "max_out_degree": 0.0, "max_in_degree": 0.0}
    out_degrees = np.diff(graph.offsets)
    in_degrees = np.bincount(graph.targets, minlength=graph.num_vertices)
    return {
        "mean_out_degree": float(out_degrees.mean()),
        "max_out_degree": float(out_degrees.max()),
        "max_in_degree": float(in_degrees.max()) if len(in_degrees) else 0.0,
    }
