"""repro - S-Node Web-graph representation (Raghavan & Garcia-Molina, ICDE 2003).

Top-level convenience surface; the subpackages hold the full API:

* :mod:`repro.webdata` - repositories and the synthetic Web generator.
* :mod:`repro.snode` - the S-Node build pipeline and store.
* :mod:`repro.baselines` - the comparison representations.
* :mod:`repro.index` / :mod:`repro.query` - indexes and complex queries.
* :mod:`repro.experiments` - drivers for every table/figure of the paper.
"""

from repro.baselines import (
    FlatFileRepresentation,
    GraphRepresentation,
    HuffmanRepresentation,
    Link3Representation,
    RelationalRepresentation,
    SNodeRepresentation,
)
from repro.index import PageRankIndex, TextIndex
from repro.query import QueryEngine
from repro.snode import BuildOptions, SNodeBuild, SNodeStore, build_snode
from repro.webdata import GeneratorConfig, Page, Repository, generate_web

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "generate_web",
    "GeneratorConfig",
    "Repository",
    "Page",
    "build_snode",
    "BuildOptions",
    "SNodeBuild",
    "SNodeStore",
    "GraphRepresentation",
    "SNodeRepresentation",
    "HuffmanRepresentation",
    "Link3Representation",
    "RelationalRepresentation",
    "FlatFileRepresentation",
    "TextIndex",
    "PageRankIndex",
    "QueryEngine",
]
