"""Exception hierarchy for the repro library.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything this package raises with a single handler while still
being able to distinguish sub-categories.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class CodecError(ReproError):
    """A bit-level codec was asked to encode/decode malformed input."""


class BitStreamError(CodecError):
    """Attempt to read past the end of a bit stream, or stream corruption."""


class GraphError(ReproError):
    """Invalid graph construction or access (e.g. vertex id out of range)."""


class PartitionError(ReproError):
    """A partition invariant was violated (overlap, missing pages, ...)."""


class StorageError(ReproError):
    """On-disk layout is missing, corrupt, or inconsistent with its manifest."""


class CorruptionError(StorageError):
    """A checksum-verified region failed its CRC check.

    Distinguished from plain :class:`StorageError` so callers can choose a
    degradation policy for detected bit rot (quarantine the region, keep
    serving) while still treating structural problems as fatal.
    """


class QueryError(ReproError):
    """A complex query was malformed or referenced unknown pages/domains."""


class BuildError(ReproError):
    """The S-Node build pipeline could not complete."""


class ReportError(ReproError):
    """A bench report is missing, malformed, or fails schema validation."""
