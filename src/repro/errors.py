"""Exception hierarchy for the repro library.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything this package raises with a single handler while still
being able to distinguish sub-categories.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class CodecError(ReproError):
    """A bit-level codec was asked to encode/decode malformed input."""


class BitStreamError(CodecError):
    """Attempt to read past the end of a bit stream, or stream corruption."""


class GraphError(ReproError):
    """Invalid graph construction or access (e.g. vertex id out of range)."""


class PartitionError(ReproError):
    """A partition invariant was violated (overlap, missing pages, ...)."""


class StorageError(ReproError):
    """On-disk layout is missing, corrupt, or inconsistent with its manifest."""


class CorruptionError(StorageError):
    """A checksum-verified region failed its CRC check.

    Distinguished from plain :class:`StorageError` so callers can choose a
    degradation policy for detected bit rot (quarantine the region, keep
    serving) while still treating structural problems as fatal.
    """


class BufferCapacityError(StorageError):
    """A buffer-pool resize asked for a budget below the pinned floor.

    Pinned entries (the supernode graph, B+tree meta pages) are resident
    for the lifetime of the store; a budget that cannot even cover them
    is an operator error, raised as a typed exception so sweeps can skip
    the infeasible point explicitly instead of silently evicting pins or
    driving the accounting negative.
    """


class EmptyHistogramError(ReproError):
    """A percentile was requested of a histogram with no observations.

    An empty distribution has no percentiles; silently returning 0 made
    a daemon that served nothing look like one serving in zero time.
    Callers that want a placeholder for display catch this and render
    one explicitly (serialized histograms emit 0.0 with ``count: 0`` so
    the reader can tell).
    """


class QueryError(ReproError):
    """A complex query was malformed or referenced unknown pages/domains."""


class ServeError(ReproError):
    """The graph query daemon or its client hit a protocol-level problem."""


class DeadlineError(ServeError):
    """A request's ``deadline_ms`` expired before it finished executing.

    Typed so the daemon can map it to the wire-level ``timeout`` reply
    (and count it separately from real failures): a deadline miss is the
    *client's* latency contract expiring, not a server fault — the work
    was shed or abandoned, never half-done.
    """


class BuildError(ReproError):
    """The S-Node build pipeline could not complete."""


class ReportError(ReproError):
    """A bench report is missing, malformed, or fails schema validation."""
