"""Command-line interface: ``repro <command>``.

Gives a repository operator the whole pipeline without writing Python:

* ``repro generate`` — synthesize a crawl and write it as a WebBase-style
  bulk stream;
* ``repro build``    — build an S-Node representation from a stream;
* ``repro verify``   — integrity-check a stored representation;
* ``repro stats``    — summarize a stored representation;
* ``repro neighbors``— print a page's out-links from a stored
  representation (by repository page id);
* ``repro experiment`` — run one of the paper's experiment drivers.

Every command prints human-readable output to stdout and exits non-zero
on failure, so the tool scripts cleanly.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.errors import ReproError


def _cmd_generate(arguments: argparse.Namespace) -> int:
    from repro.webdata.generator import GeneratorConfig, generate_web
    from repro.webdata.webbase import write_stream

    repository = generate_web(
        GeneratorConfig(num_pages=arguments.pages, seed=arguments.seed)
    )
    size = write_stream(repository, arguments.out)
    print(
        f"wrote {repository.num_pages} pages / {repository.num_links} links "
        f"({size} bytes) to {arguments.out}"
    )
    return 0


def _cmd_build(arguments: argparse.Namespace) -> int:
    from repro.snode.build import BuildOptions, build_snode
    from repro.webdata.webbase import read_repository

    repository = read_repository(arguments.stream, limit=arguments.limit)
    options = BuildOptions(transpose=arguments.transpose)
    build = build_snode(repository, arguments.out, options)
    direction = "WGT (backlinks)" if arguments.transpose else "WG"
    print(
        f"built {direction}: {build.model.num_supernodes} supernodes, "
        f"{build.model.num_superedges} superedges, "
        f"{build.bits_per_edge:.2f} bits/edge -> {arguments.out}"
    )
    build.store.close()
    return 0


def _cmd_verify(arguments: argparse.Namespace) -> int:
    from repro.snode.verify import verify_snode

    report = verify_snode(arguments.root, decode_payloads=not arguments.fast)
    if report.ok:
        print(f"OK ({report.graphs_checked} graphs checked)")
        return 0
    for problem in report.problems:
        print(f"PROBLEM: {problem}")
    return 1


def _cmd_stats(arguments: argparse.Namespace) -> int:
    manifest_path = Path(arguments.root) / "manifest.json"
    if not manifest_path.exists():
        print(f"no S-Node manifest under {arguments.root}", file=sys.stderr)
        return 1
    manifest = json.loads(manifest_path.read_text())
    for key in (
        "num_pages",
        "num_supernodes",
        "num_superedges",
        "positive_superedges",
        "negative_superedges",
        "payload_bytes",
        "intranode_bytes",
        "superedge_bytes",
        "supernode_graph_bytes",
    ):
        print(f"{key:24s} {manifest.get(key)}")
    return 0


def _cmd_neighbors(arguments: argparse.Namespace) -> int:
    from repro.snode.store import SNodeStore

    with SNodeStore(arguments.root) as store:
        new_to_old = store.new_to_old
        old_to_new = {old: new for new, old in enumerate(new_to_old)}
        new_page = old_to_new.get(arguments.page)
        if new_page is None:
            print(f"page {arguments.page} not in this representation", file=sys.stderr)
            return 1
        row = sorted(new_to_old[t] for t in store.out_neighbors(new_page))
        print(" ".join(str(p) for p in row))
    return 0


def _cmd_experiment(arguments: argparse.Namespace) -> int:
    import importlib

    module_names = {
        "scalability",
        "compression",
        "access_time",
        "queries",
        "buffer_sweep",
        "ablations",
    }
    if arguments.name not in module_names:
        print(
            f"unknown experiment {arguments.name!r}; choose from "
            f"{sorted(module_names)}",
            file=sys.stderr,
        )
        return 1
    module = importlib.import_module(f"repro.experiments.{arguments.name}")
    saved_argv = sys.argv
    try:
        sys.argv = [f"repro experiment {arguments.name}", *arguments.args]
        module.main()
    finally:
        sys.argv = saved_argv
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI's argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro", description="S-Node Web-graph representation toolkit"
    )
    commands = parser.add_subparsers(dest="command", required=True)

    generate = commands.add_parser("generate", help="synthesize a crawl stream")
    generate.add_argument("--pages", type=int, default=10_000)
    generate.add_argument("--seed", type=int, default=2003)
    generate.add_argument("--out", required=True)
    generate.set_defaults(handler=_cmd_generate)

    build = commands.add_parser("build", help="build an S-Node representation")
    build.add_argument("--stream", required=True, help="WebBase stream file")
    build.add_argument("--out", required=True, help="output directory")
    build.add_argument("--limit", type=int, default=None, help="crawl prefix")
    build.add_argument("--transpose", action="store_true", help="build WGT")
    build.set_defaults(handler=_cmd_build)

    verify = commands.add_parser("verify", help="integrity-check a representation")
    verify.add_argument("root")
    verify.add_argument(
        "--fast", action="store_true", help="skip payload decoding"
    )
    verify.set_defaults(handler=_cmd_verify)

    stats = commands.add_parser("stats", help="summarize a representation")
    stats.add_argument("root")
    stats.set_defaults(handler=_cmd_stats)

    neighbors = commands.add_parser("neighbors", help="print a page's out-links")
    neighbors.add_argument("root")
    neighbors.add_argument("page", type=int)
    neighbors.set_defaults(handler=_cmd_neighbors)

    experiment = commands.add_parser("experiment", help="run a paper experiment")
    experiment.add_argument("name")
    experiment.add_argument("args", nargs=argparse.REMAINDER)
    experiment.set_defaults(handler=_cmd_experiment)

    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    parser = build_parser()
    arguments = parser.parse_args(argv)
    try:
        return arguments.handler(arguments)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
