"""Command-line interface: ``repro <command>``.

Gives a repository operator the whole pipeline without writing Python:

* ``repro generate`` — synthesize a crawl and write it as a WebBase-style
  bulk stream;
* ``repro build``    — build an S-Node representation from a stream;
* ``repro verify``   — integrity-check a stored representation;
* ``repro fsck``     — check any build directory (atomic-commit state,
  manifest file table, per-region checksums); ``--repair`` quarantines
  corrupt S-Node regions for graceful degradation;
* ``repro stats``    — summarize a stored representation;
* ``repro neighbors``— print a page's out-links from a stored
  representation (by repository page id);
* ``repro experiment`` — run one of the paper's experiment drivers
  (every driver accepts ``--json [DIR]`` to write a versioned
  ``BENCH_<experiment>.json`` bench report, and the shared
  ``--trace/--trace-out/--folded/--quiet`` span flags);
* ``repro profile`` — run a workload under the access-pattern profiler
  (Mattson miss-ratio curves, seek-distance profiles, hot-set heatmaps);
* ``repro bench-diff`` — compare two bench reports and flag regressions
  (``--ignore`` skips machine-dependent metrics).

Every command prints human-readable output to stdout and exits non-zero
on failure, so the tool scripts cleanly.  Long-running builds report
throttled progress to stderr (suppress with ``--quiet``), and
``repro build --trace`` prints the span tree attributing build time to
pipeline phases.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.errors import ReproError


def _cmd_generate(arguments: argparse.Namespace) -> int:
    from repro.webdata.generator import GeneratorConfig, generate_web
    from repro.webdata.webbase import write_stream

    repository = generate_web(
        GeneratorConfig(num_pages=arguments.pages, seed=arguments.seed)
    )
    size = write_stream(repository, arguments.out)
    print(
        f"wrote {repository.num_pages} pages / {repository.num_links} links "
        f"({size} bytes) to {arguments.out}"
    )
    return 0


def _cmd_build(arguments: argparse.Namespace) -> int:
    from repro.obs.progress import ProgressReporter
    from repro.obs.tracing import Tracer, activated
    from repro.snode.build import BuildOptions, build_snode
    from repro.webdata.webbase import read_repository

    progress = None if arguments.quiet else ProgressReporter(label="build")
    tracer = Tracer()
    with activated(tracer):
        with tracer.span("build.stream", path=str(arguments.stream)):
            repository = read_repository(
                arguments.stream, limit=arguments.limit, progress=progress
            )
        options = BuildOptions(transpose=arguments.transpose)
        build = build_snode(repository, arguments.out, options, progress=progress)
    direction = "WGT (backlinks)" if arguments.transpose else "WG"
    print(
        f"built {direction}: {build.model.num_supernodes} supernodes, "
        f"{build.model.num_superedges} superedges, "
        f"{build.bits_per_edge:.2f} bits/edge -> {arguments.out}"
    )
    if arguments.trace:
        print("build trace (span-attributed phases):", file=sys.stderr)
        print(tracer.render(max_depth=arguments.trace_depth), file=sys.stderr)
    if arguments.trace_out:
        tracer.write_jsonl(arguments.trace_out)
        print(f"trace spans written to {arguments.trace_out}", file=sys.stderr)
    if arguments.folded:
        tracer.write_folded(arguments.folded)
        print(f"folded stacks written to {arguments.folded}", file=sys.stderr)
    build.store.close()
    return 0


def _cmd_verify(arguments: argparse.Namespace) -> int:
    from repro.snode.verify import verify_snode

    report = verify_snode(arguments.root, decode_payloads=not arguments.fast)
    if report.ok:
        print(f"OK ({report.graphs_checked} graphs checked)")
        return 0
    for problem in report.problems:
        print(f"PROBLEM: {problem}")
    return 1


def _size_breakdown(root: Path, manifest: dict) -> dict:
    """On-disk bytes per component of a stored representation.

    Combines the manifest's logical payload accounting (intranode vs
    superedge bytes, which share the index files) with actual file sizes
    for every auxiliary structure, so an operator can see where bytes go.
    """
    def file_size(name: str) -> int:
        path = root / name
        return path.stat().st_size if path.exists() else 0

    payload_files = manifest.get("index_files", [])
    payload_disk = sum(file_size(name) for name in payload_files)
    breakdown = {
        "payload_files": {
            "files": len(payload_files),
            "disk_bytes": payload_disk,
            "intranode_bytes": manifest.get("intranode_bytes", 0),
            "superedge_bytes": manifest.get("superedge_bytes", 0),
        },
        "supernode_graph_bytes": file_size("supernode.bin"),
        "pointer_bytes": file_size("pointers.bin"),
        "pageid_index_bytes": file_size("pageid.bin"),
        "newid_map_bytes": file_size("newid.bin"),
        "domain_index_bytes": file_size("domain.json"),
        "manifest_bytes": file_size("manifest.json"),
    }
    breakdown["total_disk_bytes"] = (
        payload_disk
        + breakdown["supernode_graph_bytes"]
        + breakdown["pointer_bytes"]
        + breakdown["pageid_index_bytes"]
        + breakdown["newid_map_bytes"]
        + breakdown["domain_index_bytes"]
        + breakdown["manifest_bytes"]
    )
    return breakdown


_STATS_MANIFEST_KEYS = (
    "num_pages",
    "num_supernodes",
    "num_superedges",
    "positive_superedges",
    "negative_superedges",
    "payload_bytes",
    "intranode_bytes",
    "superedge_bytes",
    "supernode_graph_bytes",
)


def _cmd_stats(arguments: argparse.Namespace) -> int:
    root = Path(arguments.root)
    manifest_path = root / "manifest.json"
    if not manifest_path.exists():
        print(f"no S-Node manifest under {arguments.root}", file=sys.stderr)
        return 1
    manifest = json.loads(manifest_path.read_text())
    breakdown = _size_breakdown(root, manifest)
    if arguments.json:
        print(
            json.dumps(
                {
                    "manifest": {
                        key: manifest.get(key) for key in _STATS_MANIFEST_KEYS
                    },
                    "on_disk": breakdown,
                },
                indent=2,
                sort_keys=True,
            )
        )
        return 0
    for key in _STATS_MANIFEST_KEYS:
        print(f"{key:24s} {manifest.get(key)}")
    print("\non-disk size breakdown:")
    payload = breakdown["payload_files"]
    total = breakdown["total_disk_bytes"]

    def line(label: str, size: int) -> None:
        share = 100.0 * size / total if total else 0.0
        print(f"  {label:22s} {size:>12d} bytes ({share:5.1f}%)")

    line(f"payload x{payload['files']}", payload["disk_bytes"])
    line("  - intranode", payload["intranode_bytes"])
    line("  - superedge", payload["superedge_bytes"])
    line("supernode graph", breakdown["supernode_graph_bytes"])
    line("pointers", breakdown["pointer_bytes"])
    line("pageid index", breakdown["pageid_index_bytes"])
    line("newid map", breakdown["newid_map_bytes"])
    line("domain index", breakdown["domain_index_bytes"])
    line("manifest", breakdown["manifest_bytes"])
    print(f"  {'total':22s} {total:>12d} bytes")
    return 0


def _cmd_bench_validate(arguments: argparse.Namespace) -> int:
    from repro.errors import ReportError
    from repro.obs.report import load_report

    failed = False
    for name in arguments.files:
        try:
            load_report(name)
            print(f"{name}: ok")
        except ReportError as exc:
            print(f"{name}: INVALID — {exc}")
            failed = True
    return 1 if failed else 0


def _cmd_bench_diff(arguments: argparse.Namespace) -> int:
    from repro.obs.report import diff_reports, load_report

    diff = diff_reports(
        load_report(arguments.old),
        load_report(arguments.new),
        threshold=arguments.threshold,
        ignore=tuple(arguments.ignore),
    )
    print(diff.render())
    return 1 if diff.regressions else 0


def _cmd_fsck(arguments: argparse.Namespace) -> int:
    from repro.storage.fsck import fsck

    report = fsck(arguments.root, repair=arguments.repair)
    if arguments.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(report.render())
    return 0 if report.ok else 1


def _cmd_neighbors(arguments: argparse.Namespace) -> int:
    from repro.snode.store import SNodeStore

    with SNodeStore(arguments.root) as store:
        new_to_old = store.new_to_old
        old_to_new = {old: new for new, old in enumerate(new_to_old)}
        new_page = old_to_new.get(arguments.page)
        if new_page is None:
            print(f"page {arguments.page} not in this representation", file=sys.stderr)
            return 1
        row = sorted(new_to_old[t] for t in store.out_neighbors(new_page))
        print(" ".join(str(p) for p in row))
    return 0


def _cmd_profile(arguments: argparse.Namespace) -> int:
    from repro.experiments import profile
    from repro.experiments.harness import emit_report, trace_session

    with trace_session(arguments, "profile") as tracer:
        result = profile.run(
            size=arguments.size,
            scheme=arguments.scheme,
            workload=arguments.workload,
            capacities_kb=tuple(arguments.capacities_kb),
            trials=arguments.trials,
        )
    if not arguments.quiet:
        print(profile.render(result, top=arguments.top))
    if arguments.events_out:
        profile.write_events(result, arguments.events_out)
        print(f"access events written to {arguments.events_out}", file=sys.stderr)
    emit_report(
        arguments.json_dir,
        "profile",
        profile.to_results(result, arguments.capacities_kb, top=arguments.top),
        params={
            "scheme": arguments.scheme,
            "workload": arguments.workload,
            "trials": arguments.trials,
            "capacities_kb": list(arguments.capacities_kb),
        },
        spans=tracer.summary_dict() if tracer else None,
    )
    return 0


def _cmd_experiment(arguments: argparse.Namespace) -> int:
    import importlib

    module_names = {
        "scalability",
        "compression",
        "access_time",
        "queries",
        "buffer_sweep",
        "ablations",
        "profile",
    }
    if arguments.name not in module_names:
        print(
            f"unknown experiment {arguments.name!r}; choose from "
            f"{sorted(module_names)}",
            file=sys.stderr,
        )
        return 1
    module = importlib.import_module(f"repro.experiments.{arguments.name}")
    saved_argv = sys.argv
    try:
        sys.argv = [f"repro experiment {arguments.name}", *arguments.args]
        module.main()
    finally:
        sys.argv = saved_argv
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI's argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro", description="S-Node Web-graph representation toolkit"
    )
    commands = parser.add_subparsers(dest="command", required=True)

    generate = commands.add_parser("generate", help="synthesize a crawl stream")
    generate.add_argument("--pages", type=int, default=10_000)
    generate.add_argument("--seed", type=int, default=2003)
    generate.add_argument("--out", required=True)
    generate.set_defaults(handler=_cmd_generate)

    build = commands.add_parser("build", help="build an S-Node representation")
    build.add_argument("--stream", required=True, help="WebBase stream file")
    build.add_argument("--out", required=True, help="output directory")
    build.add_argument("--limit", type=int, default=None, help="crawl prefix")
    build.add_argument("--transpose", action="store_true", help="build WGT")
    build.add_argument(
        "--trace",
        action="store_true",
        help="print the span tree attributing build time to phases (stderr)",
    )
    build.add_argument(
        "--trace-out",
        default=None,
        metavar="FILE",
        help="write the full span tree as JSON lines to FILE",
    )
    build.add_argument(
        "--trace-depth",
        type=int,
        default=2,
        help="maximum span depth shown by --trace (default 2)",
    )
    build.add_argument(
        "--folded",
        default=None,
        metavar="FILE",
        help="write flamegraph folded stacks (span path + self time) to FILE",
    )
    build.add_argument(
        "--quiet", action="store_true", help="suppress stderr progress reporting"
    )
    build.set_defaults(handler=_cmd_build)

    verify = commands.add_parser("verify", help="integrity-check a representation")
    verify.add_argument("root")
    verify.add_argument(
        "--fast", action="store_true", help="skip payload decoding"
    )
    verify.set_defaults(handler=_cmd_verify)

    fsck = commands.add_parser(
        "fsck",
        help="check a build directory: atomic-commit state, manifest file "
        "table, per-region checksums (any scheme)",
    )
    fsck.add_argument("root")
    fsck.add_argument(
        "--repair",
        action="store_true",
        help="quarantine corrupt S-Node regions into quarantine.json so "
        "degrade-mode stores keep serving the rest",
    )
    fsck.add_argument(
        "--json",
        action="store_true",
        help="emit the machine-readable report instead of text",
    )
    fsck.set_defaults(handler=_cmd_fsck)

    stats = commands.add_parser("stats", help="summarize a representation")
    stats.add_argument("root")
    stats.add_argument(
        "--json",
        action="store_true",
        help="emit machine-readable JSON instead of the text table",
    )
    stats.set_defaults(handler=_cmd_stats)

    neighbors = commands.add_parser("neighbors", help="print a page's out-links")
    neighbors.add_argument("root")
    neighbors.add_argument("page", type=int)
    neighbors.set_defaults(handler=_cmd_neighbors)

    profile = commands.add_parser(
        "profile",
        help="run a workload under the access-pattern profiler "
        "(miss-ratio curves, seek profile, hot-set heatmap)",
    )
    profile.add_argument("--size", type=int, default=None, help="dataset pages")
    profile.add_argument(
        "--scheme",
        choices=("flat-file", "relational", "link3", "s-node"),
        default="s-node",
    )
    profile.add_argument(
        "--workload", choices=("queries", "build"), default="queries"
    )
    profile.add_argument(
        "--capacities-kb",
        type=int,
        nargs="+",
        default=[16, 32, 64, 128, 256],
        metavar="KB",
        help="buffer capacities (KiB) for the measured validation sweep",
    )
    profile.add_argument("--trials", type=int, default=2)
    profile.add_argument(
        "--top", type=int, default=10, help="top-k hot entries shown"
    )
    profile.add_argument(
        "--events-out",
        default=None,
        metavar="FILE",
        help="write the raw access-event trace as JSON lines to FILE",
    )
    profile.add_argument(
        "--json",
        nargs="?",
        const=".",
        default=None,
        metavar="DIR",
        dest="json_dir",
        help="write a machine-readable BENCH_profile.json report "
        "(optionally into DIR)",
    )
    profile.add_argument(
        "--trace",
        action="store_true",
        help="print the span tree attributing profiler time to phases (stderr)",
    )
    profile.add_argument(
        "--trace-out", default=None, metavar="FILE",
        help="write the full span tree as JSON lines to FILE",
    )
    profile.add_argument(
        "--trace-depth", type=int, default=2,
        help="maximum span depth shown by --trace (default 2)",
    )
    profile.add_argument(
        "--folded", default=None, metavar="FILE",
        help="write flamegraph folded stacks (span path + self time) to FILE",
    )
    profile.add_argument(
        "--quiet", action="store_true",
        help="suppress the human-readable report on stdout",
    )
    profile.set_defaults(handler=_cmd_profile)

    experiment = commands.add_parser("experiment", help="run a paper experiment")
    experiment.add_argument("name")
    experiment.add_argument("args", nargs=argparse.REMAINDER)
    experiment.set_defaults(handler=_cmd_experiment)

    bench_validate = commands.add_parser(
        "bench-validate", help="schema-check BENCH_*.json reports"
    )
    bench_validate.add_argument("files", nargs="+")
    bench_validate.set_defaults(handler=_cmd_bench_validate)

    bench_diff = commands.add_parser(
        "bench-diff", help="compare two BENCH_*.json reports for regressions"
    )
    bench_diff.add_argument("old", help="baseline bench report")
    bench_diff.add_argument("new", help="candidate bench report")
    bench_diff.add_argument(
        "--threshold",
        type=float,
        default=0.2,
        help="relative cost increase flagged as a regression (default 0.2)",
    )
    bench_diff.add_argument(
        "--ignore",
        action="append",
        default=[],
        metavar="SUBSTRING",
        help="skip cost paths containing SUBSTRING (repeatable; e.g. "
        "wall_ms to exclude machine-dependent wall-clock metrics)",
    )
    bench_diff.set_defaults(handler=_cmd_bench_diff)

    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    parser = build_parser()
    arguments = parser.parse_args(argv)
    try:
        return arguments.handler(arguments)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
