"""A byte-budgeted LRU cache.

Shared by the S-Node buffer manager (decoded intranode/superedge graphs)
and the mini relational database's buffer pool (heap/index pages).  Entries
carry an explicit size in bytes; insertion evicts least-recently-used
entries until the budget is respected.  Eviction callbacks let owners log
unload events, which the paper's section 4.3 instrumentation relies on.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Callable, Hashable
from typing import Generic, TypeVar

K = TypeVar("K", bound=Hashable)
V = TypeVar("V")


class LRUCache(Generic[K, V]):
    """LRU cache keyed on hashables with per-entry byte sizes."""

    def __init__(
        self,
        capacity_bytes: int,
        on_evict: Callable[[K, V], None] | None = None,
    ) -> None:
        if capacity_bytes < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity_bytes}")
        self._capacity = capacity_bytes
        self._entries: OrderedDict[K, tuple[V, int]] = OrderedDict()
        self._used = 0
        self._on_evict = on_evict
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: K) -> bool:
        return key in self._entries

    @property
    def capacity_bytes(self) -> int:
        """Configured byte budget."""
        return self._capacity

    @property
    def used_bytes(self) -> int:
        """Bytes currently held."""
        return self._used

    def get(self, key: K) -> V | None:
        """Return the cached value and mark it most-recently-used."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry[0]

    def put(self, key: K, value: V, size_bytes: int) -> None:
        """Insert/replace ``key``; evicts LRU entries to fit the budget.

        An entry larger than the whole budget is admitted alone (the cache
        would otherwise be useless for it); it is evicted by the next put.
        """
        if size_bytes < 0:
            raise ValueError(f"size must be >= 0, got {size_bytes}")
        if key in self._entries:
            self._used -= self._entries.pop(key)[1]
        self._entries[key] = (value, size_bytes)
        self._used += size_bytes
        self._shrink(keep=key)

    def _shrink(self, keep: K) -> None:
        while self._used > self._capacity and len(self._entries) > 1:
            old_key, (old_value, old_size) = self._entries.popitem(last=False)
            if old_key == keep and self._entries:
                # Never evict the entry we just inserted while others remain.
                self._entries[old_key] = (old_value, old_size)
                self._entries.move_to_end(old_key, last=False)
                old_key, (old_value, old_size) = self._entries.popitem(last=False)
            self._used -= old_size
            self.evictions += 1
            if self._on_evict is not None:
                self._on_evict(old_key, old_value)

    def pop(self, key: K) -> V | None:
        """Remove and return ``key`` without firing the eviction callback."""
        entry = self._entries.pop(key, None)
        if entry is None:
            return None
        self._used -= entry[1]
        return entry[0]

    def clear(self) -> None:
        """Drop every entry, firing eviction callbacks."""
        while self._entries:
            key, (value, size) = self._entries.popitem(last=False)
            self._used -= size
            self.evictions += 1
            if self._on_evict is not None:
                self._on_evict(key, value)

    def keys(self) -> list[K]:
        """Keys ordered least- to most-recently used."""
        return list(self._entries)

    def stats(self) -> dict[str, int]:
        """Hit/miss/eviction counters plus occupancy."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "entries": len(self._entries),
            "used_bytes": self._used,
            "capacity_bytes": self._capacity,
        }
