"""Integer codes used throughout the compressed representations.

The paper's encoders lean on a small toolbox of classical codes
("Managing Gigabytes", Witten/Moffat/Bell):

* unary            - tiny values (flags, short runs)
* Elias gamma      - gap-encoded adjacency lists (the workhorse)
* Elias delta      - larger gaps / lengths
* Golomb/Rice      - runs with a known density (RLE bit vectors)
* variable-byte    - byte-aligned offsets in index files
* nybble           - the 4-bit-at-a-time code used by the Link3 scheme
* minimal binary   - values with a known exclusive upper bound

All codes here operate on *non-negative* integers.  Gamma and delta cannot
represent 0 natively, so the encode/decode pair applies a +1/-1 shift: the
caller works with values >= 0.
"""

from __future__ import annotations

from repro.errors import CodecError
from repro.util.bitio import BitReader, BitWriter

# ---------------------------------------------------------------------------
# unary
# ---------------------------------------------------------------------------


def encode_unary(writer: BitWriter, value: int) -> None:
    """Write ``value`` as a unary code (value zero bits then a one bit)."""
    if value < 0:
        raise CodecError(f"unary cannot encode {value}")
    writer.write_unary(value)


def decode_unary(reader: BitReader) -> int:
    """Read a unary code."""
    return reader.read_unary()


# ---------------------------------------------------------------------------
# Elias gamma
# ---------------------------------------------------------------------------


def encode_gamma(writer: BitWriter, value: int) -> None:
    """Write ``value >= 0`` as an Elias gamma code (internally shifted +1)."""
    if value < 0:
        raise CodecError(f"gamma cannot encode {value}")
    shifted = value + 1
    width = shifted.bit_length()
    writer.write_unary(width - 1)
    # The leading 1 bit is implied by the unary prefix; write the rest.
    writer.write_bits(shifted - (1 << (width - 1)), width - 1)


def decode_gamma(reader: BitReader) -> int:
    """Read an Elias gamma code written by :func:`encode_gamma`."""
    width = reader.read_unary()
    rest = reader.read_bits(width) if width else 0
    return (1 << width) + rest - 1


def gamma_cost(value: int) -> int:
    """Number of bits :func:`encode_gamma` uses for ``value`` (>= 0)."""
    if value < 0:
        raise CodecError(f"gamma cannot encode {value}")
    return 2 * (value + 1).bit_length() - 1


# ---------------------------------------------------------------------------
# Elias delta
# ---------------------------------------------------------------------------


def encode_delta(writer: BitWriter, value: int) -> None:
    """Write ``value >= 0`` as an Elias delta code (internally shifted +1)."""
    if value < 0:
        raise CodecError(f"delta cannot encode {value}")
    shifted = value + 1
    width = shifted.bit_length()
    encode_gamma(writer, width - 1)
    writer.write_bits(shifted - (1 << (width - 1)), width - 1)


def decode_delta(reader: BitReader) -> int:
    """Read an Elias delta code written by :func:`encode_delta`."""
    width = decode_gamma(reader)
    rest = reader.read_bits(width) if width else 0
    return (1 << width) + rest - 1


def delta_cost(value: int) -> int:
    """Number of bits :func:`encode_delta` uses for ``value`` (>= 0)."""
    if value < 0:
        raise CodecError(f"delta cannot encode {value}")
    width = (value + 1).bit_length()
    return gamma_cost(width - 1) + width - 1


# ---------------------------------------------------------------------------
# Golomb / Rice
# ---------------------------------------------------------------------------


def encode_golomb(writer: BitWriter, value: int, modulus: int) -> None:
    """Write ``value >= 0`` with Golomb parameter ``modulus >= 1``."""
    if value < 0:
        raise CodecError(f"golomb cannot encode {value}")
    if modulus < 1:
        raise CodecError(f"golomb modulus must be >= 1, got {modulus}")
    quotient, remainder = divmod(value, modulus)
    writer.write_unary(quotient)
    encode_minimal_binary(writer, remainder, modulus)


def decode_golomb(reader: BitReader, modulus: int) -> int:
    """Read a Golomb code with parameter ``modulus``."""
    if modulus < 1:
        raise CodecError(f"golomb modulus must be >= 1, got {modulus}")
    quotient = reader.read_unary()
    remainder = decode_minimal_binary(reader, modulus)
    return quotient * modulus + remainder


def golomb_parameter(density: float) -> int:
    """Choose the Golomb modulus for gaps with Bernoulli density ``density``.

    Classic rule: b ~= 0.69 * mean_gap.  Clamped to >= 1.
    """
    if not 0.0 < density < 1.0:
        return 1
    return max(1, int(round(0.69 / density)))


# ---------------------------------------------------------------------------
# minimal binary (truncated binary)
# ---------------------------------------------------------------------------


def encode_minimal_binary(writer: BitWriter, value: int, bound: int) -> None:
    """Write ``0 <= value < bound`` using ceil(log2 bound) or one fewer bits."""
    if bound < 1:
        raise CodecError(f"minimal binary bound must be >= 1, got {bound}")
    if not 0 <= value < bound:
        raise CodecError(f"value {value} outside [0, {bound})")
    if bound == 1:
        return  # zero bits needed: the only possible value is 0
    width = (bound - 1).bit_length()
    cutoff = (1 << width) - bound
    if value < cutoff:
        writer.write_bits(value, width - 1)
    else:
        writer.write_bits(value + cutoff, width)


def decode_minimal_binary(reader: BitReader, bound: int) -> int:
    """Read a value written with :func:`encode_minimal_binary`."""
    if bound < 1:
        raise CodecError(f"minimal binary bound must be >= 1, got {bound}")
    if bound == 1:
        return 0
    width = (bound - 1).bit_length()
    cutoff = (1 << width) - bound
    value = reader.read_bits(width - 1) if width > 1 else 0
    if value < cutoff:
        return value
    value = (value << 1) | reader.read_bit()
    return value - cutoff


# ---------------------------------------------------------------------------
# variable-byte (byte-aligned, used for file offsets)
# ---------------------------------------------------------------------------


def encode_vbyte(value: int) -> bytes:
    """Encode ``value >= 0`` into a little-endian 7-bit-per-byte varint."""
    if value < 0:
        raise CodecError(f"vbyte cannot encode {value}")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def decode_vbyte(data: bytes, offset: int = 0) -> tuple[int, int]:
    """Decode a varint from ``data[offset:]``; returns (value, next_offset)."""
    value = 0
    shift = 0
    pos = offset
    while True:
        if pos >= len(data):
            raise CodecError("truncated vbyte")
        byte = data[pos]
        pos += 1
        value |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return value, pos
        shift += 7


# ---------------------------------------------------------------------------
# nybble code (Link3's 4-bit groups: 3 data bits + 1 continuation bit)
# ---------------------------------------------------------------------------


def encode_nibble(writer: BitWriter, value: int) -> None:
    """Write ``value >= 0`` in 4-bit groups, 3 data bits + continuation bit.

    This is the code the Connectivity Server's Link3 database uses for its
    gap and counter fields (Randall et al., DCC 2002).
    """
    if value < 0:
        raise CodecError(f"nibble cannot encode {value}")
    groups = [value & 0b111]
    value >>= 3
    while value:
        groups.append(value & 0b111)
        value >>= 3
    for index in range(len(groups) - 1, 0, -1):
        writer.write_bits(groups[index], 3)
        writer.write_bit(1)  # continuation
    writer.write_bits(groups[0], 3)
    writer.write_bit(0)  # terminator


def decode_nibble(reader: BitReader) -> int:
    """Read a nybble code written by :func:`encode_nibble`."""
    value = 0
    while True:
        group = reader.read_bits(3)
        more = reader.read_bit()
        value = (value << 3) | group
        if not more:
            return value


def nibble_cost(value: int) -> int:
    """Number of bits :func:`encode_nibble` uses for ``value`` (>= 0)."""
    if value < 0:
        raise CodecError(f"nibble cannot encode {value}")
    groups = 1
    value >>= 3
    while value:
        groups += 1
        value >>= 3
    return 4 * groups
