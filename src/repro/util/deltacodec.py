"""Reference + deletion-bitvector + additions delta codec.

The Connectivity Server's Link3 database (Randall et al., DCC 2002)
delta-encodes an adjacency row against a nearby *reference* row as

* a **deletion bit vector** over the reference (1 = drop this entry), and
* the **added entries**, nybble-coded as gaps — the first relative to the
  source id (zig-zag signed, the row may start before its source), the
  rest as ascending gaps minus one.

"Tight and simple Web graph compression" (Grabowski & Bieniecki) uses the
same idiom.  It started in this repo as a per-list compression trick
inside ``baselines/link3.py``; the write-ahead log and delta overlay
reuse the identical encoding for edge-mutation records, so the helpers
live here.  ``link3.py`` is re-pointed at these functions — the encoded
output is byte-identical to the pre-extraction scheme (covered by the
codec round-trip tests and the committed compression baselines).
"""

from __future__ import annotations

from repro.util.bitio import BitReader, BitWriter
from repro.util.varint import decode_nibble, encode_nibble


def zigzag(value: int) -> int:
    """Map a signed int to an unsigned one (0,-1,1,-2,... -> 0,1,2,3,...)."""
    return (value << 1) ^ (value >> 63) if value >= 0 else ((-value) << 1) - 1


def unzigzag(value: int) -> int:
    """Inverse of :func:`zigzag`."""
    return (value >> 1) if (value & 1) == 0 else -((value + 1) >> 1)


def encode_gap_row(writer: BitWriter, source: int, row: list[int]) -> None:
    """Write a sorted id row as nybble-coded gaps anchored at ``source``.

    Layout: count, zig-zag(first - source), then ascending gaps minus one.
    This is Link3's "plain row" / "added entries" encoding, verbatim.
    """
    encode_nibble(writer, len(row))
    previous = None
    for target in row:
        if previous is None:
            encode_nibble(writer, zigzag(target - source))
        else:
            encode_nibble(writer, target - previous - 1)
        previous = target


def decode_gap_row(reader: BitReader, source: int) -> list[int]:
    """Read a row written by :func:`encode_gap_row`."""
    count = decode_nibble(reader)
    row: list[int] = []
    previous = None
    for _ in range(count):
        if previous is None:
            previous = source + unzigzag(decode_nibble(reader))
        else:
            previous = previous + 1 + decode_nibble(reader)
        row.append(previous)
    return row


def delta_against(reference: list[int], row: list[int]) -> tuple[list[int], list[int]]:
    """Split ``row`` into (deletion bits over ``reference``, additions).

    ``deletions[i]`` is 1 when ``reference[i]`` is absent from ``row``;
    additions are the row entries not kept from the reference, in order.
    """
    row_set = set(row)
    deletions = [0 if value in row_set else 1 for value in reference]
    kept = {
        value for value, deleted in zip(reference, deletions) if not deleted
    }
    additions = [value for value in row if value not in kept]
    return deletions, additions


def encode_delta_row(
    writer: BitWriter,
    source: int,
    deletions: list[int],
    additions: list[int],
) -> None:
    """Write the deletion bit vector then the additions gap row."""
    for bit in deletions:
        writer.write_bit(bit)
    encode_gap_row(writer, source, additions)


def decode_delta_row(
    reader: BitReader, source: int, reference: list[int]
) -> tuple[list[int], list[int]]:
    """Read (deletions, additions) written by :func:`encode_delta_row`.

    The reference row fixes the deletion vector's length, exactly as in
    Link3's row decoder.
    """
    deletions = [reader.read_bit() for _ in reference]
    additions = decode_gap_row(reader, source)
    return deletions, additions


def apply_delta(
    reference: list[int], deletions: list[int], additions: list[int]
) -> list[int]:
    """Merge a decoded delta back into a sorted row.

    ``sorted((kept reference entries) | additions)`` — the same merge the
    Link3 row-chain decoder and the serve-time delta overlay perform.
    """
    kept = [
        value for value, deleted in zip(reference, deletions) if not deleted
    ]
    return sorted(set(kept) | set(additions))
