"""MSB-first bit stream writer and reader.

Every compressed structure in this library (Huffman-coded supernode graph,
reference-encoded intranode/superedge graphs, RLE bit vectors) is serialized
through these two classes.  Bits are packed most-significant-bit first, the
conventional order for prefix codes, so that a canonical Huffman decoder can
consume the stream by peeking fixed-width windows.
"""

from __future__ import annotations

from repro.errors import BitStreamError

_BYTE_BITS = 8


class BitWriter:
    """Accumulates bits MSB-first and yields the packed ``bytes``.

    Example
    -------
    >>> w = BitWriter()
    >>> w.write_bit(1)
    >>> w.write_bits(0b101, 3)
    >>> w.to_bytes()[0] >> 4
    13
    """

    def __init__(self) -> None:
        self._buffer = bytearray()
        self._current = 0  # bits accumulated into the in-progress byte
        self._filled = 0  # number of valid bits in ``_current``

    def __len__(self) -> int:
        """Total number of bits written so far."""
        return len(self._buffer) * _BYTE_BITS + self._filled

    @property
    def bit_length(self) -> int:
        """Total number of bits written so far (alias of ``len``)."""
        return len(self)

    def write_bit(self, bit: int) -> None:
        """Append a single bit (any truthy value counts as 1)."""
        self._current = (self._current << 1) | (1 if bit else 0)
        self._filled += 1
        if self._filled == _BYTE_BITS:
            self._buffer.append(self._current)
            self._current = 0
            self._filled = 0

    def write_bits(self, value: int, width: int) -> None:
        """Append ``width`` bits holding ``value`` (MSB first).

        ``value`` must fit in ``width`` bits and be non-negative.
        """
        if width < 0:
            raise BitStreamError(f"negative width {width}")
        if value < 0 or (width < value.bit_length()):
            raise BitStreamError(f"value {value} does not fit in {width} bits")
        # Fast path: flush whole bytes when the write is byte-aligned.
        while width >= _BYTE_BITS and self._filled == 0:
            width -= _BYTE_BITS
            self._buffer.append((value >> width) & 0xFF)
        for shift in range(width - 1, -1, -1):
            self.write_bit((value >> shift) & 1)

    def write_unary(self, value: int) -> None:
        """Append ``value`` zero bits followed by a terminating one bit."""
        if value < 0:
            raise BitStreamError(f"unary cannot encode negative value {value}")
        for _ in range(value):
            self.write_bit(0)
        self.write_bit(1)

    def align(self) -> None:
        """Pad with zero bits up to the next byte boundary."""
        while self._filled:
            self.write_bit(0)

    def extend(self, other: "BitWriter") -> None:
        """Append every bit written to ``other`` onto this writer."""
        data = other._buffer
        if self._filled == 0:
            self._buffer.extend(data)
        else:
            for byte in data:
                self.write_bits(byte, _BYTE_BITS)
        if other._filled:
            self.write_bits(other._current, other._filled)

    def to_bytes(self) -> bytes:
        """Return the packed stream, zero-padding the final partial byte."""
        if self._filled == 0:
            return bytes(self._buffer)
        tail = self._current << (_BYTE_BITS - self._filled)
        return bytes(self._buffer) + bytes([tail])


class BitReader:
    """Reads bits MSB-first from a ``bytes``-like object.

    The reader tracks its absolute bit position, which lets callers jump to
    recorded offsets inside a concatenated stream (used by the on-disk index
    files, where each graph records its starting bit offset).
    """

    def __init__(self, data: bytes, start_bit: int = 0) -> None:
        self._data = bytes(data)
        self._nbits = len(self._data) * _BYTE_BITS
        self._pos = 0
        if start_bit:
            self.seek(start_bit)

    @property
    def position(self) -> int:
        """Current absolute bit offset from the start of the stream."""
        return self._pos

    @property
    def remaining(self) -> int:
        """Number of bits left before the end of the underlying buffer."""
        return self._nbits - self._pos

    def seek(self, bit_offset: int) -> None:
        """Jump to an absolute bit offset."""
        if not 0 <= bit_offset <= self._nbits:
            raise BitStreamError(
                f"seek to bit {bit_offset} outside stream of {self._nbits} bits"
            )
        self._pos = bit_offset

    def read_bit(self) -> int:
        """Read one bit; raises :class:`BitStreamError` past end of stream."""
        if self._pos >= self._nbits:
            raise BitStreamError("read past end of bit stream")
        byte = self._data[self._pos >> 3]
        bit = (byte >> (7 - (self._pos & 7))) & 1
        self._pos += 1
        return bit

    def read_bits(self, width: int) -> int:
        """Read ``width`` bits and return them as an unsigned integer."""
        if width < 0:
            raise BitStreamError(f"negative width {width}")
        if self._pos + width > self._nbits:
            raise BitStreamError("read past end of bit stream")
        value = 0
        pos = self._pos
        data = self._data
        remaining = width
        # Consume up to the next byte boundary bit-by-bit, then whole bytes.
        while remaining and (pos & 7):
            byte = data[pos >> 3]
            value = (value << 1) | ((byte >> (7 - (pos & 7))) & 1)
            pos += 1
            remaining -= 1
        while remaining >= _BYTE_BITS:
            value = (value << _BYTE_BITS) | data[pos >> 3]
            pos += _BYTE_BITS
            remaining -= _BYTE_BITS
        while remaining:
            byte = data[pos >> 3]
            value = (value << 1) | ((byte >> (7 - (pos & 7))) & 1)
            pos += 1
            remaining -= 1
        self._pos = pos
        return value

    def read_unary(self) -> int:
        """Read a unary code (count of zero bits before the first one bit)."""
        count = 0
        while not self.read_bit():
            count += 1
        return count

    def peek_bits(self, width: int) -> int:
        """Read ``width`` bits without advancing; short reads are zero-padded.

        Used by the table-driven Huffman decoder, which peeks a fixed window
        that may extend past the logical end of the last code word.
        """
        save = self._pos
        available = min(width, self._nbits - self._pos)
        value = self.read_bits(available) if available > 0 else 0
        self._pos = save
        return value << (width - available)

    def skip(self, width: int) -> None:
        """Advance the cursor by ``width`` bits."""
        self.seek(self._pos + width)
