"""Run-length-encoded bit vectors.

The paper uses RLE bit vectors as one of the "easy to decode bit level
compression techniques" applied inside reference encoding (the copy bit
vector of a reference-coded adjacency list) and inside negative superedge
graphs.  Runs are gamma-coded; the first stored run is always the run of
the leading bit value, whose value is stored explicitly.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.errors import CodecError
from repro.util.bitio import BitReader, BitWriter
from repro.util.varint import decode_gamma, encode_gamma, gamma_cost


def runs_of(bits: Sequence[int]) -> list[int]:
    """Return the run lengths of ``bits`` (alternating, first run first)."""
    runs: list[int] = []
    current = None
    length = 0
    for bit in bits:
        value = 1 if bit else 0
        if value == current:
            length += 1
        else:
            if current is not None:
                runs.append(length)
            current = value
            length = 1
    if current is not None:
        runs.append(length)
    return runs


def encode_rle(writer: BitWriter, bits: Sequence[int]) -> None:
    """Write ``bits`` as (length, first-bit, gamma-coded run lengths)."""
    encode_gamma(writer, len(bits))
    if not bits:
        return
    writer.write_bit(1 if bits[0] else 0)
    for run in runs_of(bits):
        encode_gamma(writer, run - 1)


def decode_rle(reader: BitReader) -> list[int]:
    """Read a bit vector written with :func:`encode_rle`."""
    total = decode_gamma(reader)
    if total == 0:
        return []
    value = reader.read_bit()
    bits: list[int] = []
    while len(bits) < total:
        run = decode_gamma(reader) + 1
        if len(bits) + run > total:
            raise CodecError("RLE runs exceed declared bit-vector length")
        bits.extend([value] * run)
        value ^= 1
    return bits


def rle_cost(bits: Sequence[int]) -> int:
    """Exact bit cost of :func:`encode_rle` for ``bits``."""
    cost = gamma_cost(len(bits))
    if not bits:
        return cost
    cost += 1
    for run in runs_of(bits):
        cost += gamma_cost(run - 1)
    return cost


def plain_cost(bits: Sequence[int]) -> int:
    """Bit cost of storing ``bits`` verbatim with a gamma length prefix."""
    return gamma_cost(len(bits)) + len(bits)


def encode_bitvector(writer: BitWriter, bits: Sequence[int]) -> None:
    """Store ``bits`` with a 1-bit scheme flag: RLE if cheaper, else plain.

    This is the adaptive choice the paper alludes to ("wherever applicable,
    we employ other easy to decode bit level compression techniques such as
    run length encoding (RLE) bit vectors").
    """
    if rle_cost(bits) < plain_cost(bits):
        writer.write_bit(1)
        encode_rle(writer, bits)
    else:
        writer.write_bit(0)
        encode_gamma(writer, len(bits))
        for bit in bits:
            writer.write_bit(bit)


def decode_bitvector(reader: BitReader) -> list[int]:
    """Inverse of :func:`encode_bitvector`."""
    if reader.read_bit():
        return decode_rle(reader)
    total = decode_gamma(reader)
    return [reader.read_bit() for _ in range(total)]


def bitvector_cost(bits: Sequence[int]) -> int:
    """Bit cost of :func:`encode_bitvector` (flag + cheaper scheme)."""
    return 1 + min(rle_cost(bits), plain_cost(bits))


def pack_bits(bits: Iterable[int]) -> bytes:
    """Pack an iterable of bits MSB-first into bytes (for tests/tools)."""
    writer = BitWriter()
    for bit in bits:
        writer.write_bit(bit)
    return writer.to_bytes()
