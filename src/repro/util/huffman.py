"""Canonical Huffman coding.

Used in two places, mirroring the paper:

* the supernode graph is stored as Huffman-coded adjacency lists where
  supernodes with high in-degree receive short codes (paper section 3.3);
* the "Plain Huffman" baseline representation assigns per-page codes by
  in-degree (paper section 4).

The implementation builds optimal code lengths with the standard two-queue
Huffman construction, optionally limits the maximum code length (simple
level-rebalancing), assigns canonical codes, and decodes with a one-shot
lookup table over a fixed peek window for speed.
"""

from __future__ import annotations

import heapq
from collections.abc import Iterable, Mapping

from repro.errors import CodecError
from repro.util.bitio import BitReader, BitWriter

_MAX_TABLE_BITS = 16


def huffman_code_lengths(frequencies: Mapping[int, int]) -> dict[int, int]:
    """Compute optimal prefix-code lengths for ``symbol -> frequency``.

    Zero-frequency symbols are still assigned a code (treated as frequency
    one) so every symbol stays decodable; a single-symbol alphabet gets a
    one-bit code.
    """
    symbols = sorted(frequencies)
    if not symbols:
        return {}
    if len(symbols) == 1:
        return {symbols[0]: 1}
    heap: list[tuple[int, int, list[int]]] = []
    for order, symbol in enumerate(symbols):
        weight = max(1, frequencies[symbol])
        heapq.heappush(heap, (weight, order, [symbol]))
    depths = {symbol: 0 for symbol in symbols}
    tiebreak = len(symbols)
    while len(heap) > 1:
        w1, _, group1 = heapq.heappop(heap)
        w2, _, group2 = heapq.heappop(heap)
        merged = group1 + group2
        for symbol in merged:
            depths[symbol] += 1
        heapq.heappush(heap, (w1 + w2, tiebreak, merged))
        tiebreak += 1
    return depths


def limit_code_lengths(lengths: dict[int, int], max_length: int) -> dict[int, int]:
    """Clamp code lengths to ``max_length`` while keeping Kraft feasibility.

    Uses the simple heuristic of clamping over-long codes and then repairing
    the Kraft sum by lengthening the shortest codes until the sum is <= 1.
    The result is fed into the canonical assignment, which only needs valid
    lengths, not optimal ones.
    """
    if not lengths:
        return {}
    if max_length < 1:
        raise CodecError(f"max_length must be >= 1, got {max_length}")
    clamped = {s: min(l, max_length) for s, l in lengths.items()}
    scale = 1 << max_length
    kraft = sum(scale >> l for l in clamped.values())
    if kraft <= scale:
        return clamped
    # Lengthen the currently-shortest codes until Kraft holds.
    by_length = sorted(clamped, key=lambda s: (clamped[s], s))
    index = 0
    while kraft > scale:
        symbol = by_length[index % len(by_length)]
        if clamped[symbol] < max_length:
            kraft -= scale >> clamped[symbol]
            clamped[symbol] += 1
            kraft += scale >> clamped[symbol]
        index += 1
        if index > 4 * len(by_length) * max_length:
            raise CodecError("cannot satisfy Kraft inequality under length limit")
    return clamped


class HuffmanCodec:
    """Canonical Huffman encoder/decoder over integer symbols."""

    def __init__(self, lengths: Mapping[int, int]) -> None:
        if not lengths:
            raise CodecError("empty Huffman alphabet")
        self._lengths = dict(lengths)
        self._max_length = max(self._lengths.values())
        if self._max_length > _MAX_TABLE_BITS:
            raise CodecError(
                f"code length {self._max_length} exceeds decoder window "
                f"{_MAX_TABLE_BITS}; limit lengths first"
            )
        self._codes = self._assign_canonical()
        self._table = self._build_decode_table()

    @classmethod
    def from_frequencies(
        cls, frequencies: Mapping[int, int], max_length: int = _MAX_TABLE_BITS
    ) -> "HuffmanCodec":
        """Build a codec straight from symbol frequencies."""
        lengths = huffman_code_lengths(frequencies)
        return cls(limit_code_lengths(lengths, max_length))

    # -- construction -----------------------------------------------------

    def _assign_canonical(self) -> dict[int, tuple[int, int]]:
        """Assign canonical codes: shorter codes first, ties by symbol id."""
        ordered = sorted(self._lengths.items(), key=lambda kv: (kv[1], kv[0]))
        codes: dict[int, tuple[int, int]] = {}
        code = 0
        previous_length = ordered[0][1]
        for symbol, length in ordered:
            code <<= length - previous_length
            if code >= (1 << length):
                raise CodecError("code lengths violate Kraft inequality")
            codes[symbol] = (code, length)
            code += 1
            previous_length = length
        return codes

    def _build_decode_table(self) -> list[tuple[int, int]]:
        """Dense (symbol, length) table indexed by a max-length bit window."""
        window = self._max_length
        table: list[tuple[int, int]] = [(-1, 0)] * (1 << window)
        for symbol, (code, length) in self._codes.items():
            base = code << (window - length)
            for offset in range(1 << (window - length)):
                table[base + offset] = (symbol, length)
        return table

    # -- public API --------------------------------------------------------

    @property
    def lengths(self) -> dict[int, int]:
        """Mapping symbol -> canonical code length in bits."""
        return dict(self._lengths)

    @property
    def max_length(self) -> int:
        """Longest code length in the codec."""
        return self._max_length

    def code_length(self, symbol: int) -> int:
        """Length in bits of ``symbol``'s code."""
        try:
            return self._lengths[symbol]
        except KeyError as exc:
            raise CodecError(f"symbol {symbol} not in Huffman alphabet") from exc

    def encode_symbol(self, writer: BitWriter, symbol: int) -> None:
        """Append the code for ``symbol`` to ``writer``."""
        try:
            code, length = self._codes[symbol]
        except KeyError as exc:
            raise CodecError(f"symbol {symbol} not in Huffman alphabet") from exc
        writer.write_bits(code, length)

    def encode_sequence(self, writer: BitWriter, symbols: Iterable[int]) -> None:
        """Append codes for every symbol in ``symbols``."""
        for symbol in symbols:
            self.encode_symbol(writer, symbol)

    def decode_symbol(self, reader: BitReader) -> int:
        """Decode one symbol from ``reader``."""
        window = reader.peek_bits(self._max_length)
        symbol, length = self._table[window]
        if symbol < 0:
            raise CodecError("invalid Huffman code word in stream")
        reader.skip(length)
        return symbol

    def decode_sequence(self, reader: BitReader, count: int) -> list[int]:
        """Decode exactly ``count`` symbols."""
        return [self.decode_symbol(reader) for _ in range(count)]

    def encoded_size_bits(self, symbols: Iterable[int]) -> int:
        """Total bits the codec would use to encode ``symbols``."""
        return sum(self.code_length(symbol) for symbol in symbols)

    # -- serialization of the code table itself ----------------------------

    def serialize_lengths(self, writer: BitWriter) -> None:
        """Write the (symbol, length) table compactly (gamma-coded).

        Symbols are assumed to be a dense-ish range; we store the max symbol
        and a length-per-symbol array (0 = absent).
        """
        from repro.util.varint import encode_gamma

        max_symbol = max(self._lengths)
        encode_gamma(writer, max_symbol)
        for symbol in range(max_symbol + 1):
            encode_gamma(writer, self._lengths.get(symbol, 0))

    @classmethod
    def deserialize_lengths(cls, reader: BitReader) -> "HuffmanCodec":
        """Inverse of :meth:`serialize_lengths`."""
        from repro.util.varint import decode_gamma

        max_symbol = decode_gamma(reader)
        lengths: dict[int, int] = {}
        for symbol in range(max_symbol + 1):
            length = decode_gamma(reader)
            if length:
                lengths[symbol] = length
        return cls(lengths)
