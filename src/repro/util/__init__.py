"""Low-level utilities: bit I/O, integer codes, Huffman, RLE, LRU."""

from repro.util.bitio import BitReader, BitWriter
from repro.util.lru import LRUCache
from repro.util.varint import (
    decode_delta,
    decode_gamma,
    decode_golomb,
    decode_minimal_binary,
    decode_nibble,
    decode_unary,
    decode_vbyte,
    encode_delta,
    encode_gamma,
    encode_golomb,
    encode_minimal_binary,
    encode_nibble,
    encode_unary,
    encode_vbyte,
    gamma_cost,
)

__all__ = [
    "BitReader",
    "BitWriter",
    "LRUCache",
    "encode_unary",
    "decode_unary",
    "encode_gamma",
    "decode_gamma",
    "gamma_cost",
    "encode_delta",
    "decode_delta",
    "encode_golomb",
    "decode_golomb",
    "encode_vbyte",
    "decode_vbyte",
    "encode_nibble",
    "decode_nibble",
    "encode_minimal_binary",
    "decode_minimal_binary",
]
