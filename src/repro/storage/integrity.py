"""CRC32 framing, page-checksum sidecars and build digests.

Three integrity primitives shared by every representation:

* **frame codec** — ``encode_frame``/``decode_frame`` wrap a byte payload
  as ``vbyte(length) + payload + crc32`` so small auxiliary files
  (pointer tables, indexes, id maps) detect truncation, trailing garbage
  and any bit flip as a clean :class:`~repro.errors.CorruptionError`
  instead of an undecodable mess deep inside ``util.bitio``;
* **page-checksum sidecars** — ``<file>.crc`` holds one CRC32 per
  fixed-size page of a heap or B+tree file (itself stored as a frame), so
  :class:`~repro.storage.device.PageDevice` verifies every page read;
* **build digests** — a manifest's ``files`` table records each file's
  size and CRC, and ``build_digest`` folds the table into one SHA-256
  whose mismatch means "this build is not the one the manifest
  describes".

CRC32 (via :func:`zlib.crc32`) detects every single-bit error and all
burst errors up to 32 bits — the failure modes of torn writes and bit
rot — at ~1 GB/s in the C implementation, so verification is effectively
free next to payload decoding.
"""

from __future__ import annotations

import hashlib
import struct
import zlib
from pathlib import Path

from repro.errors import CorruptionError
from repro.util.varint import decode_vbyte, encode_vbyte

_CRC = struct.Struct("<I")

#: Suffix of a page-checksum sidecar file.
SIDECAR_SUFFIX = ".crc"


def crc32(data: bytes) -> int:
    """CRC32 of ``data`` (unsigned)."""
    return zlib.crc32(data) & 0xFFFFFFFF


def sha256_hex(data: bytes) -> str:
    """SHA-256 hex digest of ``data`` (stage artifacts, build digests)."""
    return hashlib.sha256(data).hexdigest()


# -- frame codec -----------------------------------------------------------


def encode_frame(payload: bytes) -> bytes:
    """``vbyte(len) + payload + crc32(payload)``."""
    return b"".join((encode_vbyte(len(payload)), payload, _CRC.pack(crc32(payload))))


def decode_frame(blob: bytes, position: int = 0) -> tuple[bytes, int]:
    """Decode one frame at ``position``; returns (payload, next position).

    Raises :class:`CorruptionError` on truncation or checksum mismatch.
    """
    try:
        length, position = decode_vbyte(blob, position)
    except Exception as exc:
        raise CorruptionError(f"unreadable frame header: {exc}") from exc
    end = position + length
    if end + _CRC.size > len(blob):
        raise CorruptionError(
            f"truncated frame: header promises {length} bytes but only "
            f"{len(blob) - position - _CRC.size} remain"
        )
    payload = bytes(blob[position:end])
    (expected,) = _CRC.unpack_from(blob, end)
    actual = crc32(payload)
    if actual != expected:
        raise CorruptionError(
            f"frame checksum mismatch: stored {expected:#010x}, "
            f"computed {actual:#010x}"
        )
    return payload, end + _CRC.size


def read_framed(path: Path | str) -> bytes:
    """Read a whole-file frame; the file must hold exactly one frame."""
    path = Path(path)
    blob = path.read_bytes()
    try:
        payload, position = decode_frame(blob)
    except CorruptionError as exc:
        raise CorruptionError(f"{path.name}: {exc}") from None
    if position != len(blob):
        raise CorruptionError(
            f"{path.name}: {len(blob) - position} bytes of trailing garbage "
            "after the frame"
        )
    return payload


# -- page-checksum sidecars ------------------------------------------------


def sidecar_path(data_path: Path | str) -> Path:
    """Path of the page-checksum sidecar for ``data_path``."""
    data_path = Path(data_path)
    return data_path.parent / (data_path.name + SIDECAR_SUFFIX)


def encode_page_checksums(checksums: list[int]) -> bytes:
    """Serialized sidecar content (a frame over the packed CRC array)."""
    return encode_frame(struct.pack(f"<{len(checksums)}I", *checksums))


def decode_page_checksums(blob: bytes) -> list[int]:
    """Inverse of :func:`encode_page_checksums`."""
    payload, _position = decode_frame(blob)
    if len(payload) % _CRC.size:
        raise CorruptionError("page-checksum sidecar is not a whole CRC array")
    return list(struct.unpack(f"<{len(payload) // _CRC.size}I", payload))


def read_page_checksums(data_path: Path | str) -> list[int] | None:
    """Load the sidecar checksums of ``data_path`` (None when absent).

    Read with a plain handle, not a counted device: sidecar loading is
    open-time bookkeeping, not part of any measured access path.
    """
    path = sidecar_path(data_path)
    if not path.exists():
        return None
    try:
        return decode_page_checksums(path.read_bytes())
    except CorruptionError as exc:
        raise CorruptionError(f"{path.name}: {exc}") from None


def page_checksums_of_file(data_path: Path | str, page_size: int) -> list[int]:
    """Compute one CRC32 per whole ``page_size`` page of a data file."""
    data = Path(data_path).read_bytes()
    return [
        crc32(data[start : start + page_size])
        for start in range(0, len(data) - page_size + 1, page_size)
    ]


# -- build digests ---------------------------------------------------------


def file_crc(path: Path | str) -> int:
    """CRC32 of a whole file (streamed)."""
    value = 0
    with open(path, "rb") as handle:
        while chunk := handle.read(1 << 20):
            value = zlib.crc32(chunk, value)
    return value & 0xFFFFFFFF


def build_digest(files: dict[str, dict]) -> str:
    """SHA-256 over a manifest ``files`` table (name, size, CRC per file).

    Stable under dict ordering; any file added, removed, resized or
    re-checksummed changes the digest, so the manifest commits to exactly
    one build.
    """
    digest = hashlib.sha256()
    for name in sorted(files):
        entry = files[name]
        digest.update(
            f"{name}:{entry['bytes']}:{entry['crc32']:#010x}\n".encode()
        )
    return digest.hexdigest()
