"""Offline verification (and repair) of any stored representation.

``repro fsck <root>`` inspects a build directory the way a filesystem
checker inspects a volume, without opening it for queries:

1. **build state** — :func:`repro.storage.atomic.classify_build`
   distinguishes a committed build from a leftover partial build or an
   empty directory;
2. **manifest** — the JSON must parse, its ``files`` table must match the
   directory (existence, size, whole-file CRC32) and the table must hash
   to the recorded build digest;
3. **mutation sidecars** — a build serving mutably carries a
   ``graph.wal`` write-ahead log beside its manifest
   (:mod:`repro.storage.wal`); the log is frame-scanned so a torn tail
   (crash mid-append) or a leftover truncation staging file is reported
   — and with ``--repair`` truncated/removed — while a build that
   merely *has* a delta layer stays ``valid``;
4. **region pass** — scheme-specific granular checks: every S-Node
   intranode/superedge payload region against its ``pointers.bin`` CRC,
   every heap/B+tree page against its ``.crc`` sidecar, the Link3 block
   sidecar's frame integrity;
5. **repair** (opt-in) — ``--repair`` writes the corrupt S-Node region
   list to ``quarantine.json`` (a store opened with
   ``on_corruption="degrade"`` then serves every *other* region
   normally) and truncates torn WAL tails to the last intact record.

Findings are per file and per region, so an operator knows exactly what
was lost — and what was not.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import ReproError
from repro.storage import atomic, integrity

#: Page size shared by the heap file and B+tree index files.
_PAGE_SIZE = 4096


@dataclass
class Finding:
    """One verified defect: which file, which region inside it, what."""

    file: str
    problem: str
    region: list = field(default_factory=list)

    def to_dict(self) -> dict:
        return {"file": self.file, "region": self.region, "problem": self.problem}

    def render(self) -> str:
        where = self.file or "<build>"
        if self.region:
            where += f" [{' '.join(str(part) for part in self.region)}]"
        return f"{where}: {self.problem}"


@dataclass
class FsckReport:
    """Everything one fsck pass learned about a build directory."""

    root: str
    scheme: str = "unknown"
    state: str = "missing"
    findings: list[Finding] = field(default_factory=list)
    files_checked: int = 0
    regions_checked: int = 0
    repaired: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when the build is committed and nothing failed a check."""
        return self.state == "valid" and not self.findings

    def add(self, file: str, problem: str, region: list | None = None) -> None:
        """Record one finding."""
        self.findings.append(Finding(file, problem, region or []))

    def to_dict(self) -> dict:
        return {
            "root": self.root,
            "scheme": self.scheme,
            "state": self.state,
            "ok": self.ok,
            "files_checked": self.files_checked,
            "regions_checked": self.regions_checked,
            "findings": [finding.to_dict() for finding in self.findings],
            "repaired": self.repaired,
        }

    def render(self) -> str:
        lines = [
            f"fsck {self.root}: scheme={self.scheme} state={self.state} "
            f"files={self.files_checked} regions={self.regions_checked}"
        ]
        for finding in self.findings:
            lines.append(f"  PROBLEM {finding.render()}")
        for region in self.repaired:
            lines.append(f"  QUARANTINED {' '.join(str(p) for p in region)}")
        lines.append("clean" if self.ok else f"{len(self.findings)} problem(s) found")
        return "\n".join(lines)


def fsck(root: Path | str, repair: bool = False, quick: bool = False) -> FsckReport:
    """Verify the build under ``root``; optionally quarantine (S-Node).

    ``quick=True`` stops after the build-state, manifest and file-table
    passes (existence, size, whole-file CRC, build digest) and skips the
    per-region pass.  Whole-file CRCs already cover every payload byte,
    so quick mode proves integrity without region granularity — it is
    the validation the hot-swap protocol runs against a freshly built
    store directory before opening it, where a full region walk would
    stretch the swap window for no extra safety.
    """
    root = Path(root)
    report = FsckReport(root=str(root))
    report.state = atomic.classify_build(root)
    if report.state == "partial":
        report.add(
            "",
            f"interrupted build: {atomic.tmp_root(root).name} left behind, "
            "no manifest committed",
        )
        return report
    if report.state == "missing":
        report.add("", "no build here: no manifest and no in-progress directory")
        return report

    manifest_path = root / atomic.MANIFEST_NAME
    try:
        manifest = json.loads(manifest_path.read_text())
    except json.JSONDecodeError as exc:
        report.add(atomic.MANIFEST_NAME, f"not valid JSON: {exc.msg}")
        return report

    report.scheme = (
        "s-node" if "index_files" in manifest else manifest.get("scheme", "unknown")
    )
    _check_file_table(root, manifest, report)
    # The WAL scan runs in quick mode too: it is one small sequential
    # read, and the hot-swap validation must reject a directory whose
    # log tail would silently swallow post-adoption appends.
    _check_wal_sidecar(root, report, repair)
    if quick:
        return report
    if report.scheme == "s-node":
        _check_snode_regions(root, report, repair)
    elif report.scheme == "relational":
        _check_page_sidecars(root, manifest, report)
    elif report.scheme == "link3":
        _check_link3_sidecar(root, report)
    return report


def _check_file_table(root: Path, manifest: dict, report: FsckReport) -> None:
    files = manifest.get("files")
    if not isinstance(files, dict):
        report.add(atomic.MANIFEST_NAME, "manifest has no files table")
        return
    if manifest.get("digest") != integrity.build_digest(files):
        report.add(
            atomic.MANIFEST_NAME,
            "build digest mismatch: manifest does not describe these files",
        )
    for name, entry in sorted(files.items()):
        path = root / name
        report.files_checked += 1
        if not path.exists():
            report.add(name, "missing")
            continue
        size = path.stat().st_size
        if size != entry["bytes"]:
            report.add(
                name, f"holds {size} bytes, manifest recorded {entry['bytes']}"
            )
            continue
        actual = integrity.file_crc(path)
        if actual != entry["crc32"]:
            report.add(
                name,
                f"whole-file CRC mismatch (recorded {entry['crc32']:#010x}, "
                f"computed {actual:#010x})",
            )


def _check_wal_sidecar(root: Path, report: FsckReport, repair: bool) -> None:
    """Frame-scan the mutation sidecars (``graph.wal`` + staging file).

    The WAL is *not* in the manifest's files table — it mutates after
    commit by design — so this pass is its only offline verification.
    Intact frames count as regions; a torn tail is a finding (and a
    ``--repair`` truncates it to the last intact record, exactly what
    replay would have ignored anyway).
    """
    from repro.storage.wal import GraphWal

    wal = GraphWal.for_build(root)
    staging = wal.staging_path
    if staging.exists():
        report.add(
            staging.name,
            "interrupted WAL truncation: staging file left behind "
            "(the main log is intact; safe to remove)",
        )
        if repair:
            staging.unlink()
            report.repaired.append([staging.name, "removed"])
    if not wal.path.exists():
        return
    report.files_checked += 1
    scan = wal.scan()
    report.regions_checked += len(scan.records)
    if scan.torn:
        report.add(
            wal.path.name,
            f"torn tail: {scan.torn_bytes} undecodable byte(s) after "
            f"{len(scan.records)} intact record(s) ({scan.good_bytes} bytes)",
            ["tail", scan.good_bytes],
        )
        if repair:
            removed = wal.repair_tail()
            report.repaired.append([wal.path.name, "tail", removed])


def _check_snode_regions(root: Path, report: FsckReport, repair: bool) -> None:
    from repro.snode import storage as snode_storage

    try:
        layout = snode_storage.read_layout(root)
    except ReproError as exc:
        report.add("", f"layout unreadable: {exc}")
        return
    regions: list[tuple[tuple, snode_storage.GraphLocation]] = [
        (("intranode", supernode), location)
        for supernode, location in enumerate(layout.intranode)
    ]
    regions.extend(
        (("superedge", source, target), location)
        for (source, target), (location, _negative) in sorted(layout.superedge.items())
    )
    handles = {
        index: open(root / name, "rb")
        for index, name in enumerate(layout.index_files)
        if (root / name).exists()
    }
    corrupt: set[tuple] = set()
    try:
        for region, location in regions:
            handle = handles.get(location.file_index)
            if handle is None:
                continue  # already reported as a missing file
            handle.seek(location.offset)
            payload = handle.read(location.length)
            report.regions_checked += 1
            if len(payload) != location.length:
                report.add(
                    layout.index_files[location.file_index],
                    f"region truncated at offset {location.offset}",
                    list(region),
                )
                corrupt.add(region)
            elif integrity.crc32(payload) != location.crc:
                report.add(
                    layout.index_files[location.file_index],
                    "payload CRC mismatch",
                    list(region),
                )
                corrupt.add(region)
    finally:
        for handle in handles.values():
            handle.close()
    if repair and corrupt:
        already = snode_storage.read_quarantine(root)
        snode_storage.write_quarantine(root, already | corrupt)
        report.repaired = sorted(list(region) for region in corrupt)


def _check_page_sidecars(root: Path, manifest: dict, report: FsckReport) -> None:
    files = manifest.get("files") or {}
    for name in sorted(files):
        if name.endswith(integrity.SIDECAR_SUFFIX) or not (
            name.endswith(".heap") or name.endswith(".btree")
        ):
            continue
        path = root / name
        if not path.exists():
            continue  # already reported
        try:
            stored = integrity.read_page_checksums(path)
        except ReproError as exc:
            report.add(name + integrity.SIDECAR_SUFFIX, str(exc))
            continue
        if stored is None:
            report.add(name, "page-checksum sidecar is missing")
            continue
        actual = integrity.page_checksums_of_file(path, _PAGE_SIZE)
        for page, (expected, computed) in enumerate(zip(stored, actual)):
            report.regions_checked += 1
            if expected != computed:
                report.add(name, "page CRC mismatch", ["page", page])
        if len(stored) != len(actual):
            report.add(
                name,
                f"sidecar covers {len(stored)} pages, file holds {len(actual)}",
            )


def _check_link3_sidecar(root: Path, report: FsckReport) -> None:
    payload_path = root / "link3.dat"
    sidecar = integrity.sidecar_path(payload_path)
    if not sidecar.exists():
        report.add(sidecar.name, "block-checksum sidecar is missing")
        return
    try:
        checksums = integrity.decode_page_checksums(sidecar.read_bytes())
    except ReproError as exc:
        report.add(sidecar.name, str(exc))
        return
    # Block offsets live only in the representation object, so the block
    # CRCs are re-verified online at load time; here the sidecar's own
    # frame plus the whole-file CRC (file-table pass) cover the payload.
    report.regions_checked += len(checksums)
