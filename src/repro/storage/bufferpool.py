"""Byte-budgeted buffer manager shared by every disk-backed representation.

Built on :class:`repro.util.lru.LRUCache`, adding the features the paper's
runtime architecture needs:

* **pinning** — root structures (the supernode graph, B+tree meta pages)
  stay resident outside the LRU budget, "akin to the root node of B-tree
  indexes";
* **typed load costs** — entries carry explicit byte costs (raw page,
  encoded payload, decoded-graph cost model) and loads are counted per
  kind (``<kind>_loads``) in the shared metrics registry;
* **uniform resize** — :meth:`set_buffer_bytes` is the single Figure 12
  sweep protocol: every representation resizes through it with identical
  semantics (cache dropped silently, pins kept).

Hit/miss/eviction counters live in the owning representation's
:class:`~repro.storage.metrics.MetricsRegistry` (``buffer_hits``,
``buffer_misses``, ``buffer_evictions``), so the sweep experiments read
them uniformly across schemes.  Lookups that name a ``kind`` also count
``buffer_hits_<kind>`` / ``buffer_misses_<kind>``, so per-component hit
ratios (intranode vs. superedge vs. heap page vs. index page) are
recoverable; hits served by pinned entries are additionally counted as
``buffer_pinned_hits`` because they are capacity-independent and must be
excluded when comparing measured ratios against LRU predictions.
"""

from __future__ import annotations

from collections.abc import Callable, Hashable

from repro.obs import tracing
from repro.obs.profile import trace as _profile
from repro.storage.metrics import MetricsRegistry
from repro.util.lru import LRUCache


class BufferPool:
    """LRU buffer manager with pinning and shared-metrics accounting."""

    def __init__(
        self,
        capacity_bytes: int,
        registry: MetricsRegistry | None = None,
        on_evict: Callable[[Hashable, object], None] | None = None,
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self._on_evict = on_evict
        self._pinned: dict[Hashable, tuple[object, int]] = {}
        self._cache: LRUCache = LRUCache(capacity_bytes, on_evict=self._evicted)

    # -- eviction accounting -----------------------------------------------

    def _evicted(self, key: Hashable, value: object) -> None:
        self.registry.inc("buffer_evictions")
        if self._on_evict is not None:
            self._on_evict(key, value)

    # -- cache protocol ----------------------------------------------------

    def get(self, key: Hashable, kind: str | None = None):
        """Cached value for ``key`` or None, counting hit/miss.

        A ``kind`` additionally attributes the lookup to
        ``buffer_hits_<kind>`` / ``buffer_misses_<kind>``.
        """
        pinned = self._pinned.get(key)
        if pinned is not None:
            self.registry.inc("buffer_hits")
            self.registry.inc("buffer_pinned_hits")
            if kind is not None:
                self.registry.inc(f"buffer_hits_{kind}")
            _profile.buffer_access(self, key, kind, hit=True, pinned=True)
            return pinned[0]
        value = self._cache.get(key)
        if value is None:
            self.registry.inc("buffer_misses")
            if kind is not None:
                self.registry.inc(f"buffer_misses_{kind}")
            _profile.buffer_access(self, key, kind, hit=False, pinned=False)
            return None
        self.registry.inc("buffer_hits")
        if kind is not None:
            self.registry.inc(f"buffer_hits_{kind}")
        _profile.buffer_access(self, key, kind, hit=True, pinned=False)
        return value

    def put(self, key: Hashable, value, cost_bytes: int, kind: str | None = None) -> None:
        """Admit ``value`` under the byte budget (evicting LRU entries)."""
        if key in self._pinned:
            self._pinned[key] = (value, cost_bytes)
            return
        _profile.buffer_admit(self, key, kind, cost_bytes)
        self._cache.put(key, value, cost_bytes)

    def get_or_load(
        self,
        key: Hashable,
        loader: Callable[[], object],
        cost: Callable[[object], int] | int | None = None,
        kind: str | None = None,
    ):
        """Return the cached value for ``key``, loading and admitting on miss.

        ``cost`` is either an explicit byte cost, a function of the loaded
        value, or None (``len(value)`` — raw byte payloads).  ``kind``
        names the load in the registry (``<kind>_loads`` plus the total
        ``loads`` counter) — how "loads by graph kind" reach Figure 11's
        instrumentation table.
        """
        value = self.get(key, kind=kind)
        if value is not None:
            return value
        value = loader()
        if callable(cost):
            cost_bytes = cost(value)
        elif cost is None:
            cost_bytes = len(value)  # type: ignore[arg-type]
        else:
            cost_bytes = cost
        self.put(key, value, cost_bytes, kind=kind)
        self.registry.inc("loads")
        if kind is not None:
            self.registry.inc(f"{kind}_loads")
        # Span attribution: an active tracer sees which span triggered
        # the load, by kind.
        tracing.note(f"{kind}_loads" if kind is not None else "loads")
        return value

    # -- pinning -----------------------------------------------------------

    def pin(self, key: Hashable, value, cost_bytes: int) -> None:
        """Keep ``value`` resident outside the LRU budget until unpinned."""
        if self._cache.pop(key) is not None:  # never hold a pinned key twice
            _profile.buffer_drop(self, key)
        self._pinned[key] = (value, cost_bytes)

    def unpin(self, key: Hashable) -> None:
        """Release a pinned entry (dropped, not demoted to the LRU)."""
        self._pinned.pop(key, None)

    def invalidate(self, key: Hashable) -> None:
        """Drop ``key`` without eviction accounting (after an in-place write)."""
        if self._cache.pop(key) is not None:
            _profile.buffer_drop(self, key)

    # -- maintenance -------------------------------------------------------

    def clear(self, record: bool = True) -> None:
        """Drop every unpinned entry.

        ``record=True`` (cold-cache resets) counts the drops as evictions
        and fires the owner's eviction callback, matching the unload
        instrumentation of an actual buffer-pressure eviction;
        ``record=False`` discards silently (resize protocol).
        """
        if record:
            self._cache.clear()
        else:
            capacity = self._cache.capacity_bytes
            self._cache = LRUCache(capacity, on_evict=self._evicted)
        _profile.buffer_drop(self)

    def set_buffer_bytes(self, capacity_bytes: int) -> None:
        """Uniform resize protocol: new budget, cache dropped, pins kept."""
        self._cache = LRUCache(capacity_bytes, on_evict=self._evicted)
        _profile.buffer_drop(self)

    # -- introspection -----------------------------------------------------

    @property
    def capacity_bytes(self) -> int:
        """Configured LRU byte budget (pins live outside it)."""
        return self._cache.capacity_bytes

    @property
    def used_bytes(self) -> int:
        """Bytes held by unpinned entries."""
        return self._cache.used_bytes

    @property
    def pinned_bytes(self) -> int:
        """Bytes held by pinned entries."""
        return sum(cost for _value, cost in self._pinned.values())

    def stats(self) -> dict[str, int]:
        """Occupancy plus the registry's hit/miss/eviction counters."""
        return {
            "hits": self.registry.get("buffer_hits"),
            "pinned_hits": self.registry.get("buffer_pinned_hits"),
            "misses": self.registry.get("buffer_misses"),
            "evictions": self.registry.get("buffer_evictions"),
            "entries": len(self._cache),
            "used_bytes": self._cache.used_bytes,
            "capacity_bytes": self._cache.capacity_bytes,
            "pinned_entries": len(self._pinned),
            "pinned_bytes": self.pinned_bytes,
        }
