"""Byte-budgeted buffer manager shared by every disk-backed representation.

Built on :class:`repro.util.lru.LRUCache`, adding the features the paper's
runtime architecture needs:

* **pinning** — root structures (the supernode graph, B+tree meta pages)
  stay resident outside the LRU budget, "akin to the root node of B-tree
  indexes";
* **typed load costs** — entries carry explicit byte costs (raw page,
  encoded payload, decoded-graph cost model) and loads are counted per
  kind (``<kind>_loads``) in the shared metrics registry;
* **uniform resize** — :meth:`set_buffer_bytes` is the single Figure 12
  sweep protocol: every representation resizes through it with identical
  semantics (cache dropped silently, pins kept).  Shrinking the budget
  below the pinned floor raises a typed
  :class:`~repro.errors.BufferCapacityError` — pins are resident for the
  store's lifetime, so a budget that cannot cover them is infeasible and
  sweeps skip the point explicitly instead of getting silently wrong
  accounting;
* **concurrent readers** — the cache is *lock-striped*: keys hash onto
  ``stripes`` independent LRU segments, each with its own lock and an
  equal share of the byte budget, so N sessions hitting different
  stripes never serialize on one mutex.  ``stripes=1`` (the default) is
  a single exact LRU with byte-identical behaviour to the serial pool —
  the configuration every experiment and the Mattson miss-ratio
  validation use; the query daemon opens its shared store with more
  stripes.  Pinned entries and their byte accounting sit behind one
  dedicated lock, so capacity/pinned-byte bookkeeping is atomic under
  contention.

Hit/miss/eviction counters live in the owning representation's
:class:`~repro.storage.metrics.MetricsRegistry` (``buffer_hits``,
``buffer_misses``, ``buffer_evictions``), so the sweep experiments read
them uniformly across schemes.  Lookups that name a ``kind`` also count
``buffer_hits_<kind>`` / ``buffer_misses_<kind>``, so per-component hit
ratios (intranode vs. superedge vs. heap page vs. index page) are
recoverable; hits served by pinned entries are additionally counted as
``buffer_pinned_hits`` because they are capacity-independent and must be
excluded when comparing measured ratios against LRU predictions.

Per-session attribution: lookups and loads accept an optional
``registry`` — a session's child registry — charged *instead of* the
pool's own.  Evictions are a shared-pool event (one session's admission
evicts another session's entry) and always charge the pool's base
registry, so per-client counters plus the base sum to the true totals.
"""

from __future__ import annotations

import threading
from collections.abc import Callable, Hashable

from repro.errors import BufferCapacityError, StorageError
from repro.obs import tracing
from repro.obs.profile import trace as _profile
from repro.storage.metrics import MetricsRegistry
from repro.util.lru import LRUCache


def _split_budget(capacity_bytes: int, stripes: int) -> list[int]:
    """Per-stripe byte budgets (stripe 0 absorbs the remainder)."""
    share = capacity_bytes // stripes
    budgets = [share] * stripes
    budgets[0] += capacity_bytes - share * stripes
    return budgets


class BufferPool:
    """LRU buffer manager with pinning and shared-metrics accounting."""

    def __init__(
        self,
        capacity_bytes: int,
        registry: MetricsRegistry | None = None,
        on_evict: Callable[[Hashable, object], None] | None = None,
        stripes: int = 1,
    ) -> None:
        if stripes < 1:
            raise ValueError(f"stripes must be >= 1, got {stripes}")
        self.registry = registry if registry is not None else MetricsRegistry()
        self._on_evict = on_evict
        self._capacity_bytes = capacity_bytes
        self._stripes = stripes
        self._pin_lock = threading.RLock()
        self._pinned: dict[Hashable, tuple[object, int]] = {}
        self._pinned_bytes = 0
        self._locks = [threading.RLock() for _ in range(stripes)]
        self._caches: list[LRUCache] = [
            LRUCache(budget, on_evict=self._evicted)
            for budget in _split_budget(capacity_bytes, stripes)
        ]

    def _stripe(self, key: Hashable) -> int:
        if self._stripes == 1:
            return 0
        return hash(key) % self._stripes

    # -- eviction accounting -----------------------------------------------

    def _evicted(self, key: Hashable, value: object) -> None:
        # Evictions are shared-pool events (session A's admission can push
        # out session B's entry), so they always charge the base registry.
        self.registry.inc("buffer_evictions")
        if self._on_evict is not None:
            self._on_evict(key, value)

    # -- cache protocol ----------------------------------------------------

    def get(
        self,
        key: Hashable,
        kind: str | None = None,
        registry: MetricsRegistry | None = None,
    ):
        """Cached value for ``key`` or None, counting hit/miss.

        A ``kind`` additionally attributes the lookup to
        ``buffer_hits_<kind>`` / ``buffer_misses_<kind>``; a ``registry``
        (a session's) is charged instead of the pool's own.
        """
        target = registry if registry is not None else self.registry
        with self._pin_lock:
            pinned = self._pinned.get(key)
        if pinned is not None:
            target.inc("buffer_hits")
            target.inc("buffer_pinned_hits")
            if kind is not None:
                target.inc(f"buffer_hits_{kind}")
            _profile.buffer_access(self, key, kind, hit=True, pinned=True)
            return pinned[0]
        index = self._stripe(key)
        with self._locks[index]:
            value = self._caches[index].get(key)
        if value is None:
            target.inc("buffer_misses")
            if kind is not None:
                target.inc(f"buffer_misses_{kind}")
            _profile.buffer_access(self, key, kind, hit=False, pinned=False)
            return None
        target.inc("buffer_hits")
        if kind is not None:
            target.inc(f"buffer_hits_{kind}")
        _profile.buffer_access(self, key, kind, hit=True, pinned=False)
        return value

    def put(self, key: Hashable, value, cost_bytes: int, kind: str | None = None) -> None:
        """Admit ``value`` under the byte budget (evicting LRU entries)."""
        with self._pin_lock:
            if key in self._pinned:
                self._pinned_bytes += cost_bytes - self._pinned[key][1]
                self._pinned[key] = (value, cost_bytes)
                return
        _profile.buffer_admit(self, key, kind, cost_bytes)
        index = self._stripe(key)
        with self._locks[index]:
            self._caches[index].put(key, value, cost_bytes)

    def get_or_load(
        self,
        key: Hashable,
        loader: Callable[[], object],
        cost: Callable[[object], int] | int | None = None,
        kind: str | None = None,
        registry: MetricsRegistry | None = None,
    ):
        """Return the cached value for ``key``, loading and admitting on miss.

        ``cost`` is either an explicit byte cost, a function of the loaded
        value, or None (``len(value)`` — raw byte payloads).  ``kind``
        names the load in the registry (``<kind>_loads`` plus the total
        ``loads`` counter) — how "loads by graph kind" reach Figure 11's
        instrumentation table.  ``registry`` attributes the lookup and
        the load to a session instead of the pool's base registry.
        """
        target = registry if registry is not None else self.registry
        value = self.get(key, kind=kind, registry=registry)
        if value is not None:
            return value
        value = loader()
        if callable(cost):
            cost_bytes = cost(value)
        elif cost is None:
            cost_bytes = len(value)  # type: ignore[arg-type]
        else:
            cost_bytes = cost
        self.put(key, value, cost_bytes, kind=kind)
        target.inc("loads")
        if kind is not None:
            target.inc(f"{kind}_loads")
        # Span attribution: an active tracer sees which span triggered
        # the load, by kind.
        tracing.note(f"{kind}_loads" if kind is not None else "loads")
        return value

    # -- pinning -----------------------------------------------------------

    def pin(self, key: Hashable, value, cost_bytes: int) -> None:
        """Keep ``value`` resident outside the LRU budget until unpinned."""
        index = self._stripe(key)
        with self._locks[index]:
            dropped = self._caches[index].pop(key) is not None
        if dropped:  # never hold a pinned key twice
            _profile.buffer_drop(self, key)
        with self._pin_lock:
            previous = self._pinned.get(key)
            if previous is not None:
                self._pinned_bytes -= previous[1]
            self._pinned[key] = (value, cost_bytes)
            self._pinned_bytes += cost_bytes

    def unpin(self, key: Hashable) -> None:
        """Release a pinned entry (dropped, not demoted to the LRU)."""
        with self._pin_lock:
            entry = self._pinned.pop(key, None)
            if entry is not None:
                self._pinned_bytes -= entry[1]

    def invalidate(self, key: Hashable) -> None:
        """Drop ``key`` without eviction accounting (after an in-place write)."""
        index = self._stripe(key)
        with self._locks[index]:
            dropped = self._caches[index].pop(key) is not None
        if dropped:
            _profile.buffer_drop(self, key)

    # -- maintenance -------------------------------------------------------

    def _lock_all(self) -> list[threading.RLock]:
        # Whole-pool operations take every stripe lock in index order so
        # two concurrent maintenance calls cannot deadlock.
        for lock in self._locks:
            lock.acquire()
        return self._locks

    def _unlock_all(self) -> None:
        for lock in reversed(self._locks):
            lock.release()

    def clear(self, record: bool = True) -> None:
        """Drop every unpinned entry.

        ``record=True`` (cold-cache resets) counts the drops as evictions
        and fires the owner's eviction callback, matching the unload
        instrumentation of an actual buffer-pressure eviction;
        ``record=False`` discards silently (resize protocol).
        """
        self._lock_all()
        try:
            if record:
                for cache in self._caches:
                    cache.clear()
            else:
                self._caches = [
                    LRUCache(budget, on_evict=self._evicted)
                    for budget in _split_budget(
                        self._capacity_bytes, self._stripes
                    )
                ]
        finally:
            self._unlock_all()
        _profile.buffer_drop(self)

    def set_buffer_bytes(self, capacity_bytes: int) -> None:
        """Uniform resize protocol: new budget, cache dropped, pins kept.

        Raises :class:`~repro.errors.BufferCapacityError` when the new
        budget is below :attr:`pinned_bytes`: pinned roots are resident
        whatever the budget, so a budget that cannot cover them would
        leave the capacity accounting negative — the Figure 12 sweep
        treats such a point as infeasible rather than measurable.
        """
        with self._pin_lock:
            pinned_bytes = self._pinned_bytes
        if capacity_bytes < pinned_bytes:
            raise BufferCapacityError(
                f"cannot shrink buffer budget to {capacity_bytes} bytes: "
                f"{pinned_bytes} bytes are pinned (supernode graph, root "
                f"pages); the budget must at least cover the pinned floor"
            )
        self._lock_all()
        try:
            self._capacity_bytes = capacity_bytes
            self._caches = [
                LRUCache(budget, on_evict=self._evicted)
                for budget in _split_budget(capacity_bytes, self._stripes)
            ]
        finally:
            self._unlock_all()
        _profile.buffer_drop(self)

    # -- introspection -----------------------------------------------------

    @property
    def stripes(self) -> int:
        """Number of independent LRU segments."""
        return self._stripes

    @property
    def capacity_bytes(self) -> int:
        """Configured LRU byte budget (pins live outside it)."""
        return self._capacity_bytes

    @property
    def used_bytes(self) -> int:
        """Bytes held by unpinned entries (summed over stripes)."""
        return sum(cache.used_bytes for cache in self._caches)

    @property
    def pinned_bytes(self) -> int:
        """Bytes held by pinned entries."""
        with self._pin_lock:
            return self._pinned_bytes

    def check_invariants(self) -> None:
        """Verify capacity/pinned accounting; raises ``StorageError``.

        Checked under all locks, so it is safe to call from a watchdog
        thread while readers hammer the pool:

        * each stripe's ``used_bytes`` equals the sum of its entry costs
          and respects its budget (one over-budget entry may sit alone,
          matching :class:`~repro.util.lru.LRUCache` admission);
        * ``pinned_bytes`` equals the sum of pinned entry costs;
        * no key is both pinned and cached.
        """
        self._lock_all()
        try:
            with self._pin_lock:
                pinned_sum = sum(
                    cost for _value, cost in self._pinned.values()
                )
                if pinned_sum != self._pinned_bytes:
                    raise StorageError(
                        f"pinned accounting drifted: tracked "
                        f"{self._pinned_bytes}, actual {pinned_sum}"
                    )
                pinned_keys = set(self._pinned)
            for index, cache in enumerate(self._caches):
                overlap = pinned_keys.intersection(cache.keys())
                if overlap:
                    raise StorageError(
                        f"key(s) both pinned and cached: {sorted(map(str, overlap))}"
                    )
                if cache.used_bytes > cache.capacity_bytes and len(cache) > 1:
                    raise StorageError(
                        f"stripe {index} over budget with multiple entries: "
                        f"{cache.used_bytes} > {cache.capacity_bytes}"
                    )
        finally:
            self._unlock_all()

    def stats(self) -> dict[str, int]:
        """Occupancy plus the registry's hit/miss/eviction counters.

        Counters aggregate over the base registry and any live session
        registries (``get_total``), so the totals stay meaningful whether
        reads went through the pool directly or through sessions.
        """
        return {
            "hits": self.registry.get_total("buffer_hits"),
            "pinned_hits": self.registry.get_total("buffer_pinned_hits"),
            "misses": self.registry.get_total("buffer_misses"),
            "evictions": self.registry.get_total("buffer_evictions"),
            "entries": sum(len(cache) for cache in self._caches),
            "used_bytes": self.used_bytes,
            "capacity_bytes": self._capacity_bytes,
            "pinned_entries": len(self._pinned),
            "pinned_bytes": self.pinned_bytes,
        }
