"""Counted I/O devices: every ``open``/``seek``/``read`` lives here.

The paper's seek-counting rule — *a read that does not continue at the
previous read's end offset on the same file is one disk seek* — is
implemented exactly once, in :meth:`CountedFile.read_at`.  All
representations (S-Node payload files, heap file, B+tree index files,
Link3 blocks, the flat adjacency file) read through a :class:`CountedFile`
or its paged wrapper :class:`PageDevice`, charging ``bytes_read`` /
``disk_seeks`` to a shared :class:`~repro.storage.metrics.MetricsRegistry`
so cross-scheme comparisons use one cost model.
"""

from __future__ import annotations

from pathlib import Path
from typing import BinaryIO

from repro.errors import StorageError
from repro.obs.profile import trace as _profile
from repro.storage.metrics import MetricsRegistry


class CountedFile:
    """One on-disk file with metered reads and writes.

    Reads go through a persistent handle; the device remembers where the
    previous read ended and counts a ``disk_seeks`` whenever the next read
    starts elsewhere (the linear-layout benefit of Figure 8 is measured by
    exactly this rule).  Writes are metered as ``bytes_written`` but do not
    participate in seek accounting — the experiments measure read paths.
    """

    def __init__(
        self, path: Path | str, registry: MetricsRegistry | None = None
    ) -> None:
        self._path = Path(path)
        self.registry = registry if registry is not None else MetricsRegistry()
        self._handle: BinaryIO | None = None
        self._last_read_end: int | None = None

    @property
    def path(self) -> Path:
        """Backing file path."""
        return self._path

    def _reader(self) -> BinaryIO:
        if self._handle is None:
            if not self._path.exists():
                raise StorageError(f"no such file: {self._path}")
            self._handle = open(self._path, "rb")
        return self._handle

    # -- reads -------------------------------------------------------------

    def read_at(self, offset: int, length: int) -> bytes:
        """Read exactly ``length`` bytes at ``offset``, metering the I/O."""
        if offset < 0 or length < 0:
            raise StorageError(f"bad read range ({offset}, {length})")
        seek = self._last_read_end != offset
        if seek:
            self.registry.inc("disk_seeks")
        _profile.io_read(self._path, offset, length, seek)
        handle = self._reader()
        handle.seek(offset)
        data = handle.read(length)
        if len(data) != length:
            raise StorageError(
                f"short read from {self._path.name}: wanted {length} bytes "
                f"at offset {offset}, got {len(data)}"
            )
        self._last_read_end = offset + length
        self.registry.inc("bytes_read", length)
        return data

    def forget_position(self) -> None:
        """Forget the last read offset so the next read counts as a seek.

        Called by cold-cache resets: dropping buffers models a disk head
        whose position is unknown.
        """
        self._last_read_end = None
        _profile.position_forgotten(self._path)

    # -- writes ------------------------------------------------------------

    def write_at(self, offset: int, data: bytes) -> None:
        """Overwrite ``data`` at ``offset`` (file must exist)."""
        with open(self._path, "r+b") as handle:
            handle.seek(offset)
            handle.write(data)
        self.registry.inc("bytes_written", len(data))

    def append(self, data: bytes) -> int:
        """Append ``data``; returns the offset it was written at."""
        offset = self.size_bytes()
        with open(self._path, "ab") as handle:
            handle.write(data)
        self.registry.inc("bytes_written", len(data))
        return offset

    # -- lifecycle ---------------------------------------------------------

    def size_bytes(self) -> int:
        """Current file size."""
        return self._path.stat().st_size if self._path.exists() else 0

    def close(self) -> None:
        """Close the persistent read handle (reopened lazily if needed)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None
        self._last_read_end = None

    def __enter__(self) -> "CountedFile":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class PageDevice:
    """Fixed-size-page view over a :class:`CountedFile`.

    The unit of transfer for the heap file and the B+tree index files;
    page reads inherit the counted-seek rule from the underlying file.
    """

    def __init__(
        self,
        path: Path | str,
        page_size: int,
        registry: MetricsRegistry | None = None,
    ) -> None:
        if page_size <= 0:
            raise ValueError(f"page size must be > 0, got {page_size}")
        self._file = CountedFile(path, registry)
        self._page_size = page_size

    @property
    def path(self) -> Path:
        """Backing file path."""
        return self._file.path

    @property
    def page_size(self) -> int:
        """Bytes per page."""
        return self._page_size

    @property
    def registry(self) -> MetricsRegistry:
        """The metrics registry charged for this device's I/O."""
        return self._file.registry

    @property
    def num_pages(self) -> int:
        """Whole pages currently in the file."""
        return self._file.size_bytes() // self._page_size

    def read_page(self, page_number: int) -> bytes:
        """Read one full page."""
        if page_number < 0:
            raise StorageError(f"page {page_number} out of range")
        _profile.page_read(self._file.path, page_number)
        return self._file.read_at(
            page_number * self._page_size, self._page_size
        )

    def write_page(self, page_number: int, data: bytes) -> None:
        """Overwrite one page in place."""
        if len(data) != self._page_size:
            raise StorageError(
                f"page write must be exactly {self._page_size} bytes"
            )
        self._file.write_at(page_number * self._page_size, data)

    def append_page(self, data: bytes) -> int:
        """Append one page; returns its page number."""
        if len(data) != self._page_size:
            raise StorageError(
                f"page write must be exactly {self._page_size} bytes"
            )
        offset = self._file.append(data)
        return offset // self._page_size

    def forget_position(self) -> None:
        """See :meth:`CountedFile.forget_position`."""
        self._file.forget_position()

    def size_bytes(self) -> int:
        """Current file size."""
        return self._file.size_bytes()

    def close(self) -> None:
        """Close the underlying file handle."""
        self._file.close()

    def __enter__(self) -> "PageDevice":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
