"""Counted I/O devices: every ``open``/``seek``/``read`` lives here.

The paper's seek-counting rule — *a read that does not continue at the
previous read's end offset on the same file is one disk seek* — is
implemented exactly once, in :meth:`CountedFile.read_at`.  All
representations (S-Node payload files, heap file, B+tree index files,
Link3 blocks, the flat adjacency file) read through a :class:`CountedFile`
or its paged wrapper :class:`PageDevice`, charging ``bytes_read`` /
``disk_seeks`` to a shared :class:`~repro.storage.metrics.MetricsRegistry`
so cross-scheme comparisons use one cost model.

Reads are *positional* (``os.pread``): a read never moves a shared file
offset, so any number of sessions can read one device concurrently
without racing on the cursor.  The only shared read-path state is the
seek-accounting watermark (where the previous read ended), which models
the single disk head per file and is updated atomically under a small
lock; under interleaved readers the seek count reflects the actual
interleaving, exactly as one head servicing many clients would.
"""

from __future__ import annotations

import errno
import os
import threading
import time
from pathlib import Path

from repro.errors import CorruptionError, StorageError
from repro.obs.profile import trace as _profile
from repro.storage import faults, integrity
from repro.storage.metrics import MetricsRegistry


class CountedFile:
    """One on-disk file with metered reads and writes.

    Reads go through a persistent descriptor; the device remembers where
    the previous read ended and counts a ``disk_seeks`` whenever the next
    read starts elsewhere (the linear-layout benefit of Figure 8 is
    measured by exactly this rule).  Writes are metered as
    ``bytes_written`` but do not participate in seek accounting — the
    experiments measure read paths.
    """

    def __init__(
        self, path: Path | str, registry: MetricsRegistry | None = None
    ) -> None:
        self._path = Path(path)
        self.registry = registry if registry is not None else MetricsRegistry()
        self._fd: int | None = None
        self._last_read_end: int | None = None
        # Guards the descriptor and the seek watermark; never held across
        # the actual pread, so concurrent reads overlap on the device.
        self._lock = threading.Lock()

    @property
    def path(self) -> Path:
        """Backing file path."""
        return self._path

    def _descriptor(self) -> int:
        # Callers hold self._lock.
        if self._fd is None:
            if not self._path.exists():
                raise StorageError(f"no such file: {self._path}")
            self._fd = os.open(self._path, os.O_RDONLY)
        return self._fd

    # -- reads -------------------------------------------------------------

    def read_at(
        self,
        offset: int,
        length: int,
        registry: MetricsRegistry | None = None,
    ) -> bytes:
        """Read exactly ``length`` bytes at ``offset``, metering the I/O.

        ``registry`` (a session's) is charged for ``bytes_read`` /
        ``disk_seeks`` / ``io_retries`` instead of the device's own.

        Transient ``EIO`` errors and short reads are retried up to
        :data:`repro.storage.faults.READ_RETRY_LIMIT` times with a small
        exponential backoff — each retry counts one ``io_retries`` in the
        registry.  A read that stays short after the retries raises a
        :class:`StorageError`; a transient error that never clears raises
        a :class:`StorageError` wrapping the last ``OSError``.
        """
        if offset < 0 or length < 0:
            raise StorageError(f"bad read range ({offset}, {length})")
        target = registry if registry is not None else self.registry
        with self._lock:
            seek = self._last_read_end != offset
            # Optimistically advance the watermark: positional reads do
            # not block each other, so the head position is claimed up
            # front; a failed read resets it (position unknown).
            self._last_read_end = offset + length
        if seek:
            target.inc("disk_seeks")
        _profile.io_read(self._path, offset, length, seek)
        try:
            data = self._read_with_retry(offset, length, target)
        except Exception:
            with self._lock:
                self._last_read_end = None
            raise
        if len(data) != length:
            with self._lock:
                self._last_read_end = None
            raise StorageError(
                f"short read from {self._path.name}: wanted {length} bytes "
                f"at offset {offset}, got {len(data)}"
            )
        target.inc("bytes_read", length)
        return data

    def _read_with_retry(
        self, offset: int, length: int, registry: MetricsRegistry
    ) -> bytes:
        attempt = 0
        while True:
            error: OSError | None = None
            data = b""
            try:
                with self._lock:
                    fd = self._descriptor()
                data = os.pread(fd, length, offset)
                data = faults.on_read(self._path, offset, data, registry)
            except OSError as exc:
                if exc.errno != errno.EIO:
                    raise
                error = exc
            if error is None and len(data) == length:
                return data
            if error is None and faults.active_plan() is None:
                return data  # a genuine EOF short read is not transient
            if attempt >= faults.READ_RETRY_LIMIT:
                if error is not None:
                    raise StorageError(
                        f"read from {self._path.name} at offset {offset} still "
                        f"failing after {attempt} retries: {error}"
                    ) from error
                return data  # persistently short: caller reports it
            attempt += 1
            registry.inc("io_retries")
            time.sleep(faults.READ_RETRY_BACKOFF_S * (1 << (attempt - 1)))

    def forget_position(self) -> None:
        """Forget the last read offset so the next read counts as a seek.

        Called by cold-cache resets: dropping buffers models a disk head
        whose position is unknown.
        """
        with self._lock:
            self._last_read_end = None
        _profile.position_forgotten(self._path)

    # -- writes ------------------------------------------------------------

    def _invalidate_read_position(self, offset: int, length: int) -> None:
        # A write landing on the cached read-end moves the head there for
        # writing, so treating the next read as sequential would undercount
        # seeks; forget the position and let the next read pay honestly.
        with self._lock:
            if (
                self._last_read_end is not None
                and offset <= self._last_read_end <= offset + length
            ):
                self._last_read_end = None

    def write_at(self, offset: int, data: bytes) -> None:
        """Overwrite ``data`` at ``offset`` (file must exist)."""
        if not self._path.exists():
            raise StorageError(
                f"cannot write at offset {offset}: no such file {self._path}"
            )

        def writer(chunk: bytes) -> None:
            with open(self._path, "r+b") as handle:
                handle.seek(offset)
                handle.write(chunk)

        faults.guarded_write(self._path, data, writer)
        self.registry.inc("bytes_written", len(data))
        self._invalidate_read_position(offset, len(data))

    def append(self, data: bytes) -> int:
        """Append ``data``; returns the offset it was written at."""
        offset = self.size_bytes()

        def writer(chunk: bytes) -> None:
            with open(self._path, "ab") as handle:
                handle.write(chunk)

        faults.guarded_write(self._path, data, writer)
        self.registry.inc("bytes_written", len(data))
        self._invalidate_read_position(offset, len(data))
        return offset

    # -- lifecycle ---------------------------------------------------------

    def size_bytes(self) -> int:
        """Current file size."""
        return self._path.stat().st_size if self._path.exists() else 0

    def close(self) -> None:
        """Close the persistent descriptor (reopened lazily if needed)."""
        with self._lock:
            if self._fd is not None:
                os.close(self._fd)
                self._fd = None
            self._last_read_end = None

    def __enter__(self) -> "CountedFile":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class PageDevice:
    """Fixed-size-page view over a :class:`CountedFile`.

    The unit of transfer for the heap file and the B+tree index files;
    page reads inherit the counted-seek rule from the underlying file.

    When a page-checksum sidecar (``<file>.crc``) exists next to the
    backing file it is attached automatically: every ``read_page``
    verifies its page's CRC32 (mismatch raises
    :class:`~repro.errors.CorruptionError`), and page writes keep the
    sidecar current on disk immediately, so a writer that is never
    cleanly closed still leaves a consistent (file, sidecar) pair.
    Builders writing a file from scratch run without a sidecar and
    create it once at the end (see
    :func:`repro.storage.integrity.page_checksums_of_file`).
    """

    def __init__(
        self,
        path: Path | str,
        page_size: int,
        registry: MetricsRegistry | None = None,
    ) -> None:
        if page_size <= 0:
            raise ValueError(f"page size must be > 0, got {page_size}")
        self._file = CountedFile(path, registry)
        self._page_size = page_size
        self._checksums: list[int] | None = integrity.read_page_checksums(
            self._file.path
        )
        self._checksums_dirty = False

    @property
    def path(self) -> Path:
        """Backing file path."""
        return self._file.path

    @property
    def page_size(self) -> int:
        """Bytes per page."""
        return self._page_size

    @property
    def registry(self) -> MetricsRegistry:
        """The metrics registry charged for this device's I/O."""
        return self._file.registry

    @property
    def num_pages(self) -> int:
        """Whole pages currently in the file."""
        return self._file.size_bytes() // self._page_size

    def read_page(
        self, page_number: int, registry: MetricsRegistry | None = None
    ) -> bytes:
        """Read one full page, verifying its checksum when attached.

        ``registry`` attributes the read to a session instead of the
        device's own registry (see :meth:`CountedFile.read_at`).
        """
        if page_number < 0:
            raise StorageError(f"page {page_number} out of range")
        _profile.page_read(self._file.path, page_number)
        data = self._file.read_at(
            page_number * self._page_size, self._page_size, registry=registry
        )
        if self._checksums is not None and page_number < len(self._checksums):
            actual = integrity.crc32(data)
            expected = self._checksums[page_number]
            if actual != expected:
                raise CorruptionError(
                    f"{self._file.path.name}: page {page_number} checksum "
                    f"mismatch (stored {expected:#010x}, read {actual:#010x})"
                )
        return data

    def write_page(self, page_number: int, data: bytes) -> None:
        """Overwrite one page in place."""
        if len(data) != self._page_size:
            raise StorageError(
                f"page write must be exactly {self._page_size} bytes"
            )
        self._file.write_at(page_number * self._page_size, data)
        if self._checksums is not None and page_number < len(self._checksums):
            self._checksums[page_number] = integrity.crc32(data)
            self._checksums_dirty = True
            self.flush_checksums()

    def append_page(self, data: bytes) -> int:
        """Append one page; returns its page number."""
        if len(data) != self._page_size:
            raise StorageError(
                f"page write must be exactly {self._page_size} bytes"
            )
        offset = self._file.append(data)
        if self._checksums is not None:
            self._checksums.append(integrity.crc32(data))
            self._checksums_dirty = True
            self.flush_checksums()
        return offset // self._page_size

    def flush_checksums(self) -> None:
        """Rewrite the sidecar if in-place writes changed any page CRC."""
        if self._checksums is not None and self._checksums_dirty:
            from repro.storage import atomic

            sidecar = integrity.sidecar_path(self._file.path)
            atomic.write_file(
                sidecar, integrity.encode_page_checksums(self._checksums)
            )
            self._checksums_dirty = False

    def forget_position(self) -> None:
        """See :meth:`CountedFile.forget_position`."""
        self._file.forget_position()

    def size_bytes(self) -> int:
        """Current file size."""
        return self._file.size_bytes()

    def close(self) -> None:
        """Flush any dirty checksums and close the underlying file handle."""
        self.flush_checksums()
        self._file.close()

    def __enter__(self) -> "PageDevice":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
