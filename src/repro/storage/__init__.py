"""Shared storage engine: counted I/O devices, buffer pool, metrics.

Every graph representation in this repository performs its disk I/O,
byte-budgeted caching and instrumentation through the three layers of
this package:

* :mod:`repro.storage.device` — :class:`CountedFile` / :class:`PageDevice`
  own every ``open``/``seek``/``read`` and implement the paper's
  seek-counting rule exactly once;
* :mod:`repro.storage.bufferpool` — :class:`BufferPool` is the byte-budgeted
  buffer manager (LRU + pinning + typed load accounting) shared by the
  S-Node store, the mini relational database and the Link3 block cache;
* :mod:`repro.storage.metrics` — :class:`MetricsRegistry` holds the named
  counters/timers, distinct-key tallies and the bounded event log that
  experiments read through ``GraphRepresentation.io_stats()``.

Because all representations meter through the same layer, cross-scheme
comparisons (Table 2, Figures 11-12) rest on a single cost model.
"""

from repro.storage.bufferpool import BufferPool
from repro.storage.device import CountedFile, PageDevice
from repro.storage.metrics import EventLog, MetricsRegistry

__all__ = [
    "BufferPool",
    "CountedFile",
    "EventLog",
    "MetricsRegistry",
    "PageDevice",
]
