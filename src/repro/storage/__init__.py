"""Shared storage engine: counted I/O devices, buffer pool, metrics.

Every graph representation in this repository performs its disk I/O,
byte-budgeted caching and instrumentation through the three layers of
this package:

* :mod:`repro.storage.device` — :class:`CountedFile` / :class:`PageDevice`
  own every ``open``/``seek``/``read`` and implement the paper's
  seek-counting rule exactly once;
* :mod:`repro.storage.bufferpool` — :class:`BufferPool` is the byte-budgeted
  buffer manager (LRU + pinning + typed load accounting) shared by the
  S-Node store, the mini relational database and the Link3 block cache;
* :mod:`repro.storage.metrics` — :class:`MetricsRegistry` holds the named
  counters/timers, distinct-key tallies and the bounded event log that
  experiments read through ``GraphRepresentation.io_stats()``.

Because all representations meter through the same layer, cross-scheme
comparisons (Table 2, Figures 11-12) rest on a single cost model.

The hardening layer rides on the same choke points:

* :mod:`repro.storage.faults` — seeded, deterministic fault injection
  (bit flips, short reads, transient ``EIO``, torn writes, simulated
  crashes) under the device read/write paths;
* :mod:`repro.storage.integrity` — CRC32 frame codec, page-checksum
  sidecars and whole-build digests;
* :mod:`repro.storage.atomic` — the tmp-dir / fsync / manifest-last /
  rename build protocol every builder commits through;
* :mod:`repro.storage.fsck` — offline verification (and quarantine
  repair) of any stored representation, behind ``repro fsck``.
"""

from repro.storage.atomic import BuildTransaction, classify_build
from repro.storage.bufferpool import BufferPool
from repro.storage.device import CountedFile, PageDevice
from repro.storage.faults import FaultPlan, SimulatedCrash, activated
from repro.storage.fsck import FsckReport, fsck
from repro.storage.metrics import EventLog, MetricsRegistry

__all__ = [
    "BufferPool",
    "BuildTransaction",
    "CountedFile",
    "EventLog",
    "FaultPlan",
    "FsckReport",
    "MetricsRegistry",
    "PageDevice",
    "SimulatedCrash",
    "activated",
    "classify_build",
    "fsck",
]
