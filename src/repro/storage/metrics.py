"""Named counters, timers, distinct-key tallies and a bounded event log.

One :class:`MetricsRegistry` instance is owned by each representation (or
shared between a representation and its devices/buffer pool).  Everything
the experiments read — ``bytes_read``, ``disk_seeks``, buffer
hits/misses/evictions, loads by graph kind, navigation timers — flows
through it, so ``io_stats()`` has the same meaning for every scheme.

The event log is a bounded ring buffer (it replaces the unbounded
``StoreStats.events`` list): long-running workloads keep only the most
recent events, while the section-4.3 "graphs touched per query" analysis
is served by the distinct-key tallies, which are plain counters and never
grow with the event volume.
"""

from __future__ import annotations

import time
from collections import deque
from contextlib import contextmanager
from typing import Iterator

#: Default number of events the ring buffer retains.
DEFAULT_EVENT_CAPACITY = 4096

#: Counter names that ``io_stats()`` is expected to expose for any scheme
#: that touches disk (all are zero until the first read).
IO_COUNTERS = ("bytes_read", "disk_seeks")


class EventLog:
    """Bounded ring buffer of ``(kind, key)`` instrumentation events.

    Appending beyond the capacity drops the oldest events and counts them
    in :attr:`dropped`; analyses that must see *every* load therefore use
    the registry's distinct-key tallies instead of replaying the log.
    """

    def __init__(self, capacity: int = DEFAULT_EVENT_CAPACITY) -> None:
        if capacity <= 0:
            raise ValueError(f"event capacity must be > 0, got {capacity}")
        self._capacity = capacity
        self._events: deque[tuple[str, tuple]] = deque(maxlen=capacity)
        self.dropped = 0

    @property
    def capacity(self) -> int:
        """Maximum number of retained events."""
        return self._capacity

    def append(self, kind: str, key: tuple = ()) -> None:
        """Record one event, evicting the oldest if the buffer is full."""
        if len(self._events) == self._capacity:
            self.dropped += 1
        self._events.append((kind, key))

    def __iter__(self) -> Iterator[tuple[str, tuple]]:
        return iter(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, EventLog):
            return list(self) == list(other)
        if isinstance(other, list):
            return list(self) == other
        return NotImplemented

    def to_list(self) -> list[tuple[str, tuple]]:
        """Retained events, oldest first."""
        return list(self._events)

    def clear(self) -> None:
        """Drop every retained event and zero the dropped counter."""
        self._events.clear()
        self.dropped = 0


class MetricsRegistry:
    """Registry of named counters, timers and distinct-key tallies.

    * ``inc(name)`` / ``get(name)`` — integer counters;
    * ``add_time(name)`` / ``timer(name)`` — accumulated seconds;
    * ``mark(name, key)`` / ``distinct(name)`` — distinct-key tallies
      (how many *different* intranode graphs were loaded, etc.);
    * ``record(kind, key)`` — bounded event log (see :class:`EventLog`);
    * ``snapshot()`` / ``diff()`` / ``reset()`` — experiment protocol.
    """

    def __init__(self, event_capacity: int = DEFAULT_EVENT_CAPACITY) -> None:
        self._counters: dict[str, int] = {}
        self._timers: dict[str, float] = {}
        self._distinct: dict[str, set] = {}
        self.events = EventLog(event_capacity)

    # -- counters ----------------------------------------------------------

    def inc(self, name: str, amount: int = 1) -> None:
        """Add ``amount`` to counter ``name`` (created at zero)."""
        self._counters[name] = self._counters.get(name, 0) + amount

    def get(self, name: str) -> int:
        """Current value of counter ``name`` (zero if never incremented)."""
        return self._counters.get(name, 0)

    # -- timers ------------------------------------------------------------

    def add_time(self, name: str, seconds: float) -> None:
        """Accumulate ``seconds`` into timer ``name``."""
        self._timers[name] = self._timers.get(name, 0.0) + seconds

    def get_time(self, name: str) -> float:
        """Accumulated seconds of timer ``name``."""
        return self._timers.get(name, 0.0)

    @contextmanager
    def timer(self, name: str):
        """Context manager accumulating wall time into timer ``name``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.add_time(name, time.perf_counter() - start)

    # -- distinct-key tallies ----------------------------------------------

    def mark(self, name: str, key) -> bool:
        """Note that ``key`` was touched under tally ``name``.

        Returns True the first time ``key`` is seen since the last reset.
        """
        seen = self._distinct.setdefault(name, set())
        if key in seen:
            return False
        seen.add(key)
        return True

    def distinct(self, name: str) -> int:
        """Number of distinct keys marked under ``name``."""
        return len(self._distinct.get(name, ()))

    def distinct_keys(self, name: str) -> set:
        """The distinct keys marked under ``name`` (a copy)."""
        return set(self._distinct.get(name, ()))

    # -- events ------------------------------------------------------------

    def record(self, kind: str, key: tuple = ()) -> None:
        """Append one event to the bounded log."""
        self.events.append(kind, key)

    # -- experiment protocol -----------------------------------------------

    def io_stats(self) -> dict[str, int]:
        """All integer counters (the ``GraphRepresentation.io_stats`` view)."""
        return dict(self._counters)

    def snapshot(self) -> dict[str, float]:
        """Flat view: counters, ``time_<name>`` timers and
        ``distinct_<name>`` tallies.

        Timers and tallies are namespaced so a counter and a timer (or
        tally) sharing a base name cannot silently overwrite each other
        in the flat dict.
        """
        out: dict[str, float] = dict(self._counters)
        for name, seconds in self._timers.items():
            out[f"time_{name}"] = seconds
        for name, keys in self._distinct.items():
            out[f"distinct_{name}"] = len(keys)
        return out

    @staticmethod
    def diff(
        before: dict[str, float], after: dict[str, float]
    ) -> dict[str, float]:
        """Per-name deltas between two :meth:`snapshot` results."""
        names = set(before) | set(after)
        return {
            name: after.get(name, 0) - before.get(name, 0) for name in names
        }

    def reset(self) -> None:
        """Zero every counter, timer and tally; clear the event log."""
        self._counters.clear()
        self._timers.clear()
        self._distinct.clear()
        self.events.clear()
