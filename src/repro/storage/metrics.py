"""Named counters, timers, distinct-key tallies and a bounded event log.

One :class:`MetricsRegistry` instance is owned by each representation (or
shared between a representation and its devices/buffer pool).  Everything
the experiments read — ``bytes_read``, ``disk_seeks``, buffer
hits/misses/evictions, loads by graph kind, navigation timers — flows
through it, so ``io_stats()`` has the same meaning for every scheme.

The event log is a bounded ring buffer (it replaces the unbounded
``StoreStats.events`` list): long-running workloads keep only the most
recent events, while the section-4.3 "graphs touched per query" analysis
is served by the distinct-key tallies, which are plain counters and never
grow with the event volume.

**Sessions.** Concurrent readers over one shared store each accumulate
into their own *child* registry (:meth:`MetricsRegistry.child`): the
child is thread-confined, so its hot-path increments are uncontended and
need no coordination, and a client's I/O is attributable to exactly that
client.  :meth:`merge` folds a child back into its parent (done when a
session closes), and the ``*_total`` accessors aggregate a parent with
its still-live children — by construction, per-client metrics sum to the
shared totals.  Mutators on a single registry take its internal lock, so
the rare genuinely shared counters (buffer evictions, quarantine events)
stay exact when charged from several threads.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from contextlib import contextmanager
from typing import Iterator

#: Default number of events the ring buffer retains.
DEFAULT_EVENT_CAPACITY = 4096

#: Counter names that ``io_stats()`` is expected to expose for any scheme
#: that touches disk (all are zero until the first read).
IO_COUNTERS = ("bytes_read", "disk_seeks")


class EventLog:
    """Bounded ring buffer of ``(kind, key)`` instrumentation events.

    Appending beyond the capacity drops the oldest events and counts them
    in :attr:`dropped`; analyses that must see *every* load therefore use
    the registry's distinct-key tallies instead of replaying the log.
    """

    def __init__(self, capacity: int = DEFAULT_EVENT_CAPACITY) -> None:
        if capacity <= 0:
            raise ValueError(f"event capacity must be > 0, got {capacity}")
        self._capacity = capacity
        self._events: deque[tuple[str, tuple]] = deque(maxlen=capacity)
        self.dropped = 0

    @property
    def capacity(self) -> int:
        """Maximum number of retained events."""
        return self._capacity

    def append(self, kind: str, key: tuple = ()) -> None:
        """Record one event, evicting the oldest if the buffer is full."""
        if len(self._events) == self._capacity:
            self.dropped += 1
        self._events.append((kind, key))

    def __iter__(self) -> Iterator[tuple[str, tuple]]:
        return iter(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, EventLog):
            return list(self) == list(other)
        if isinstance(other, list):
            return list(self) == other
        return NotImplemented

    def to_list(self) -> list[tuple[str, tuple]]:
        """Retained events, oldest first."""
        return list(self._events)

    def clear(self) -> None:
        """Drop every retained event and zero the dropped counter."""
        self._events.clear()
        self.dropped = 0


class MetricsRegistry:
    """Registry of named counters, timers and distinct-key tallies.

    * ``inc(name)`` / ``get(name)`` — integer counters;
    * ``add_time(name)`` / ``timer(name)`` — accumulated seconds;
    * ``mark(name, key)`` / ``distinct(name)`` — distinct-key tallies
      (how many *different* intranode graphs were loaded, etc.);
    * ``record(kind, key)`` — bounded event log (see :class:`EventLog`);
    * ``child()`` / ``merge()`` / ``get_total()`` — session protocol
      (per-client accumulation that sums back to shared totals);
    * ``snapshot()`` / ``diff()`` / ``reset()`` — experiment protocol.
    """

    def __init__(
        self,
        event_capacity: int = DEFAULT_EVENT_CAPACITY,
        label: str | None = None,
    ) -> None:
        self._counters: dict[str, int] = {}
        self._timers: dict[str, float] = {}
        self._distinct: dict[str, set] = {}
        self.events = EventLog(event_capacity)
        self.label = label
        self._lock = threading.RLock()
        self._children: list[MetricsRegistry] = []

    # -- counters ----------------------------------------------------------

    def inc(self, name: str, amount: int = 1) -> None:
        """Add ``amount`` to counter ``name`` (created at zero)."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + amount

    def get(self, name: str) -> int:
        """Current value of counter ``name`` (zero if never incremented)."""
        return self._counters.get(name, 0)

    # -- timers ------------------------------------------------------------

    def add_time(self, name: str, seconds: float) -> None:
        """Accumulate ``seconds`` into timer ``name``."""
        with self._lock:
            self._timers[name] = self._timers.get(name, 0.0) + seconds

    def get_time(self, name: str) -> float:
        """Accumulated seconds of timer ``name``."""
        return self._timers.get(name, 0.0)

    @contextmanager
    def timer(self, name: str):
        """Context manager accumulating wall time into timer ``name``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.add_time(name, time.perf_counter() - start)

    # -- distinct-key tallies ----------------------------------------------

    def mark(self, name: str, key) -> bool:
        """Note that ``key`` was touched under tally ``name``.

        Returns True the first time ``key`` is seen since the last reset.
        """
        with self._lock:
            seen = self._distinct.setdefault(name, set())
            if key in seen:
                return False
            seen.add(key)
            return True

    def distinct(self, name: str) -> int:
        """Number of distinct keys marked under ``name``."""
        return len(self._distinct.get(name, ()))

    def distinct_keys(self, name: str) -> set:
        """The distinct keys marked under ``name`` (a copy)."""
        return set(self._distinct.get(name, ()))

    # -- events ------------------------------------------------------------

    def record(self, kind: str, key: tuple = ()) -> None:
        """Append one event to the bounded log."""
        with self._lock:
            self.events.append(kind, key)

    # -- sessions ----------------------------------------------------------
    #
    # A child registry is thread-confined to its session, so its hot-path
    # increments never contend; the parent tracks live children for the
    # aggregated ``*_total`` views and absorbs them on merge.

    def child(self, label: str | None = None) -> "MetricsRegistry":
        """A fresh registry whose totals roll up into this one.

        The child starts empty; the parent keeps a reference so the
        ``get_total`` / ``distinct_total`` / ``merged_snapshot`` views
        include it while the session is live.  Call :meth:`merge` with
        the child (normally via the owning session's ``close()``) to fold
        its final numbers into the parent and drop the reference.
        """
        child = MetricsRegistry(self.events.capacity, label=label)
        with self._lock:
            self._children.append(child)
        return child

    def children(self) -> "list[MetricsRegistry]":
        """Live (unmerged) child registries, in creation order."""
        with self._lock:
            return list(self._children)

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold ``other``'s counters/timers/tallies/events into this one.

        If ``other`` is a live child of this registry it is detached
        afterwards, so nothing is double-counted by the ``*_total``
        views.  Merging preserves conservation: parent totals after the
        merge equal the aggregated totals before it.
        """
        if other is self:
            return
        with other._lock:
            counters = dict(other._counters)
            timers = dict(other._timers)
            distinct = {name: set(keys) for name, keys in other._distinct.items()}
            events = other.events.to_list()
            dropped = other.events.dropped
        with self._lock:
            for name, amount in counters.items():
                self._counters[name] = self._counters.get(name, 0) + amount
            for name, seconds in timers.items():
                self._timers[name] = self._timers.get(name, 0.0) + seconds
            for name, keys in distinct.items():
                self._distinct.setdefault(name, set()).update(keys)
            self.events.dropped += dropped
            for kind, key in events:
                self.events.append(kind, key)
            if other in self._children:
                self._children.remove(other)

    def get_total(self, name: str) -> int:
        """Counter ``name`` aggregated over this registry + live children."""
        return self.get(name) + sum(
            child.get_total(name) for child in self.children()
        )

    def distinct_total(self, name: str) -> int:
        """Distinct keys under ``name`` across this registry + children."""
        keys = self.distinct_keys(name)
        for child in self.children():
            keys |= child.distinct_keys(name)
        return len(keys)

    # -- experiment protocol -----------------------------------------------

    def io_stats(self) -> dict[str, int]:
        """All integer counters (the ``GraphRepresentation.io_stats`` view)."""
        return dict(self._counters)

    def snapshot(self) -> dict[str, float]:
        """Flat view: counters, ``time_<name>`` timers and
        ``distinct_<name>`` tallies.

        Timers and tallies are namespaced so a counter and a timer (or
        tally) sharing a base name cannot silently overwrite each other
        in the flat dict.
        """
        out: dict[str, float] = dict(self._counters)
        for name, seconds in self._timers.items():
            out[f"time_{name}"] = seconds
        for name, keys in self._distinct.items():
            out[f"distinct_{name}"] = len(keys)
        return out

    def merged_snapshot(self) -> dict[str, float]:
        """Like :meth:`snapshot`, but aggregated over live children.

        Counters and timers sum; distinct tallies union their key sets —
        the same numbers a serial caller would have accumulated in one
        registry, however the work was spread across sessions.
        """
        counters: dict[str, int] = {}
        timers: dict[str, float] = {}
        distinct: dict[str, set] = {}
        self._collect(counters, timers, distinct)
        result: dict[str, float] = dict(counters)
        for name, seconds in timers.items():
            result[f"time_{name}"] = seconds
        for name, keys in distinct.items():
            result[f"distinct_{name}"] = len(keys)
        return result

    def _collect(
        self,
        counters: dict[str, int],
        timers: dict[str, float],
        distinct: dict[str, set],
    ) -> None:
        with self._lock:
            own_counters = dict(self._counters)
            own_timers = dict(self._timers)
            own_distinct = {
                name: set(keys) for name, keys in self._distinct.items()
            }
            children = list(self._children)
        for name, amount in own_counters.items():
            counters[name] = counters.get(name, 0) + amount
        for name, seconds in own_timers.items():
            timers[name] = timers.get(name, 0.0) + seconds
        for name, keys in own_distinct.items():
            distinct.setdefault(name, set()).update(keys)
        for child in children:
            child._collect(counters, timers, distinct)

    @staticmethod
    def diff(
        before: dict[str, float], after: dict[str, float]
    ) -> dict[str, float]:
        """Per-name deltas between two :meth:`snapshot` results."""
        names = set(before) | set(after)
        return {
            name: after.get(name, 0) - before.get(name, 0) for name in names
        }

    def reset(self) -> None:
        """Zero every counter, timer and tally; clear the event log.

        Live children are reset too: a reset marks the start of a
        measured phase, and a session surviving the boundary must not
        leak pre-reset work into the new totals.
        """
        with self._lock:
            self._counters.clear()
            self._timers.clear()
            self._distinct.clear()
            self.events.clear()
            children = list(self._children)
        for child in children:
            child.reset()
