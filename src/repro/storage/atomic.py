"""Atomic build protocol: tmp directory, fsync, manifest-last, rename.

Every builder (S-Node and all baselines) creates its on-disk layout
through a :class:`BuildTransaction`:

1. all files are written under ``<root>.tmp`` (each write flows through
   the fault-injection layer, so a crash-point sweep can kill the build
   at any write op);
2. the manifest is written **last**, carrying a ``files`` table (size +
   CRC32 per file) and a whole-build SHA-256 digest over that table;
3. commit fsyncs every payload file, fsyncs the tmp directory, renames
   ``<root>.tmp`` -> ``<root>`` and fsyncs the parent directory.

A crash therefore leaves exactly one of three states, which
:func:`classify_build` distinguishes on reopen:

* ``"valid"``   — the rename happened; the manifest describes the build;
* ``"partial"`` — ``<root>.tmp`` exists but ``<root>`` has no manifest:
  the build died mid-write (a previously committed build at ``<root>``
  is never touched before the rename, so it survives intact);
* ``"missing"`` — neither exists: nothing was ever built here.
"""

from __future__ import annotations

import json
import os
import shutil
from pathlib import Path

from repro.errors import StorageError
from repro.storage import faults, integrity

MANIFEST_NAME = "manifest.json"
TMP_SUFFIX = ".tmp"


def tmp_root(root: Path | str) -> Path:
    """The in-progress build directory for ``root``."""
    root = Path(root)
    return root.parent / (root.name + TMP_SUFFIX)


def fsync_file(path: Path | str) -> None:
    """fsync one file by path."""
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def fsync_dir(path: Path | str) -> None:
    """fsync a directory entry (durable renames/creates)."""
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def write_file(path: Path | str, data: bytes) -> int:
    """Write one whole file through the fault layer; returns its CRC32.

    The single choke point for builder file writes — torn writes and
    simulated crashes are injected here, and the returned CRC feeds the
    manifest's ``files`` table.
    """
    path = Path(path)

    def writer(chunk: bytes) -> None:
        with open(path, "wb") as handle:
            handle.write(chunk)
            handle.flush()

    faults.guarded_write(path, data, writer)
    return integrity.crc32(data)


def classify_build(root: Path | str) -> str:
    """``"valid"`` / ``"partial"`` / ``"missing"`` (see module docstring)."""
    root = Path(root)
    if (root / MANIFEST_NAME).exists():
        return "valid"
    if tmp_root(root).exists():
        return "partial"
    return "missing"


def require_build(root: Path | str, what: str = "build") -> None:
    """Raise a precise :class:`StorageError` unless ``root`` holds a build."""
    state = classify_build(root)
    if state == "partial":
        raise StorageError(
            f"partial {what} under {root}: an interrupted build left "
            f"{tmp_root(root).name} behind and no manifest was committed "
            "(rebuild, or remove the leftover directory)"
        )
    if state == "missing":
        raise StorageError(f"no {what} under {root}")


class BuildTransaction:
    """Write a build into ``<root>.tmp``, then atomically publish it.

    Files written through :meth:`write_file` are checksummed on the way
    down; files produced by page devices (heap, B+tree) are declared with
    :meth:`register` and checksummed from disk when the manifest is
    written.  :meth:`write_manifest` must be the last write, and
    :meth:`commit` publishes the directory.  On failure the tmp directory
    is deliberately left behind as the "partial build" marker.
    """

    def __init__(self, root: Path | str) -> None:
        self.root = Path(root)
        self.dir = tmp_root(self.root)
        if self.dir.exists():
            shutil.rmtree(self.dir)
        self.dir.mkdir(parents=True)
        self.files: dict[str, dict] = {}
        self._manifest_written = False
        self._committed = False

    def path(self, name: str) -> Path:
        """Absolute tmp path for relative file ``name``."""
        return self.dir / name

    def write_file(self, name: str, data: bytes) -> int:
        """Write ``name`` under the tmp root; returns and records its CRC."""
        crc = write_file(self.path(name), data)
        self.files[name] = {"bytes": len(data), "crc32": crc}
        return crc

    def register(self, name: str) -> None:
        """Declare a file written externally (e.g. through a page device).

        Its size and CRC are computed from disk at manifest time, after
        the device has finished writing.
        """
        self.files[name] = {}  # placeholder, filled by write_manifest

    def write_manifest(self, manifest: dict, name: str = MANIFEST_NAME) -> dict:
        """Write the manifest (last!), adding the files table and digest."""
        for file_name, entry in self.files.items():
            if not entry:
                path = self.path(file_name)
                entry["bytes"] = path.stat().st_size
                entry["crc32"] = integrity.file_crc(path)
        manifest = {
            **manifest,
            "files": self.files,
            "digest": integrity.build_digest(self.files),
        }
        write_file(self.path(name), json.dumps(manifest, indent=2).encode())
        self._manifest_written = True
        return manifest

    def commit(self) -> None:
        """fsync everything, then rename ``<root>.tmp`` -> ``<root>``.

        Counts as one write op in the fault layer's crash schedule — a
        crash "at the commit" happens before any destructive step, so an
        existing build at ``root`` survives it.
        """
        if not self._manifest_written:
            raise StorageError("commit before manifest: write_manifest() first")
        faults.commit(self.root)
        for path in sorted(self.dir.iterdir()):
            fsync_file(path)
        fsync_dir(self.dir)
        if self.root.exists():
            shutil.rmtree(self.root)
        os.rename(self.dir, self.root)
        fsync_dir(self.root.parent)
        self._committed = True

    def __enter__(self) -> "BuildTransaction":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        # On failure the tmp directory stays behind on purpose: it is the
        # evidence classify_build() reports as a partial build.
        if exc_type is None and not self._committed:
            raise StorageError("build transaction exited without commit()")
