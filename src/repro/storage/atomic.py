"""Atomic build protocol: tmp directory, fsync, manifest-last, rename.

Every builder (S-Node and all baselines) creates its on-disk layout
through a :class:`BuildTransaction`:

1. all files are written under ``<root>.tmp`` (each write flows through
   the fault-injection layer, so a crash-point sweep can kill the build
   at any write op);
2. the manifest is written **last**, carrying a ``files`` table (size +
   CRC32 per file) and a whole-build SHA-256 digest over that table;
3. commit fsyncs every payload file, fsyncs the tmp directory, renames
   ``<root>.tmp`` -> ``<root>`` and fsyncs the parent directory.

A crash therefore leaves exactly one of three states, which
:func:`classify_build` distinguishes on reopen:

* ``"valid"``   — the rename happened; the manifest describes the build;
* ``"partial"`` — ``<root>.tmp`` exists but ``<root>`` has no manifest:
  the build died mid-write (a previously committed build at ``<root>``
  is never touched before the rename, so it survives intact);
* ``"missing"`` — neither exists: nothing was ever built here.

**Stage checkpoints** extend the protocol for staged builders (the
S-Node :class:`~repro.snode.pipeline.BuildPipeline`): a transaction can
record named stages, each with a small JSON payload and an optional
artifact file under ``<root>.tmp/.stages/``.  The checkpoint registry
(``.checkpoint.json`` in the tmp dir) is replaced atomically after every
stage, so a crash mid-checkpoint leaves the previous registry intact and
the interrupted stage simply reruns.  Opening a transaction with
``resume=True`` keeps an existing tmp dir, restores its registry and
files table, and lets the builder skip every stage whose checkpoint (and
artifact checksum) still verifies.  Checkpoint state is torn down right
before the commit rename — a committed build never contains it, so a
resumed build is byte-identical to an uninterrupted one.

**Mutation sidecars.**  A committed build served mutably grows a
``graph.wal`` write-ahead log (and transiently a ``graph.wal.new``
truncation staging file) *beside* its manifest — see
:mod:`repro.storage.wal`.  These are deliberately outside the manifest's
``files`` table (they mutate after commit, the table is immutable), so
:func:`classify_build` still reports ``"valid"``: validity is defined by
the manifest's presence, never by the absence of extra files.  Their
integrity is frame-checked by ``repro fsck``'s WAL pass instead.
"""

from __future__ import annotations

import json
import os
import shutil
from pathlib import Path

from repro.errors import StorageError
from repro.storage import faults, integrity

MANIFEST_NAME = "manifest.json"
TMP_SUFFIX = ".tmp"
#: Stage-checkpoint registry inside the tmp dir (never committed).
CHECKPOINT_NAME = ".checkpoint.json"
#: Directory of stage artifacts inside the tmp dir (never committed).
STAGE_DIR_NAME = ".stages"


def tmp_root(root: Path | str) -> Path:
    """The in-progress build directory for ``root``."""
    root = Path(root)
    return root.parent / (root.name + TMP_SUFFIX)


def fsync_file(path: Path | str) -> None:
    """fsync one file by path."""
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def fsync_dir(path: Path | str) -> None:
    """fsync a directory entry (durable renames/creates)."""
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def write_file(path: Path | str, data: bytes) -> int:
    """Write one whole file through the fault layer; returns its CRC32.

    The single choke point for builder file writes — torn writes and
    simulated crashes are injected here, and the returned CRC feeds the
    manifest's ``files`` table.
    """
    path = Path(path)

    def writer(chunk: bytes) -> None:
        with open(path, "wb") as handle:
            handle.write(chunk)
            handle.flush()

    faults.guarded_write(path, data, writer)
    return integrity.crc32(data)


def classify_build(root: Path | str) -> str:
    """``"valid"`` / ``"partial"`` / ``"missing"`` (see module docstring)."""
    root = Path(root)
    if (root / MANIFEST_NAME).exists():
        return "valid"
    if tmp_root(root).exists():
        return "partial"
    return "missing"


def require_build(root: Path | str, what: str = "build") -> None:
    """Raise a precise :class:`StorageError` unless ``root`` holds a build."""
    state = classify_build(root)
    if state == "partial":
        raise StorageError(
            f"partial {what} under {root}: an interrupted build left "
            f"{tmp_root(root).name} behind and no manifest was committed "
            "(rebuild, or remove the leftover directory)"
        )
    if state == "missing":
        raise StorageError(f"no {what} under {root}")


class BuildTransaction:
    """Write a build into ``<root>.tmp``, then atomically publish it.

    Files written through :meth:`write_file` are checksummed on the way
    down; files produced by page devices (heap, B+tree) are declared with
    :meth:`register` and checksummed from disk when the manifest is
    written.  :meth:`write_manifest` must be the last write, and
    :meth:`commit` publishes the directory.  On failure the tmp directory
    is deliberately left behind as the "partial build" marker.
    """

    def __init__(self, root: Path | str, resume: bool = False) -> None:
        self.root = Path(root)
        self.dir = tmp_root(self.root)
        self.files: dict[str, dict] = {}
        #: Stage-checkpoint registry: name -> {"payload", "artifact", "sha256"}.
        self.stages: dict[str, dict] = {}
        self.resumed = False
        if self.dir.exists():
            if resume:
                self.resumed = self._load_checkpoint()
            if not self.resumed:
                shutil.rmtree(self.dir)
        self.dir.mkdir(parents=True, exist_ok=True)
        self._manifest_written = False
        self._committed = False

    def path(self, name: str) -> Path:
        """Absolute tmp path for relative file ``name``."""
        return self.dir / name

    def write_file(self, name: str, data: bytes) -> int:
        """Write ``name`` under the tmp root; returns and records its CRC."""
        crc = write_file(self.path(name), data)
        self.files[name] = {"bytes": len(data), "crc32": crc}
        return crc

    def register(self, name: str) -> None:
        """Declare a file written externally (e.g. through a page device).

        Its size and CRC are computed from disk at manifest time, after
        the device has finished writing.
        """
        self.files[name] = {}  # placeholder, filled by write_manifest

    # -- stage checkpoints -------------------------------------------------

    @property
    def stage_dir(self) -> Path:
        """Directory holding stage artifacts (inside the tmp dir)."""
        return self.dir / STAGE_DIR_NAME

    def checkpoint_stage(
        self, name: str, payload: dict | None = None, artifact: bytes | None = None
    ) -> None:
        """Record stage ``name`` as complete, optionally with an artifact.

        The artifact bytes land under ``.stages/<name>`` (one
        fault-injectable write op, like any build file), and the registry
        is then replaced atomically — so a crash anywhere inside this
        method leaves the previous registry, and the stage reruns on
        resume.  The registry also snapshots the transaction's ``files``
        table, which is what makes resumed manifests byte-identical.
        """
        entry: dict = {"payload": payload or {}}
        if artifact is not None:
            self.stage_dir.mkdir(exist_ok=True)
            artifact_name = f"{STAGE_DIR_NAME}/{name}"
            write_file(self.path(artifact_name), artifact)
            entry["artifact"] = artifact_name
            entry["sha256"] = integrity.sha256_hex(artifact)
        self.stages[name] = entry
        self._persist_checkpoint()

    def completed_stage(self, name: str) -> dict | None:
        """The checkpoint payload of ``name`` if it (still) verifies.

        Returns None when the stage was never checkpointed or its
        artifact is missing/corrupt (size or SHA-256 mismatch) — the
        caller must then rerun the stage.
        """
        entry = self.stages.get(name)
        if entry is None:
            return None
        artifact_name = entry.get("artifact")
        if artifact_name is not None:
            path = self.path(artifact_name)
            if not path.exists():
                return None
            if integrity.sha256_hex(path.read_bytes()) != entry.get("sha256"):
                return None
        return entry["payload"]

    def stage_artifact(self, name: str) -> bytes:
        """Raw artifact bytes of a checkpointed stage."""
        entry = self.stages.get(name)
        if entry is None or "artifact" not in entry:
            raise StorageError(f"stage {name!r} has no checkpointed artifact")
        return self.path(entry["artifact"]).read_bytes()

    def drop_stages(self, names) -> None:
        """Invalidate checkpoints (used when an earlier stage reran)."""
        dropped = False
        for name in names:
            entry = self.stages.pop(name, None)
            if entry is None:
                continue
            dropped = True
            artifact_name = entry.get("artifact")
            if artifact_name is not None:
                self.path(artifact_name).unlink(missing_ok=True)
        if dropped:
            self._persist_checkpoint()

    def _persist_checkpoint(self) -> None:
        """Atomically replace the checkpoint registry (write-new + rename)."""
        blob = json.dumps(
            {"stages": self.stages, "files": self.files}, indent=2
        ).encode()
        staging = self.path(CHECKPOINT_NAME + ".new")
        write_file(staging, blob)
        os.replace(staging, self.path(CHECKPOINT_NAME))

    def _load_checkpoint(self) -> bool:
        """Restore registry + files table from an interrupted build.

        Returns False (caller starts fresh) when no registry exists or it
        does not parse — an interrupted non-pipeline build, or a registry
        lost to a torn write before the atomic replace.
        """
        path = self.path(CHECKPOINT_NAME)
        if not path.exists():
            return False
        try:
            data = json.loads(path.read_text())
            stages = data["stages"]
            files = data["files"]
        except (json.JSONDecodeError, KeyError, TypeError):
            return False
        if not isinstance(stages, dict) or not isinstance(files, dict):
            return False
        self.stages = stages
        self.files = files
        return True

    def _discard_checkpoints(self) -> None:
        """Remove all checkpoint state (right before the commit rename)."""
        if self.stage_dir.exists():
            shutil.rmtree(self.stage_dir)
        self.path(CHECKPOINT_NAME).unlink(missing_ok=True)
        self.path(CHECKPOINT_NAME + ".new").unlink(missing_ok=True)
        self.stages = {}

    def write_manifest(self, manifest: dict, name: str = MANIFEST_NAME) -> dict:
        """Write the manifest (last!), adding the files table and digest."""
        for file_name, entry in self.files.items():
            if not entry:
                path = self.path(file_name)
                entry["bytes"] = path.stat().st_size
                entry["crc32"] = integrity.file_crc(path)
        manifest = {
            **manifest,
            "files": self.files,
            "digest": integrity.build_digest(self.files),
        }
        write_file(self.path(name), json.dumps(manifest, indent=2).encode())
        self._manifest_written = True
        return manifest

    def commit(self) -> None:
        """fsync everything, then rename ``<root>.tmp`` -> ``<root>``.

        Counts as one write op in the fault layer's crash schedule — a
        crash "at the commit" happens before any destructive step, so an
        existing build at ``root`` survives it.
        """
        if not self._manifest_written:
            raise StorageError("commit before manifest: write_manifest() first")
        faults.commit(self.root)
        # After the fault layer's crash op, before anything destructive:
        # a crash "at the commit" leaves the registry behind for resume,
        # while a committed build never contains checkpoint state.
        self._discard_checkpoints()
        for path in sorted(self.dir.iterdir()):
            fsync_file(path)
        fsync_dir(self.dir)
        if self.root.exists():
            shutil.rmtree(self.root)
        os.rename(self.dir, self.root)
        fsync_dir(self.root.parent)
        self._committed = True

    def __enter__(self) -> "BuildTransaction":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        # On failure the tmp directory stays behind on purpose: it is the
        # evidence classify_build() reports as a partial build.
        if exc_type is None and not self._committed:
            raise StorageError("build transaction exited without commit()")
