"""Deterministic fault injection for the storage engine.

A :class:`FaultPlan` is a seeded description of the storage faults a run
should experience: bit flips, short reads and seeded latency injection
("slow reads") on the read path, transient ``EIO`` errors (absorbed by
the bounded retry loop in
:meth:`repro.storage.device.CountedFile.read_at`), torn writes, and a
:class:`SimulatedCrash` at a chosen write-operation index.  The plan slots
*under* :class:`~repro.storage.device.CountedFile` /
:class:`~repro.storage.device.PageDevice` and the whole-file writer in
:mod:`repro.storage.atomic`: while a plan is activated, every read and
write in the process flows through it, so a crash-point sweep can kill a
build at *every* write op and a fuzz run can flip bits under real query
traffic.

Faults are charged to the reading device's
:class:`~repro.storage.metrics.MetricsRegistry` (``fault_bit_flips``,
``fault_short_reads``, ``fault_eio``, ``io_retries``) and recorded in its
bounded event log, so the PR-3 access tracer and ``io_stats()`` both see
them.  Write-op indices are global to the plan — a build is one ordered
sequence of write operations regardless of how many files it touches.

Determinism: the same plan (same seed, same rates) against the same
workload injects the same faults, so every failure reproduces.  Under a
single reader that determinism extends to fault *placement*; when a plan
is activated at serve time under the daemon's worker pool, draws from
the shared stream interleave with thread scheduling, so serve-time chaos
gates must be invariant-based (conservation, degraded accounting) rather
than position-based.  The plan's RNG and counters are mutex-guarded so
concurrent readers stay safe.
"""

from __future__ import annotations

import errno
import random
import threading
import time
from contextlib import contextmanager
from pathlib import Path

#: Bounded retry policy for transient read errors (see CountedFile.read_at).
READ_RETRY_LIMIT = 3
#: Base backoff between retries, in seconds (doubles per attempt).
READ_RETRY_BACKOFF_S = 0.001


class SimulatedCrash(Exception):
    """Injected process death mid-write.

    Deliberately *not* a :class:`~repro.errors.ReproError`: nothing in the
    library may catch and absorb it, exactly as nothing survives a real
    ``kill -9``.
    """


class TransientIOError(OSError):
    """Injected transient ``EIO`` — retryable by the device layer."""

    def __init__(self, path: Path | str, operation: str = "read") -> None:
        super().__init__(errno.EIO, f"injected transient {operation} error", str(path))


class FaultPlan:
    """Seeded, deterministic storage-fault schedule.

    Rates are per-operation probabilities drawn from one ``random.Random``
    stream, so a given (seed, workload) pair always injects the same
    faults.  ``crash_at_write`` names the global write-op index at which a
    :class:`SimulatedCrash` is raised; with ``torn_writes=True`` a random
    prefix of that final write reaches the disk first — the classic torn
    write a checksummed format must detect.
    """

    def __init__(
        self,
        seed: int = 0,
        bit_flip_rate: float = 0.0,
        short_read_rate: float = 0.0,
        eio_rate: float = 0.0,
        crash_at_write: int | None = None,
        torn_writes: bool = False,
        slow_read_rate: float = 0.0,
        slow_read_seconds: float = 0.0,
    ) -> None:
        for name, rate in (
            ("bit_flip_rate", bit_flip_rate),
            ("short_read_rate", short_read_rate),
            ("eio_rate", eio_rate),
            ("slow_read_rate", slow_read_rate),
        ):
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        if slow_read_seconds < 0.0:
            raise ValueError(
                f"slow_read_seconds must be >= 0, got {slow_read_seconds}"
            )
        self.seed = seed
        self.bit_flip_rate = bit_flip_rate
        self.short_read_rate = short_read_rate
        self.eio_rate = eio_rate
        self.crash_at_write = crash_at_write
        self.torn_writes = torn_writes
        self.slow_read_rate = slow_read_rate
        self.slow_read_seconds = slow_read_seconds
        self._rng = random.Random(seed)
        # Guards the RNG stream, the write-op counter and the injected
        # tallies: serve-time activation runs reads on many worker
        # threads at once.
        self._mutex = threading.Lock()
        #: Global write-operation counter (files + device writes + commits).
        self.write_ops = 0
        #: Faults injected so far, by kind.
        self.injected: dict[str, int] = {}

    def _count(self, kind: str, registry=None, path=None) -> None:
        self.injected[kind] = self.injected.get(kind, 0) + 1
        if registry is not None:
            registry.inc(f"fault_{kind}")
            registry.record("fault", (kind, str(path)))

    # -- read path ---------------------------------------------------------

    def on_read(self, path, offset: int, data: bytes, registry=None) -> bytes:
        """Transform (or reject) one device read.

        May raise :class:`TransientIOError`; may return data shortened or
        with one bit flipped; may stall the read (seeded latency
        injection).  Called once per read *attempt*, so a retry re-rolls
        the dice — transient faults are genuinely transient.

        The slow-read draw only consumes randomness when a slow-read rate
        is configured, so plans without one keep their historical fault
        placement bit-for-bit.  The stall itself happens outside the
        mutex: a slow read must not serialise every other reader.
        """
        stall = 0.0
        with self._mutex:
            if self._rng.random() < self.eio_rate:
                self._count("eio", registry, path)
                raise TransientIOError(path)
            if self.slow_read_rate and self._rng.random() < self.slow_read_rate:
                self._count("slow_reads", registry, path)
                stall = self.slow_read_seconds
            if data and self._rng.random() < self.short_read_rate:
                self._count("short_reads", registry, path)
                data = data[: self._rng.randrange(len(data))]
            if data and self._rng.random() < self.bit_flip_rate:
                self._count("bit_flips", registry, path)
                flipped = bytearray(data)
                position = self._rng.randrange(len(flipped))
                flipped[position] ^= 1 << self._rng.randrange(8)
                data = bytes(flipped)
        if stall > 0.0:
            time.sleep(stall)
        return data

    # -- write path --------------------------------------------------------

    def on_write(self, path, data: bytes, writer) -> None:
        """Run one write operation, honouring the crash schedule.

        ``writer(chunk)`` performs the actual write; at the crash index it
        receives a torn prefix (when ``torn_writes``) and the crash is
        raised before the full data ever lands.
        """
        with self._mutex:
            index = self.write_ops
            self.write_ops += 1
            if index == self.crash_at_write:
                if self.torn_writes and data:
                    torn = data[: self._rng.randrange(len(data))]
                    if torn:
                        writer(torn)
                    self._count("torn_writes", path=path)
                raise SimulatedCrash(
                    f"simulated crash at write op {index} ({path})"
                )
        writer(data)

    def on_commit(self, root) -> None:
        """A build commit (rename) is one write op in the crash schedule."""
        with self._mutex:
            index = self.write_ops
            self.write_ops += 1
            if index == self.crash_at_write:
                raise SimulatedCrash(
                    f"simulated crash at commit (write op {index}, {root})"
                )


# -- activation ------------------------------------------------------------
#
# One plan is active per process at a time (builds and stores are
# single-threaded; the lock only guards installation itself).

_lock = threading.Lock()
_plan: FaultPlan | None = None


def active_plan() -> FaultPlan | None:
    """The currently installed plan, if any."""
    return _plan


def install(plan: FaultPlan | None) -> None:
    """Install ``plan`` process-wide (None uninstalls)."""
    global _plan
    with _lock:
        _plan = plan


@contextmanager
def activated(plan: FaultPlan):
    """Scope ``plan`` to a ``with`` block, restoring the previous plan."""
    global _plan
    with _lock:
        previous = _plan
        _plan = plan
    try:
        yield plan
    finally:
        with _lock:
            _plan = previous


# -- hooks called by the storage layer -------------------------------------


def on_read(path, offset: int, data: bytes, registry=None) -> bytes:
    """Read-path hook: no-op unless a plan is active."""
    plan = _plan
    if plan is None:
        return data
    return plan.on_read(path, offset, data, registry)


def guarded_write(path, data: bytes, writer) -> None:
    """Write-path hook: ``writer(data)`` under the active crash schedule."""
    plan = _plan
    if plan is None:
        writer(data)
        return
    plan.on_write(path, data, writer)


def commit(root) -> None:
    """Commit hook: charges one write op to the active crash schedule."""
    plan = _plan
    if plan is not None:
        plan.on_commit(root)


# -- chaos fixtures ---------------------------------------------------------


def corrupt_snode_regions(
    root, stride: int = 1, limit: int | None = None, seed: int = 0
) -> int:
    """Flip one byte inside committed intranode regions of an s-node build.

    Walks the stored pointer table and flips one seeded byte in every
    ``stride``-th non-empty intranode payload region (up to ``limit``
    regions), returning how many were corrupted.  With the default
    stride every intranode region is hit, so *any* adjacency read is
    guaranteed to see a CRC mismatch — the fixture the chaos harness
    uses to prove ``on_corruption="degrade"`` end to end without
    guessing which regions a workload touches.  Corrupt a throwaway
    copy, never the build you mean to keep.
    """
    from repro.snode.storage import read_layout

    if stride < 1:
        raise ValueError(f"stride must be >= 1, got {stride}")
    root = Path(root)
    layout = read_layout(root)
    rng = random.Random(seed)
    corrupted = 0
    for index, location in enumerate(layout.intranode):
        if index % stride or not location.length:
            continue
        if limit is not None and corrupted >= limit:
            break
        path = root / layout.index_files[location.file_index]
        position = location.offset + rng.randrange(location.length)
        with open(path, "r+b") as handle:
            handle.seek(position)
            original = handle.read(1)[0]
            handle.seek(position)
            handle.write(bytes([original ^ (1 << rng.randrange(8))]))
        corrupted += 1
    return corrupted
