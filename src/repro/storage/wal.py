"""Write-ahead log of edge mutations over an immutable graph build.

The S-Node build is write-once (the paper's representation is static),
but real web graphs churn.  The mutable write path keeps the committed
build untouched and journals every edge addition/deletion here, in a
sidecar ``graph.wal`` next to the forward build's manifest:

* one **record** per write op: an opcode (add/remove) plus the edges,
  grouped by source and encoded with the Link3 gap codec
  (:mod:`repro.util.deltacodec`) — the same nybble-coded rows the
  compressed baselines use, so a churn-heavy log stays small;
* each record is wrapped in the storage layer's CRC32 **frame**
  (:func:`repro.storage.integrity.encode_frame`), so a torn tail —
  the bytes a crash mid-append leaves behind — fails to decode and is
  cleanly distinguishable from a good prefix;
* appends flow through :func:`repro.storage.faults.guarded_write` and
  fsync before the caller is acknowledged.  The crash-point sweep in the
  fault tests kills the writer at every single write op and checks the
  contract this buys: **an acknowledged write is never lost, and a write
  that was never acknowledged never resurrects** (its torn frame is
  dropped by :meth:`GraphWal.scan`).

Compaction replays base + WAL into a fresh build and atomically adopts
it; the absorbed WAL prefix is truncated via the same staged-rename
idiom as every other atomic replace in the repo (``graph.wal.new`` then
``os.replace``), so a crash mid-truncation leaves either the old or the
new log, never a half one.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path

from repro.errors import CorruptionError, StorageError
from repro.storage import faults, integrity
from repro.storage.atomic import fsync_dir, fsync_file
from repro.util.bitio import BitReader, BitWriter
from repro.util.deltacodec import decode_gap_row, encode_gap_row
from repro.util.varint import decode_nibble, encode_nibble

#: File name of the WAL sidecar inside a (forward) build directory.
WAL_NAME = "graph.wal"
#: Staging name used for atomic truncation (``graph.wal.new`` -> rename).
WAL_STAGING_SUFFIX = ".new"

#: Record opcodes.  The WAL is last-op-wins per edge, so these two are
#: the whole vocabulary.
OP_ADD = "add"
OP_REMOVE = "remove"
_OPCODES = {OP_ADD: 1, OP_REMOVE: 2}
_OPNAMES = {code: name for name, code in _OPCODES.items()}


@dataclass(frozen=True)
class WalRecord:
    """One acknowledged write: an opcode and its edges."""

    op: str
    edges: tuple[tuple[int, int], ...]


@dataclass(frozen=True)
class WalScan:
    """Result of decoding a WAL file front to back.

    ``good_bytes`` is the offset just past the last intact frame;
    ``torn_bytes`` counts trailing bytes that failed to decode (a crash
    mid-append).  ``good_bytes + torn_bytes == file size`` always.
    """

    records: tuple[WalRecord, ...]
    good_bytes: int
    torn_bytes: int

    @property
    def torn(self) -> bool:
        return self.torn_bytes > 0


def encode_record(op: str, edges) -> bytes:
    """Encode one mutation record's payload (before framing).

    Edges are grouped by source; each group is a nybble-coded gap row —
    exactly the Link3 "plain row" encoding, anchored at the source id.
    """
    code = _OPCODES.get(op)
    if code is None:
        raise StorageError(f"unknown WAL opcode {op!r}")
    rows: dict[int, set[int]] = {}
    for source, target in edges:
        rows.setdefault(int(source), set()).add(int(target))
    if not rows:
        raise StorageError("refusing to log an empty edge batch")
    writer = BitWriter()
    encode_nibble(writer, code)
    encode_nibble(writer, len(rows))
    for source in sorted(rows):
        if source < 0:
            raise StorageError(f"negative source id {source}")
        encode_nibble(writer, source)
        row = sorted(rows[source])
        if row[0] < 0:
            raise StorageError(f"negative target id {row[0]}")
        encode_gap_row(writer, source, row)
    return writer.to_bytes()


def decode_record(payload: bytes) -> WalRecord:
    """Decode a record payload written by :func:`encode_record`."""
    reader = BitReader(payload)
    code = decode_nibble(reader)
    name = _OPNAMES.get(code)
    if name is None:
        raise CorruptionError(f"unknown WAL opcode {code}")
    groups = decode_nibble(reader)
    edges: list[tuple[int, int]] = []
    for _ in range(groups):
        source = decode_nibble(reader)
        for target in decode_gap_row(reader, source):
            edges.append((source, target))
    return WalRecord(op=name, edges=tuple(edges))


class GraphWal:
    """Append-only, CRC-framed, fsync'd log of edge mutations."""

    def __init__(self, path: Path | str) -> None:
        self.path = Path(path)

    @classmethod
    def for_build(cls, root: Path | str) -> "GraphWal":
        """The WAL sidecar of a build directory (lives next to the manifest)."""
        return cls(Path(root) / WAL_NAME)

    @property
    def staging_path(self) -> Path:
        return self.path.parent / (self.path.name + WAL_STAGING_SUFFIX)

    def size_bytes(self) -> int:
        """Current log length (0 when the file does not exist)."""
        try:
            return self.path.stat().st_size
        except FileNotFoundError:
            return 0

    # -- write path --------------------------------------------------------

    def append(self, op: str, edges) -> int:
        """Durably append one record; returns the new log length.

        The frame goes through the fault-injection choke point and is
        fsync'd before this returns — returning is the acknowledgement
        the crash-safety contract is stated in terms of.  An injected
        crash may leave a torn frame; :meth:`scan` drops it.
        """
        frame = integrity.encode_frame(encode_record(op, edges))

        def _append(chunk: bytes) -> None:
            with open(self.path, "ab") as handle:
                handle.write(chunk)
                handle.flush()
                os.fsync(handle.fileno())

        faults.guarded_write(self.path, frame, _append)
        return self.size_bytes()

    # -- read path ---------------------------------------------------------

    def scan(self) -> WalScan:
        """Decode the log front to back, stopping at the first bad frame.

        Every complete frame before the tear is returned; the torn tail
        (truncated header, short payload, or CRC mismatch) is measured
        but never interpreted — a write that was never acknowledged must
        not resurrect as a phantom record.
        """
        try:
            blob = self.path.read_bytes()
        except FileNotFoundError:
            return WalScan(records=(), good_bytes=0, torn_bytes=0)
        records: list[WalRecord] = []
        position = 0
        while position < len(blob):
            try:
                payload, next_position = integrity.decode_frame(blob, position)
                records.append(decode_record(payload))
            except CorruptionError:
                break
            position = next_position
        return WalScan(
            records=tuple(records),
            good_bytes=position,
            torn_bytes=len(blob) - position,
        )

    # -- maintenance -------------------------------------------------------

    def _replace_with(self, data: bytes) -> None:
        """Atomically replace the log body via the staging file."""

        def _stage(chunk: bytes) -> None:
            with open(self.staging_path, "wb") as handle:
                handle.write(chunk)
                handle.flush()
                os.fsync(handle.fileno())

        faults.guarded_write(self.staging_path, data, _stage)
        os.replace(self.staging_path, self.path)
        fsync_file(self.path)
        fsync_dir(self.path.parent)

    def repair_tail(self) -> int:
        """Truncate a torn tail; returns the number of bytes removed.

        Keeps exactly the good prefix :meth:`scan` would replay, so a
        repaired log and an unrepaired one produce the same overlay —
        repair only makes the tear invisible to byte-level checks.
        """
        scan = self.scan()
        if not scan.torn:
            return 0
        blob = self.path.read_bytes()
        self._replace_with(blob[: scan.good_bytes])
        return scan.torn_bytes

    def truncate_prefix(self, offset: int) -> int:
        """Drop the absorbed prefix ``[0, offset)``; returns bytes kept.

        Called under the swap generation bump once a compacted build that
        already contains those records is adopted.  ``offset`` must be a
        frame boundary (an offset previously returned by :meth:`append`
        or observed via :meth:`size_bytes`).
        """
        blob = self.path.read_bytes() if self.path.exists() else b""
        if not 0 <= offset <= len(blob):
            raise StorageError(
                f"WAL truncation offset {offset} outside [0, {len(blob)}]"
            )
        if offset == 0:
            return len(blob)
        self._replace_with(blob[offset:])
        return len(blob) - offset

    def carry_suffix_to(self, other: "GraphWal", offset: int) -> int:
        """Move the unabsorbed suffix ``[offset:]`` into ``other``'s log.

        The swap/compaction hand-off: the adopted build already contains
        the prefix, so the suffix becomes the *entire* log of the new
        store directory and this log is emptied (everything here is now
        either durable in the new build or carried forward).  Returns
        the number of suffix bytes carried.
        """
        blob = self.path.read_bytes() if self.path.exists() else b""
        if not 0 <= offset <= len(blob):
            raise StorageError(
                f"WAL carry offset {offset} outside [0, {len(blob)}]"
            )
        suffix = blob[offset:]
        other._replace_with(suffix)
        if other.path != self.path and self.path.exists():
            self._replace_with(b"")
        return len(suffix)
