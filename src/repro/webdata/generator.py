"""Synthetic Web-repository generator.

The paper's experiments run on a 120-million-page Stanford WebBase crawl we
do not have.  This generator is the documented substitution (DESIGN.md): a
seeded *evolving copying model* (Ravi Kumar et al., FOCS 2000) decorated
with the structural regularities the S-Node scheme exploits:

* **Link copying** — each new page picks a prototype page and copies a
  fraction of its adjacency list, producing clusters of pages with similar
  adjacency lists (paper Observation 1).
* **Domain and URL locality** — roughly three-quarters of a page's links
  stay on its own host (Suel & Yuan's measurement, Observation 2), and
  intra-host links favour pages at lexicographically-nearby URLs.
* **Directory-structured URLs** — every host grows a directory tree up to a
  few levels deep, so URL split has real structure to exploit.
* **Zipfian host sizes and preferential attachment** — popular pages keep
  attracting links, giving the heavy-tailed in-degree distribution that
  makes in-degree-ordered Huffman codes effective.
* **Topical text** — hosts carry topic mixtures and configurable seeded
  phrases so the paper's six complex queries (``"Mobile networking"`` in
  ``stanford.edu``, comic-strip characters, ...) have non-empty answers.

Pages are emitted in generation order, which doubles as crawl order: a
crawl-prefix subset of the output is exactly an earlier snapshot of the
evolving graph, mirroring the paper's "first few days of the crawl" subsets.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.errors import QueryError
from repro.graph.digraph import GraphBuilder
from repro.webdata.corpus import Page, Repository

# Real-looking organizations so the paper's queries read naturally.  The
# first entries are the domains the paper's workload names explicitly.
_NAMED_HOSTS: tuple[tuple[str, float], ...] = (
    ("www.stanford.edu", 3.0),
    ("cs.stanford.edu", 2.0),
    ("ee.stanford.edu", 1.2),
    ("www.mit.edu", 2.2),
    ("csail.mit.edu", 1.2),
    ("www.berkeley.edu", 2.0),
    ("eecs.berkeley.edu", 1.2),
    ("www.caltech.edu", 1.4),
    ("www.cmu.edu", 1.4),
    ("www.dilbert.com", 0.8),
    ("www.doonesbury.com", 0.6),
    ("www.snoopy.com", 0.6),
    ("www.amazon.com", 2.4),
    ("www.yahoo.com", 2.6),
    ("news.yahoo.com", 1.2),
    ("www.archive.org", 1.0),
    ("www.ietf.org", 0.9),
    ("www.w3.org", 0.9),
)

# Generic vocabulary for page bodies (Zipf-sampled).
_VOCABULARY: tuple[str, ...] = (
    "the of and to a in for is on that by this with you it not or be are "
    "from at as your all have new more an was we will home can us about if "
    "page my has search free but our one other do no information time they "
    "site he up may what which their news out use any there see only so his "
    "when contact here business who web also now help get view online first "
    "am been would how were me services some these click its like service "
    "than find price date back top people had list name just over state year "
    "day into email two health world re next used go work last most products "
    "music buy data make them should product system post her city add policy "
    "number such please available copyright support message after best "
    "software then jan good video well where info rights public books high "
    "school through each links she review years order very privacy book "
    "items company read group sex need many user said de does set under "
    "general research university mail full map reviews program life know "
    "games way days management part could great united hotel real item "
    "international center ebay must store travel comments made development "
    "report off member details line terms before hotels did send right type "
    "because local those using results office education national car design "
    "take posted internet address community within states area want phone "
    "shipping reserved subject between forum family long based code show "
    "even black check special prices website index being women much sign "
    "file link open today technology south case project same pages version "
    "section own found sports house related security both county american "
    "photo game members power while care network down computer systems"
).split()

# Topic phrases seeded into specific domains so every paper query has hits.
# (phrase-words, domain-or-None, probability a page of that domain gets it)
_DEFAULT_TOPICS: tuple[tuple[tuple[str, ...], str | None, float], ...] = (
    (("mobile", "networking"), "stanford.edu", 0.05),
    (("mobile", "networking"), None, 0.002),
    (("internet", "censorship"), None, 0.01),
    (("quantum", "cryptography"), "stanford.edu", 0.03),
    (("quantum", "cryptography"), "mit.edu", 0.03),
    (("quantum", "cryptography"), "berkeley.edu", 0.03),
    (("quantum", "cryptography"), "caltech.edu", 0.03),
    (("computer", "music", "synthesis"), None, 0.008),
    (("optical", "interferometry"), "stanford.edu", 0.03),
    (("optical", "interferometry"), "berkeley.edu", 0.03),
    (("dilbert",), "stanford.edu", 0.04),
    (("dogbert",), "stanford.edu", 0.02),
    (("the", "boss"), "stanford.edu", 0.02),
    (("dilbert",), "dilbert.com", 0.9),
    (("dogbert",), "dilbert.com", 0.5),
    (("doonesbury",), "stanford.edu", 0.03),
    (("zonker",), "stanford.edu", 0.015),
    (("doonesbury",), "doonesbury.com", 0.9),
    (("peanuts",), "stanford.edu", 0.035),
    (("snoopy",), "stanford.edu", 0.02),
    (("charlie", "brown"), "stanford.edu", 0.015),
    (("peanuts",), "snoopy.com", 0.9),
    (("snoopy",), "snoopy.com", 0.7),
)


@dataclass(frozen=True)
class GeneratorConfig:
    """Knobs of the synthetic Web generator.

    The defaults reproduce the empirical constants the paper cites: mean
    out-degree ~14 (WebBase measurement), ~75 % intra-host links (Suel &
    Yuan), copy factor and preferential attachment as in the copying model.
    """

    num_pages: int = 10_000
    seed: int = 2003
    # Defaults are tuned so the *realized* graph lands near the paper's
    # empirical values (mean out-degree ~14, ~3/4 intra-host links): link
    # copying adds edges on top of the sampled degree and global
    # preferential links dilute locality, so the knobs sit above/below
    # their realized targets.
    mean_out_degree: float = 12.0
    intra_host_fraction: float = 0.9
    copy_probability: float = 0.6  # chance a new page copies from a prototype
    copy_link_fraction: float = 0.7  # fraction of prototype links retained
    # New hosts appear at a *decaying* rate (probability
    # ``new_host_rate / sqrt(1 + pages_so_far)``), so the number of hosts —
    # and hence domain-partition elements — grows like sqrt(n).  Real
    # crawls discover new sites sublinearly, and this is what gives the
    # paper its sublinear supernode growth (Figure 9).
    new_host_rate: float = 1.1
    max_url_depth: int = 4
    directory_fanout: int = 5
    terms_per_page: int = 40
    # Probability that one of a new page's same-host targets links back to
    # it (pages get updated with "see also" links).  A pure evolving
    # copying model is acyclic; reciprocal links create the cycles — and
    # eventually the giant strongly-connected component — that Broder et
    # al.'s bow-tie analysis (the paper's reference [8]) reports.
    reciprocal_link_probability: float = 0.3
    topics: tuple[tuple[tuple[str, ...], str | None, float], ...] = _DEFAULT_TOPICS
    named_hosts: tuple[tuple[str, float], ...] = _NAMED_HOSTS


@dataclass
class _Host:
    """Mutable per-host state during generation."""

    name: str
    weight: float
    pages: list[int] = field(default_factory=list)
    directories: list[str] = field(default_factory=lambda: [""])
    # Directory -> pages inside it.  Pages of one directory link densely to
    # each other (a site section is a topical cluster), which is what makes
    # URL split produce well-connected supernodes.
    pages_by_directory: dict[str, list[int]] = field(default_factory=dict)
    # The host's recurring external references (partner sites, navigation
    # and footer links): most off-host links on a real site point at the
    # same small set of external pages from every page of the site.  This
    # is the off-host face of Observation 1 (link copying) and is what
    # makes superedge graphs dense rather than fragmenting one graph per
    # stray link.
    external_pool: list[int] = field(default_factory=list)


class _WebGenerator:
    """Stateful generator; one instance per :func:`generate_web` call."""

    def __init__(self, config: GeneratorConfig) -> None:
        if config.num_pages < 1:
            raise QueryError(f"num_pages must be >= 1, got {config.num_pages}")
        self._config = config
        self._rng = random.Random(config.seed)
        self._hosts: list[_Host] = [
            _Host(name=name, weight=weight) for name, weight in config.named_hosts
        ]
        self._host_weights: list[float] = [h.weight for h in self._hosts]
        self._synthetic_host_counter = 0
        self._urls: list[str] = []
        self._terms: list[tuple[str, ...]] = []
        self._adjacency: list[list[int]] = []
        self._page_host: list[int] = []
        self._edge_targets: list[int] = []  # multiset for preferential attachment
        # Zipf weights for the generic vocabulary.
        self._vocab_weights = [1.0 / (rank + 1) for rank in range(len(_VOCABULARY))]

    # -- hosts and URLs -------------------------------------------------------

    def _new_synthetic_host(self) -> int:
        self._synthetic_host_counter += 1
        count = self._synthetic_host_counter
        tld = self._rng.choice(("com", "com", "com", "org", "net", "edu"))
        name = f"www.site{count:04d}.{tld}"
        host = _Host(name=name, weight=0.5)
        self._hosts.append(host)
        self._host_weights.append(host.weight)
        return len(self._hosts) - 1

    def _choose_host(self) -> int:
        pages_so_far = len(self._urls)
        birth_probability = self._config.new_host_rate / (1.0 + pages_so_far) ** 0.5
        if self._rng.random() < birth_probability:
            return self._new_synthetic_host()
        # Rich-get-richer: weight = base weight + pages already on the host.
        weights = [
            self._host_weights[i] + len(self._hosts[i].pages)
            for i in range(len(self._hosts))
        ]
        return self._rng.choices(range(len(self._hosts)), weights=weights, k=1)[0]

    def _choose_directory(self, host: _Host) -> str:
        """Pick an existing directory or grow the tree one level deeper."""
        config = self._config
        directory = self._rng.choice(host.directories)
        depth = directory.count("/") + (1 if directory else 0)
        if depth < config.max_url_depth - 1 and self._rng.random() < 0.3:
            child_name = f"d{self._rng.randrange(config.directory_fanout)}"
            child = f"{directory}/{child_name}" if directory else child_name
            if child not in host.directories:
                host.directories.append(child)
            directory = child
        return directory

    def _make_url(self, host_index: int, page_id: int) -> tuple[str, str]:
        host = self._hosts[host_index]
        directory = self._choose_directory(host)
        leaf = f"page{page_id:06d}.html"
        if directory:
            return f"http://{host.name}/{directory}/{leaf}", directory
        return f"http://{host.name}/{leaf}", directory

    # -- links ---------------------------------------------------------------

    def _sample_out_degree(self) -> int:
        """Heavy-tailed out-degree with the configured mean.

        A geometric body plus an occasional hub keeps the mean close to the
        target while producing the variance real link data shows.
        """
        mean = self._config.mean_out_degree
        if self._rng.random() < 0.02:
            return int(mean * self._rng.uniform(3.0, 8.0))
        # Geometric with success prob 1/mean' chosen so the mixture mean ~= mean.
        body_mean = max(1.0, mean * 0.9)
        probability = 1.0 / body_mean
        degree = 1
        while self._rng.random() > probability:
            degree += 1
            if degree > 40 * body_mean:
                break
        return degree

    def _preferential_target(self, limit: int) -> int:
        """Sample a page proportional to in-degree (rare uniform fallback).

        The low uniform-fallback rate matters: global links on the real Web
        concentrate on a small set of popular pages, which keeps the number
        of distinct superedges per supernode — and hence superedge-graph
        overhead — low.
        """
        if self._edge_targets and self._rng.random() < 0.95:
            return self._rng.choice(self._edge_targets)
        return self._rng.randrange(limit)

    def _local_target(self, host: _Host, page_id: int, directory: str) -> int | None:
        """Intra-host target with directory and lexicographic locality.

        Most intra-host links stay inside the source page's own directory
        (a site section is a topical cluster); the remainder go to
        lexicographically-nearby pages on the host.  This is what realizes
        Observation 2's "URLs within a few entries of each other".
        """
        pool = self._local_pool(host, page_id, directory)
        if not pool:
            return None
        target = self._rng.choice(pool)
        return target if target != page_id else None

    def _local_pool(self, host: _Host, page_id: int, directory: str) -> list[int]:
        """Candidate intra-host targets: own directory plus an id window.

        Directory members come first and are tripled in weight — a site
        section links densely to itself — and a lexicographic window over
        the host's page list supplies the near-URL remainder.
        """
        same_directory = [
            p for p in host.pages_by_directory.get(directory, ()) if p != page_id
        ]
        candidates = host.pages
        window_pages: list[int] = []
        if candidates:
            try:
                position = candidates.index(page_id)
            except ValueError:
                position = len(candidates) - 1
            # Observation 2 says lexicographically *close* — "within a few
            # entries"; a window proportional to host size would let links
            # span the whole site and destroy the locality the paper's
            # partition exploits.
            window = max(4, min(24, len(candidates) // 16))
            low = max(0, position - window)
            high = min(len(candidates), position + window + 1)
            window_pages = [p for p in candidates[low:high] if p != page_id]
        return same_directory * 3 + window_pages

    def _build_links(self, page_id: int, host_index: int, directory: str) -> list[int]:
        config = self._config
        rng = self._rng
        host = self._hosts[host_index]
        links: set[int] = set()
        if page_id == 0:
            return []
        # Phase 1: copy from a prototype (Observation 1 — link copying).
        # Prefer a prototype from the same directory so copied neighbours
        # share the new page's locality.
        if rng.random() < config.copy_probability:
            same_directory = host.pages_by_directory.get(directory, ())
            if same_directory and rng.random() < 0.7:
                prototype = rng.choice(same_directory)
            elif host.pages and rng.random() < 0.8:
                prototype = rng.choice(host.pages)
            else:
                prototype = rng.randrange(page_id)
            for target in self._adjacency[prototype]:
                if rng.random() < config.copy_link_fraction:
                    links.add(target)
        # Phase 2: fresh links with domain locality (Observation 2).  The
        # local share is drawn *without replacement* from the locality pool
        # so small hosts saturate gracefully instead of burning attempts on
        # duplicates; the remainder goes to global preferential targets.
        degree = self._sample_out_degree()
        wanted_local = sum(
            1 for _ in range(degree) if rng.random() < config.intra_host_fraction
        )
        pool = self._local_pool(host, page_id, directory)
        distinct_pool = [p for p in dict.fromkeys(pool) if p not in links]
        take = min(wanted_local, len(distinct_pool))
        if take:
            # Weighted sample without replacement (directory pages carry
            # triple weight in the pool).
            chosen: set[int] = set()
            guard = 0
            while len(chosen) < take and guard < 20 * take:
                guard += 1
                candidate = rng.choice(pool)
                if candidate not in links and candidate != page_id:
                    chosen.add(candidate)
            links.update(chosen)
        # Unfulfilled local quota mostly evaporates (a five-page site has
        # five-page navigation, not extra global links); only a quarter
        # converts to global links.
        shortfall = wanted_local - take
        global_wanted = (degree - wanted_local) + (shortfall + 3) // 4
        added_global = 0
        attempts = 0
        while added_global < global_wanted and attempts < 4 * degree + 20:
            attempts += 1
            target = self._global_target(host, page_id)
            if target != page_id and target not in links:
                links.add(target)
                added_global += 1
        return sorted(links)

    def _global_target(self, host: _Host, page_id: int) -> int:
        """Off-host target: mostly from the host's external-reference pool.

        The pool grows slowly (square root of the host's size, plus a
        floor), seeded by preferential attachment — a site's pages keep
        linking to the same partners, so off-host links concentrate on few
        (source-host, target) pairs.
        """
        rng = self._rng
        pool_cap = 4 + int(len(host.pages) ** 0.5)
        if host.external_pool and (
            len(host.external_pool) >= pool_cap or rng.random() < 0.85
        ):
            return rng.choice(host.external_pool)
        target = self._preferential_target(page_id)
        if target not in host.external_pool:
            host.external_pool.append(target)
        return target

    # -- text ----------------------------------------------------------------

    def _add_reciprocal_links(
        self, page_id: int, links: list[int], host_index: int
    ) -> None:
        """Make some same-host targets of a new page link back to it."""
        probability = self._config.reciprocal_link_probability
        if probability <= 0.0:
            return
        for target in links:
            if self._page_host[target] != host_index:
                continue
            if self._rng.random() < probability:
                if page_id not in self._adjacency[target]:
                    self._adjacency[target].append(page_id)
                    self._edge_targets.append(page_id)

    def _build_terms(self, host_index: int) -> tuple[str, ...]:
        config = self._config
        rng = self._rng
        host_name = self._hosts[host_index].name
        host_domain = ".".join(host_name.split(".")[-2:])
        words: list[str] = rng.choices(
            _VOCABULARY, weights=self._vocab_weights, k=config.terms_per_page
        )
        for phrase, domain, probability in config.topics:
            if domain is not None and domain != host_domain:
                continue
            if rng.random() < probability:
                position = rng.randrange(len(words) + 1)
                words[position:position] = list(phrase)
        return tuple(words)

    # -- driver ---------------------------------------------------------------

    def run(self) -> Repository:
        for page_id in range(self._config.num_pages):
            host_index = self._choose_host()
            url, directory = self._make_url(host_index, page_id)
            links = self._build_links(page_id, host_index, directory)
            self._urls.append(url)
            self._adjacency.append(links)
            self._page_host.append(host_index)
            host = self._hosts[host_index]
            host.pages.append(page_id)
            host.pages_by_directory.setdefault(directory, []).append(page_id)
            self._edge_targets.extend(links)
            self._terms.append(self._build_terms(host_index))
            self._add_reciprocal_links(page_id, links, host_index)
        builder = GraphBuilder(self._config.num_pages)
        for source, row in enumerate(self._adjacency):
            for target in row:
                builder.add_edge(source, target)
        pages = [
            Page(page_id=i, url=self._urls[i], terms=self._terms[i])
            for i in range(self._config.num_pages)
        ]
        return Repository(pages=pages, graph=builder.build())


def generate_web(config: GeneratorConfig | None = None, **overrides) -> Repository:
    """Generate a synthetic Web repository.

    Accepts either a full :class:`GeneratorConfig` or keyword overrides of
    its fields, e.g. ``generate_web(num_pages=5000, seed=7)``.
    """
    if config is None:
        config = GeneratorConfig(**overrides)
    elif overrides:
        raise QueryError("pass either a config object or keyword overrides")
    return _WebGenerator(config).run()
