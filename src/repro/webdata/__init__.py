"""Web-repository substrate: URLs, page corpus, synthetic crawl generator."""

from repro.webdata.corpus import Page, Repository
from repro.webdata.generator import GeneratorConfig, generate_web
from repro.webdata.urls import (
    host_of,
    lexicographic_key,
    registered_domain,
    url_prefix,
    url_prefix_depth,
)

__all__ = [
    "Page",
    "Repository",
    "GeneratorConfig",
    "generate_web",
    "host_of",
    "registered_domain",
    "url_prefix",
    "url_prefix_depth",
    "lexicographic_key",
]
