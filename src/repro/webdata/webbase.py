"""WebBase-style bulk repository stream.

The paper describes research repositories as offering a "bulk access"
interface that ships the entire collection "as a stream of pages over the
network" (section 1.1).  This module implements that interface for our
repositories: a compact, seekable, length-prefixed binary stream holding
every page's URL, terms and out-links in crawl order.

The format is deliberately simple and self-contained::

    header:  magic  u32 | version u32 | num_pages u64
    record:  record_length vbyte
             url_length    vbyte | url bytes (utf-8)
             num_terms     vbyte | per term: length vbyte + utf-8 bytes
             num_links     vbyte | links as vbyte deltas (sorted targets)

Readers can stream page-by-page (``read_stream``) — the access pattern a
crawl-processing pipeline uses — or rebuild a full
:class:`~repro.webdata.corpus.Repository` (``read_repository``).  Reading
the first *n* pages of a stream and dropping dangling links reproduces the
paper's crawl-prefix datasets without materializing the full repository.
"""

from __future__ import annotations

import struct
from collections.abc import Iterator
from pathlib import Path

from repro.errors import StorageError
from repro.graph.digraph import GraphBuilder
from repro.util.varint import decode_vbyte, encode_vbyte
from repro.webdata.corpus import Page, Repository

_MAGIC = 0x5742_4153  # "WBAS"
_VERSION = 1
_HEADER = struct.Struct("<IIQ")


def write_stream(repository: Repository, path: Path | str) -> int:
    """Serialize ``repository`` to ``path``; returns bytes written."""
    path = Path(path)
    with open(path, "wb") as handle:
        handle.write(_HEADER.pack(_MAGIC, _VERSION, repository.num_pages))
        for page in repository.pages:
            record = _encode_record(page, repository)
            handle.write(encode_vbyte(len(record)))
            handle.write(record)
    return path.stat().st_size


def _encode_record(page: Page, repository: Repository) -> bytes:
    out = bytearray()
    url_bytes = page.url.encode("utf-8")
    out += encode_vbyte(len(url_bytes))
    out += url_bytes
    out += encode_vbyte(len(page.terms))
    for term in page.terms:
        term_bytes = term.encode("utf-8")
        out += encode_vbyte(len(term_bytes))
        out += term_bytes
    links = repository.graph.successors_list(page.page_id)
    out += encode_vbyte(len(links))
    previous = -1
    for target in links:
        out += encode_vbyte(target - previous - 1)
        previous = target
    return bytes(out)


def _decode_record(record: bytes) -> tuple[str, tuple[str, ...], list[int]]:
    position = 0
    url_length, position = decode_vbyte(record, position)
    url = record[position : position + url_length].decode("utf-8")
    position += url_length
    term_count, position = decode_vbyte(record, position)
    terms = []
    for _ in range(term_count):
        term_length, position = decode_vbyte(record, position)
        terms.append(record[position : position + term_length].decode("utf-8"))
        position += term_length
    link_count, position = decode_vbyte(record, position)
    links = []
    previous = -1
    for _ in range(link_count):
        delta, position = decode_vbyte(record, position)
        previous = previous + 1 + delta
        links.append(previous)
    return url, tuple(terms), links


def read_stream(
    path: Path | str, limit: int | None = None
) -> Iterator[tuple[int, str, tuple[str, ...], list[int]]]:
    """Stream (page_id, url, terms, out-links) records in crawl order.

    ``limit`` stops after the first *n* pages (the paper's prefix subsets);
    links pointing past the limit are still reported — the caller decides
    whether to drop them (``read_repository`` does).
    """
    path = Path(path)
    with open(path, "rb") as handle:
        header = handle.read(_HEADER.size)
        if len(header) != _HEADER.size:
            raise StorageError(f"{path} is not a WebBase stream (short header)")
        magic, version, num_pages = _HEADER.unpack(header)
        if magic != _MAGIC:
            raise StorageError(f"{path} is not a WebBase stream (bad magic)")
        if version != _VERSION:
            raise StorageError(f"unsupported stream version {version}")
        count = num_pages if limit is None else min(limit, num_pages)
        for page_id in range(count):
            length_bytes = bytearray()
            while True:
                byte = handle.read(1)
                if not byte:
                    raise StorageError("truncated stream record header")
                length_bytes += byte
                if not byte[0] & 0x80:
                    break
            record_length, _ = decode_vbyte(bytes(length_bytes))
            record = handle.read(record_length)
            if len(record) != record_length:
                raise StorageError("truncated stream record body")
            url, terms, links = _decode_record(record)
            yield page_id, url, terms, links


def stream_page_count(path: Path | str) -> int:
    """Number of pages a stream holds (header only, no record reads)."""
    path = Path(path)
    with open(path, "rb") as handle:
        header = handle.read(_HEADER.size)
    if len(header) != _HEADER.size:
        raise StorageError(f"{path} is not a WebBase stream (short header)")
    magic, _version, num_pages = _HEADER.unpack(header)
    if magic != _MAGIC:
        raise StorageError(f"{path} is not a WebBase stream (bad magic)")
    return num_pages


def read_repository(
    path: Path | str, limit: int | None = None, progress=None
) -> Repository:
    """Rebuild a repository (optionally a crawl-prefix) from a stream.

    Single bounded-memory pass: the page count is known from the stream
    header, so each record's links go straight into the
    :class:`~repro.graph.digraph.GraphBuilder`'s packed chunk buffers
    (links leaving the prefix are dropped on the fly) — no intermediate
    per-page Python link lists are retained.  ``progress`` (an optional
    :class:`~repro.obs.progress.ProgressReporter`) gets one update per
    streamed page under a ``stream`` phase.
    """
    from repro.obs import progress as obs_progress

    progress = obs_progress.ensure(progress)
    progress.start_phase("stream", unit="pages")
    count = stream_page_count(path)
    if limit is not None:
        count = min(limit, count)
    builder = GraphBuilder(count)
    pages: list[Page] = []
    for page_id, url, terms, links in read_stream(path, limit):
        pages.append(Page(page_id=page_id, url=url, terms=terms))
        builder.add_links(
            page_id, (target for target in links if target < count)
        )
        progress.update()
    progress.finish_phase()
    return Repository(pages=pages, graph=builder.build())
