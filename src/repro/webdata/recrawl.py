"""Recrawl workload: seeded mutations of an existing Web repository.

A production crawler never sees a frozen Web: between two visits to the
same site, pages move to new URLs, links are added and dropped, and
whole site sections get reorganized.  This module turns one repository
snapshot into a seeded sequence of such **recrawl steps**, each yielding
the exact edge delta (adds + removes) a crawler would discover plus the
full repository snapshot *after* the step — the ground truth a full
rebuild would be made from.

Three mutation kinds, mirroring what recrawl diffs of real crawls show:

* **URL moves** — a page moves to a new path on its own host.  The page
  keeps its crawl-order id (a recrawl recognizes the content and updates
  the URL in place), but some of its in-links go stale and are dropped,
  while same-host pages pick up fresh links to the new location.
* **Link churn** — background edit noise: a sampled fraction of existing
  links is rewired (a page updates one of its references) or dropped,
  and brand-new links appear with the same preferential skew the
  original generator used.
* **Host reorganizations** — one host renames a whole directory: every
  page under it moves at once, intra-host navigation links among the
  moved pages are refreshed, and a slice of links into the moved section
  from elsewhere on the host goes stale.

Page **count and ids never change** — the mutable serving path
(:mod:`repro.snode.delta`) overlays edge deltas on a fixed vertex set,
and the equivalence experiment (:mod:`repro.experiments.mutate`) needs
both sides of the comparison to share one id space.

Everything is driven by one seeded RNG and samples only from sorted
snapshots, so a given ``(repository, RecrawlConfig)`` pair always
produces the identical step sequence — the property that lets CI pin
the mutation benchmark's digests byte-exactly.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import QueryError
from repro.graph.digraph import Digraph
from repro.webdata.corpus import Page, Repository
from repro.webdata.urls import host_of


@dataclass(frozen=True)
class RecrawlConfig:
    """Knobs of the recrawl mutation sequence."""

    #: Number of recrawl steps to generate.
    steps: int = 4
    seed: int = 2003
    #: Fraction of pages whose URL moves per step.
    url_move_fraction: float = 0.01
    #: Fraction of existing edges rewired or dropped per step.
    link_churn_fraction: float = 0.02
    #: Probability that a step includes one host reorganization.
    host_reorg_probability: float = 0.75
    #: Probability that one stale in-link of a moved page is dropped.
    stale_link_probability: float = 0.3


@dataclass(frozen=True)
class RecrawlStep:
    """One recrawl delta plus the repository snapshot after applying it.

    ``added``/``removed`` are the *exact* edge delta against the previous
    snapshot (disjoint, each edge at most once), in the batch order a
    crawler would emit them — ready to feed straight into the WAL.
    """

    index: int
    repository: Repository
    added: tuple[tuple[int, int], ...]
    removed: tuple[tuple[int, int], ...]
    url_moves: int
    host_reorgs: int

    @property
    def delta_edges(self) -> int:
        """Total edges touched by this step."""
        return len(self.added) + len(self.removed)


def _split_url(url: str) -> tuple[str, str, str]:
    """``http://host/dir/leaf`` -> (host, directory-or-empty, leaf)."""
    rest = url.split("://", 1)[1]
    host, _, path = rest.partition("/")
    directory, _, leaf = path.rpartition("/")
    return host, directory, leaf


def _join_url(host: str, directory: str, leaf: str) -> str:
    if directory:
        return f"http://{host}/{directory}/{leaf}"
    return f"http://{host}/{leaf}"


class _Recrawler:
    """Stateful mutation driver; one instance per :func:`recrawl` call."""

    def __init__(self, repository: Repository, config: RecrawlConfig) -> None:
        if config.steps < 1:
            raise QueryError(f"steps must be >= 1, got {config.steps}")
        if repository.num_pages < 2:
            raise QueryError("recrawl needs at least two pages")
        self._config = config
        self._rng = random.Random(config.seed)
        self._num_pages = repository.num_pages
        self._urls = [page.url for page in repository.pages]
        self._terms = [page.terms for page in repository.pages]
        self._rows: list[set[int]] = [
            set(repository.graph.successors_list(v))
            for v in range(repository.num_pages)
        ]
        self._moves = 0  # global counter keeps moved URLs collision-free
        self._pages_by_host: dict[str, list[int]] = {}
        for page_id, url in enumerate(self._urls):
            self._pages_by_host.setdefault(host_of(url), []).append(page_id)

    # -- edge edits (exact delta tracked per step) ---------------------------

    def _add_edge(self, source: int, target: int) -> None:
        if source == target or target in self._rows[source]:
            return
        self._rows[source].add(target)
        if (source, target) in self._removed:
            self._removed.discard((source, target))
        else:
            self._added.add((source, target))

    def _remove_edge(self, source: int, target: int) -> None:
        if target not in self._rows[source]:
            return
        self._rows[source].discard(target)
        if (source, target) in self._added:
            self._added.discard((source, target))
        else:
            self._removed.add((source, target))

    # -- mutation kinds ------------------------------------------------------

    def _in_links(self) -> dict[int, list[int]]:
        """Snapshot in-neighbor lists (sorted sources per target)."""
        incoming: dict[int, list[int]] = {}
        for source in range(self._num_pages):
            for target in sorted(self._rows[source]):
                incoming.setdefault(target, []).append(source)
        return incoming

    def _move_url(self, page_id: int) -> None:
        """Relocate one page within its host (new leaf or sibling dir)."""
        host, directory, _leaf = _split_url(self._urls[page_id])
        self._moves += 1
        if directory and self._rng.random() < 0.5:
            # Move to a sibling directory (parent + fresh component).
            parent = directory.rpartition("/")[0]
            component = f"m{self._moves:04d}"
            directory = f"{parent}/{component}" if parent else component
        leaf = f"page{page_id:06d}m{self._moves:04d}.html"
        self._urls[page_id] = _join_url(host, directory, leaf)

    def _url_moves(self, incoming: dict[int, list[int]]) -> int:
        config = self._config
        count = int(round(self._num_pages * config.url_move_fraction))
        if config.url_move_fraction > 0:
            count = max(1, count)
        movers = self._rng.sample(range(self._num_pages), min(count, self._num_pages))
        for page_id in sorted(movers):
            self._move_url(page_id)
            # Some referrers have not recrawled yet: their link to the
            # old URL is dead and drops out of the graph.
            for source in incoming.get(page_id, ()):
                if self._rng.random() < config.stale_link_probability:
                    self._remove_edge(source, page_id)
            # The new location gets referenced from its own host (site
            # navigation regenerates immediately).
            host_pages = self._pages_by_host.get(host_of(self._urls[page_id]), [])
            for _ in range(min(2, len(host_pages) - 1)):
                source = self._rng.choice(host_pages)
                self._add_edge(source, page_id)
        return len(movers)

    def _host_reorg(self) -> int:
        """Rename one directory of one host; churn links around it."""
        candidates = sorted(
            host for host, pages in self._pages_by_host.items() if len(pages) >= 8
        )
        if not candidates:
            return 0
        host = self._rng.choice(candidates)
        pages = self._pages_by_host[host]
        directories: dict[str, list[int]] = {}
        for page_id in pages:
            _, directory, _ = _split_url(self._urls[page_id])
            if directory:
                directories.setdefault(directory.split("/")[0], []).append(page_id)
        if not directories:
            return 0
        component = self._rng.choice(sorted(directories))
        moved = directories[component]
        self._moves += 1
        renamed = f"{component}-r{self._moves:04d}"
        for page_id in moved:
            page_host, directory, leaf = _split_url(self._urls[page_id])
            parts = directory.split("/")
            parts[0] = renamed
            self._urls[page_id] = _join_url(page_host, "/".join(parts), leaf)
        # Navigation inside the moved section regenerates: every moved
        # page links a couple of its section siblings.
        for page_id in moved:
            for _ in range(2):
                target = self._rng.choice(moved)
                self._add_edge(page_id, target)
        # Links into the moved section from the rest of the host partly
        # go stale (hardcoded paths to the old directory).
        moved_set = set(moved)
        for source in pages:
            if source in moved_set:
                continue
            for target in sorted(self._rows[source] & moved_set):
                if self._rng.random() < self._config.stale_link_probability:
                    self._remove_edge(source, target)
        return 1

    def _link_churn(self) -> None:
        config = self._config
        edges = [
            (source, target)
            for source in range(self._num_pages)
            for target in sorted(self._rows[source])
        ]
        if not edges:
            return
        count = max(1, int(len(edges) * config.link_churn_fraction))
        churned = self._rng.sample(edges, min(count, len(edges)))
        for source, target in churned:
            roll = self._rng.random()
            if roll < 0.4:
                # The page dropped this reference outright.
                self._remove_edge(source, target)
            else:
                # The page rewired it: mostly to a popular target
                # (sampled from the edge multiset — preferential, like
                # the original generator), sometimes uniformly.
                self._remove_edge(source, target)
                if self._rng.random() < 0.8:
                    replacement = self._rng.choice(edges)[1]
                else:
                    replacement = self._rng.randrange(self._num_pages)
                self._add_edge(source, replacement)
        # Fresh links appear too (new content referencing old).
        for _ in range(max(1, count // 2)):
            source = self._rng.randrange(self._num_pages)
            target = self._rng.choice(edges)[1]
            self._add_edge(source, target)

    # -- driver --------------------------------------------------------------

    def _snapshot(self) -> Repository:
        pages = [
            Page(page_id=i, url=self._urls[i], terms=self._terms[i])
            for i in range(self._num_pages)
        ]
        graph = Digraph.from_adjacency(
            [sorted(row) for row in self._rows]
        )
        return Repository(pages=pages, graph=graph)

    def step(self, index: int) -> RecrawlStep:
        self._added: set[tuple[int, int]] = set()
        self._removed: set[tuple[int, int]] = set()
        incoming = self._in_links()
        url_moves = self._url_moves(incoming)
        host_reorgs = 0
        if self._rng.random() < self._config.host_reorg_probability:
            host_reorgs = self._host_reorg()
        self._link_churn()
        return RecrawlStep(
            index=index,
            repository=self._snapshot(),
            added=tuple(sorted(self._added)),
            removed=tuple(sorted(self._removed)),
            url_moves=url_moves,
            host_reorgs=host_reorgs,
        )


def recrawl(
    repository: Repository, config: RecrawlConfig | None = None, **overrides
) -> list[RecrawlStep]:
    """Generate the seeded recrawl step sequence for ``repository``.

    Accepts either a full :class:`RecrawlConfig` or keyword overrides of
    its fields, e.g. ``recrawl(repo, steps=6, seed=11)``.  Step ``k``'s
    snapshot is the original repository with deltas ``0..k`` applied;
    its ``added``/``removed`` tuples are the exact difference against
    step ``k-1`` (step 0: against the input repository).
    """
    if config is None:
        config = RecrawlConfig(**overrides)
    elif overrides:
        raise QueryError("pass either a config object or keyword overrides")
    driver = _Recrawler(repository, config)
    return [driver.step(index) for index in range(config.steps)]
