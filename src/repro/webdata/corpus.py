"""The :class:`Repository` — pages, URLs, terms, and the link graph.

A repository is the unit every experiment operates on: an ordered list of
pages (crawl order), each with a URL and a bag of text terms, plus the Web
graph over those pages.  Crawl-prefix subsets implement the paper's
experimental-setup rule of "reading the repository sequentially from the
beginning" to obtain the 25/50/75/100/115-million-page datasets (here at a
scaled-down page count).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field

from repro.errors import QueryError
from repro.graph.digraph import Digraph, GraphBuilder
from repro.webdata.urls import host_of, in_domain, registered_domain


@dataclass(frozen=True)
class Page:
    """One Web page: crawl-order id, URL, and its text as a term sequence."""

    page_id: int
    url: str
    terms: tuple[str, ...] = ()

    @property
    def host(self) -> str:
        """Full host name of the page's URL."""
        return host_of(self.url)

    @property
    def domain(self) -> str:
        """Registered (two-level) domain of the page's URL."""
        return registered_domain(self.url)


@dataclass
class Repository:
    """Pages in crawl order plus the Web graph over their ids."""

    pages: list[Page]
    graph: Digraph
    _domain_members: dict[str, list[int]] = field(default_factory=dict, repr=False)
    _url_to_id: dict[str, int] = field(default_factory=dict, repr=False)
    _transpose: Digraph | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if len(self.pages) != self.graph.num_vertices:
            raise QueryError(
                f"{len(self.pages)} pages but graph has "
                f"{self.graph.num_vertices} vertices"
            )
        for index, page in enumerate(self.pages):
            if page.page_id != index:
                raise QueryError(
                    f"page at position {index} has id {page.page_id}; ids must "
                    "be dense crawl-order"
                )
        self._rebuild_maps()

    def _rebuild_maps(self) -> None:
        self._domain_members = {}
        self._url_to_id = {}
        for page in self.pages:
            self._domain_members.setdefault(page.domain, []).append(page.page_id)
            self._url_to_id[page.url] = page.page_id

    # -- basic accessors ----------------------------------------------------

    @property
    def num_pages(self) -> int:
        """Number of pages (== graph vertices)."""
        return len(self.pages)

    @property
    def num_links(self) -> int:
        """Number of hyperlinks (== graph edges)."""
        return self.graph.num_edges

    def page(self, page_id: int) -> Page:
        """Page by id."""
        try:
            return self.pages[page_id]
        except IndexError as exc:
            raise QueryError(f"page id {page_id} out of range") from exc

    def page_by_url(self, url: str) -> Page | None:
        """Page with exactly this URL, or None."""
        page_id = self._url_to_id.get(url)
        return None if page_id is None else self.pages[page_id]

    def domains(self) -> list[str]:
        """All registered domains present, sorted."""
        return sorted(self._domain_members)

    def pages_in_domain(self, domain: str) -> list[int]:
        """Ids of pages whose registered domain equals ``domain``.

        Subdomain membership (``cs.stanford.edu`` in ``stanford.edu``) is
        included because the registered domain collapses DNS levels.
        """
        exact = self._domain_members.get(domain.lower())
        if exact is not None:
            return list(exact)
        # Fall back to suffix matching for full-host queries.
        return [p.page_id for p in self.pages if in_domain(p.url, domain)]

    def transpose(self) -> Digraph:
        """Backlink graph, computed once and cached."""
        if self._transpose is None:
            self._transpose = self.graph.transpose()
        return self._transpose

    # -- crawl-prefix subsets -------------------------------------------------

    def crawl_prefix(self, num_pages: int) -> "Repository":
        """First ``num_pages`` pages in crawl order, links restricted to them.

        This mirrors the paper's dataset construction: "Each data set was
        created by reading the repository sequentially from the beginning."
        Links that point outside the prefix are dropped, exactly as a crawl
        cut off after n pages would lack those targets.
        """
        if not 0 <= num_pages <= self.num_pages:
            raise QueryError(
                f"prefix size {num_pages} outside [0, {self.num_pages}]"
            )
        builder = GraphBuilder(num_pages)
        for source in range(num_pages):
            for target in self.graph.successors(source):
                if target < num_pages:
                    builder.add_edge(source, int(target))
        return Repository(pages=self.pages[:num_pages], graph=builder.build())

    # -- construction ---------------------------------------------------------

    @classmethod
    def from_parts(
        cls,
        urls: Sequence[str],
        edges: Iterable[tuple[int, int]],
        terms: Sequence[Sequence[str]] | None = None,
    ) -> "Repository":
        """Convenience constructor from URL list + edge list (+ terms)."""
        pages = [
            Page(
                page_id=i,
                url=url,
                terms=tuple(terms[i]) if terms is not None else (),
            )
            for i, url in enumerate(urls)
        ]
        graph = Digraph.from_edges(len(urls), edges)
        return cls(pages=pages, graph=graph)
