"""URL parsing helpers.

The partition pipeline needs three things from a URL:

* its *registered domain* (top two DNS levels — the paper's initial
  partition P0 groups ``cs.stanford.edu`` and ``ee.stanford.edu`` together
  under ``stanford.edu``);
* its *host* (full DNS name);
* its *path prefix at depth k* (URL split discriminates on one more
  directory level per application, up to depth 3).

URLs here are plain ``http://host/dir1/dir2/page.html`` strings; no query
strings or fragments are modelled because the paper's splits never use them.
"""

from __future__ import annotations

from repro.errors import QueryError

_SCHEME = "http://"


def _split(url: str) -> tuple[str, str]:
    """Return (host, path) for a URL; path has no leading slash."""
    if url.startswith(_SCHEME):
        rest = url[len(_SCHEME) :]
    elif "://" in url:
        rest = url.split("://", 1)[1]
    else:
        rest = url
    if "/" in rest:
        host, path = rest.split("/", 1)
    else:
        host, path = rest, ""
    if not host:
        raise QueryError(f"URL {url!r} has no host")
    return host.lower(), path


def host_of(url: str) -> str:
    """Full host name of ``url`` (e.g. ``cs.stanford.edu``)."""
    return _split(url)[0]


def registered_domain(url_or_host: str) -> str:
    """Top two DNS levels (e.g. ``stanford.edu`` for ``cs.stanford.edu``).

    This is the paper's domain notion for partition P0 and for the domain
    index: "we only use the top two levels of the DNS naming hierarchy".
    """
    host = host_of(url_or_host) if "/" in url_or_host or "://" in url_or_host else url_or_host.lower()
    labels = host.split(".")
    if len(labels) < 2:
        return host
    return ".".join(labels[-2:])


def url_prefix(url: str, depth: int) -> str:
    """Host plus the first ``depth`` path directories of ``url``.

    ``depth=0`` returns just the host; directories beyond what the URL has
    saturate (the full directory part is returned, excluding the leaf page).
    URL split keys elements on this value.
    """
    if depth < 0:
        raise QueryError(f"prefix depth must be >= 0, got {depth}")
    host, path = _split(url)
    segments = [s for s in path.split("/") if s]
    # The last segment is the page name unless the path ends with '/'.
    directories = segments[:-1] if segments and not path.endswith("/") else segments
    chosen = directories[: depth]
    if not chosen:
        return host
    return host + "/" + "/".join(chosen)


def url_prefix_depth(url: str) -> int:
    """Number of directory levels in ``url``'s path."""
    host, path = _split(url)
    del host
    segments = [s for s in path.split("/") if s]
    directories = segments[:-1] if segments and not path.endswith("/") else segments
    return len(directories)


def lexicographic_key(url: str) -> str:
    """Sort key placing lexicographically-close URLs next to each other.

    Host first (reversed-label order so sibling hosts of one domain sort
    together), then path — this is the ordering both Link3 and the S-Node
    intra-supernode numbering use.
    """
    host, path = _split(url)
    reversed_host = ".".join(reversed(host.split(".")))
    return f"{reversed_host}/{path}"


def in_domain(url: str, domain: str) -> bool:
    """True iff ``url``'s host is ``domain`` or a subdomain of it."""
    host = host_of(url)
    domain = domain.lower()
    return host == domain or host.endswith("." + domain)
