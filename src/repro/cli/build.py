"""``repro generate`` and ``repro build`` — stream synthesis and builds."""

from __future__ import annotations

import argparse
import sys


def _cmd_generate(arguments: argparse.Namespace) -> int:
    from repro.webdata.generator import GeneratorConfig, generate_web
    from repro.webdata.webbase import write_stream

    repository = generate_web(
        GeneratorConfig(num_pages=arguments.pages, seed=arguments.seed)
    )
    size = write_stream(repository, arguments.out)
    print(
        f"wrote {repository.num_pages} pages / {repository.num_links} links "
        f"({size} bytes) to {arguments.out}"
    )
    return 0


def _cmd_build(arguments: argparse.Namespace) -> int:
    from repro.obs.progress import ProgressReporter
    from repro.obs.tracing import Tracer, activated
    from repro.snode.build import BuildOptions, build_snode
    from repro.webdata.webbase import read_repository

    progress = None if arguments.quiet else ProgressReporter(label="build")
    tracer = Tracer()
    with activated(tracer):
        with tracer.span("build.stream", path=str(arguments.stream)):
            repository = read_repository(
                arguments.stream, limit=arguments.limit, progress=progress
            )
        options = BuildOptions(
            transpose=arguments.transpose, workers=arguments.workers
        )
        build = build_snode(
            repository,
            arguments.out,
            options,
            progress=progress,
            resume=arguments.resume,
        )
    direction = "WGT (backlinks)" if arguments.transpose else "WG"
    print(
        f"built {direction}: {build.model.num_supernodes} supernodes, "
        f"{build.model.num_superedges} superedges, "
        f"{build.bits_per_edge:.2f} bits/edge -> {arguments.out}"
    )
    if build.resumed_stages:
        print(
            f"resumed from checkpoints: skipped "
            f"{', '.join(build.resumed_stages)}",
            file=sys.stderr,
        )
    if arguments.trace:
        print("build trace (span-attributed phases):", file=sys.stderr)
        print(tracer.render(max_depth=arguments.trace_depth), file=sys.stderr)
    if arguments.trace_out:
        tracer.write_jsonl(arguments.trace_out)
        print(f"trace spans written to {arguments.trace_out}", file=sys.stderr)
    if arguments.folded:
        tracer.write_folded(arguments.folded)
        print(f"folded stacks written to {arguments.folded}", file=sys.stderr)
    build.store.close()
    return 0


def register(commands) -> None:
    """Attach the ``generate`` and ``build`` subparsers."""
    generate = commands.add_parser("generate", help="synthesize a crawl stream")
    generate.add_argument("--pages", type=int, default=10_000)
    generate.add_argument("--seed", type=int, default=2003)
    generate.add_argument("--out", required=True)
    generate.set_defaults(handler=_cmd_generate)

    build = commands.add_parser("build", help="build an S-Node representation")
    build.add_argument("--stream", required=True, help="WebBase stream file")
    build.add_argument("--out", required=True, help="output directory")
    build.add_argument("--limit", type=int, default=None, help="crawl prefix")
    build.add_argument("--transpose", action="store_true", help="build WGT")
    build.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="encode-stage worker processes (default: REPRO_BUILD_WORKERS "
        "or 1 = serial; output bytes are identical for any N)",
    )
    build.add_argument(
        "--resume",
        action="store_true",
        help="continue an interrupted build from its last completed stage "
        "checkpoint (falls back to a fresh build when none applies)",
    )
    build.add_argument(
        "--trace",
        action="store_true",
        help="print the span tree attributing build time to phases (stderr)",
    )
    build.add_argument(
        "--trace-out",
        default=None,
        metavar="FILE",
        help="write the full span tree as JSON lines to FILE",
    )
    build.add_argument(
        "--trace-depth",
        type=int,
        default=2,
        help="maximum span depth shown by --trace (default 2)",
    )
    build.add_argument(
        "--folded",
        default=None,
        metavar="FILE",
        help="write flamegraph folded stacks (span path + self time) to FILE",
    )
    build.add_argument(
        "--quiet", action="store_true", help="suppress stderr progress reporting"
    )
    build.set_defaults(handler=_cmd_build)
