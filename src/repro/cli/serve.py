"""``repro serve`` and ``repro loadgen``."""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import sys
import tempfile
from pathlib import Path


def _cmd_serve(arguments: argparse.Namespace) -> int:
    from repro.experiments.harness import dataset, sweep_sizes
    from repro.serve.daemon import GraphQueryDaemon, ServeContext

    size = arguments.size or sweep_sizes()[3]
    if not arguments.quiet:
        print(f"[serve] synthesizing {size}-page repository...", file=sys.stderr)
    repository = dataset(size)
    own_tmp = (
        tempfile.TemporaryDirectory() if arguments.workdir is None else None
    )
    base = Path(arguments.workdir or own_tmp.name)
    try:
        if not arguments.quiet:
            print("[serve] building S-Node stores (forward + transpose)...",
                  file=sys.stderr)
        context = ServeContext.build(
            repository,
            base,
            buffer_bytes=arguments.buffer_kb * 1024,
            stripes=arguments.stripes,
        )
        try:
            daemon = GraphQueryDaemon(
                context,
                host=arguments.host,
                port=arguments.port,
                workers=arguments.workers,
                queue_limit=arguments.queue_limit,
            )

            async def serve() -> None:
                await daemon.start()
                print(
                    f"serving {repository.num_pages} pages on "
                    f"{arguments.host}:{daemon.bound_port} "
                    f"(workers={daemon.workers}, "
                    f"queue_limit={daemon.queue_limit})",
                    flush=True,
                )
                await daemon.serve_forever()

            with contextlib.suppress(KeyboardInterrupt):
                asyncio.run(serve())
        finally:
            context.close()
    finally:
        if own_tmp is not None:
            own_tmp.cleanup()
    return 0


def _cmd_loadgen(arguments: argparse.Namespace) -> int:
    from repro.serve.loadgen import run_load

    load = run_load(
        arguments.host,
        arguments.port,
        concurrency=arguments.concurrency,
        requests_per_client=arguments.requests,
    )
    histogram = load.latency_histogram()
    print(
        f"requests ok {load.requests_ok} / "
        f"{load.concurrency * load.requests_per_client}, "
        f"failed {load.requests_failed}, "
        f"backpressure retries {load.shed_retries}"
    )
    print(
        f"throughput {load.throughput_qps:.1f} q/s, latency p50 "
        f"{histogram.p50 * 1000:.1f} ms, p99 {histogram.p99 * 1000:.1f} ms"
    )
    consistent = load.consistent()
    print(f"results consistent across clients: {consistent}")
    for client in load.clients:
        if client.error:
            print(f"client {client.client_index}: ERROR {client.error}")
    failed = (
        load.requests_failed > 0
        or not consistent
        or any(client.error for client in load.clients)
    )
    return 1 if failed else 0


def register(commands) -> None:
    """Attach the ``serve`` and ``loadgen`` subparsers."""
    serve = commands.add_parser(
        "serve", help="run the graph query daemon over a synthesized store"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=7411, help="0 picks a free port"
    )
    serve.add_argument("--size", type=int, default=None,
                       help="repository pages (default: the Figure 11 size)")
    serve.add_argument("--buffer-kb", type=int, default=512)
    serve.add_argument("--workers", type=int, default=8)
    serve.add_argument("--queue-limit", type=int, default=32)
    serve.add_argument("--stripes", type=int, default=8)
    serve.add_argument("--workdir", default=None,
                       help="build directory (default: temporary)")
    serve.add_argument("--quiet", action="store_true")
    serve.set_defaults(handler=_cmd_serve)

    loadgen = commands.add_parser(
        "loadgen", help="drive a running daemon with the Figure 11 mix"
    )
    loadgen.add_argument("--host", default="127.0.0.1")
    loadgen.add_argument("--port", type=int, default=7411)
    loadgen.add_argument("--concurrency", type=int, default=8)
    loadgen.add_argument("--requests", type=int, default=12,
                         help="query requests per client")
    loadgen.set_defaults(handler=_cmd_loadgen)
