"""``repro serve`` and ``repro loadgen``."""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import sys
import tempfile
from pathlib import Path


def _cmd_serve(arguments: argparse.Namespace) -> int:
    import signal

    from repro.experiments.harness import dataset, sweep_sizes
    from repro.obs.accesslog import AccessLog, SlowQueryLog
    from repro.obs.flightrecorder import FlightRecorder
    from repro.serve.daemon import GraphQueryDaemon, ServeContext
    from repro.serve.telemetry import ServeTelemetry
    from repro.storage import faults

    size = arguments.size or sweep_sizes()[3]
    if not arguments.quiet:
        print(f"[serve] synthesizing {size}-page repository...", file=sys.stderr)
    repository = dataset(size)
    own_tmp = (
        tempfile.TemporaryDirectory() if arguments.workdir is None else None
    )
    base = Path(arguments.workdir or own_tmp.name)
    try:
        if not arguments.quiet:
            print("[serve] building S-Node stores (forward + transpose)...",
                  file=sys.stderr)
        context = ServeContext.build(
            repository,
            base,
            buffer_bytes=arguments.buffer_kb * 1024,
            stripes=arguments.stripes,
            on_corruption=arguments.on_corruption,
        )
        if arguments.corrupt_pages:
            # Chaos fixture: flip bytes inside committed payload regions,
            # then reopen the stores cold so every read re-verifies CRCs.
            context.close()
            corrupted = 0
            for name in ("serve_f", "serve_b"):
                corrupted += faults.corrupt_snode_regions(
                    base / name,
                    limit=arguments.corrupt_pages,
                    seed=arguments.fault_seed,
                )
            if not arguments.quiet:
                print(
                    f"[serve] corrupted {corrupted} stored regions "
                    f"(on_corruption={arguments.on_corruption})",
                    file=sys.stderr,
                )
            context = ServeContext.open(
                repository,
                base,
                buffer_bytes=arguments.buffer_kb * 1024,
                stripes=arguments.stripes,
                on_corruption=arguments.on_corruption,
            )
        if arguments.mutable:
            # Mutable serving: open/replay the WAL sidecar and accept
            # add_edges/remove_edges/compact ops.
            opened = context.enable_mutation()
            if not arguments.quiet:
                print(
                    f"[serve] mutation enabled: replayed "
                    f"{opened['wal_records']} WAL records "
                    f"({opened['wal_bytes']} bytes, "
                    f"{opened['repaired_bytes']} torn bytes repaired)",
                    file=sys.stderr,
                )
        fault_plan = None
        if arguments.fault_eio_rate or arguments.fault_slow_rate:
            fault_plan = faults.FaultPlan(
                seed=arguments.fault_seed,
                eio_rate=arguments.fault_eio_rate,
                slow_read_rate=arguments.fault_slow_rate,
                slow_read_seconds=arguments.fault_slow_ms / 1000.0,
            )
        telemetry = ServeTelemetry(
            window_seconds=arguments.window_seconds,
            windows=arguments.windows,
            access_log=AccessLog(
                sample_every=arguments.access_sample,
                path=arguments.access_log,
            ),
            slow_log=SlowQueryLog(
                threshold_s=arguments.slow_threshold_ms / 1000.0,
                top_k=arguments.slow_top,
                path=arguments.slow_log,
            ),
        )
        try:
            daemon = GraphQueryDaemon(
                context,
                host=arguments.host,
                port=arguments.port,
                workers=arguments.workers,
                queue_limit=arguments.queue_limit,
                telemetry=telemetry,
                flight=FlightRecorder(
                    recent=arguments.flight_recent,
                    slow_threshold_s=arguments.slow_threshold_ms / 1000.0,
                    slow_top=arguments.slow_top,
                ),
            )

            async def serve() -> None:
                await daemon.start()
                stop = asyncio.Event()
                loop = asyncio.get_running_loop()
                # SIGINT and SIGTERM (`kill`, Ctrl-C, service managers)
                # take the same graceful path: stop accepting, drain
                # in-flight work, then write the shutdown debug bundle.
                for signum in (signal.SIGINT, signal.SIGTERM):
                    with contextlib.suppress(
                        NotImplementedError, ValueError, RuntimeError
                    ):
                        loop.add_signal_handler(signum, stop.set)

                def _swap_done(task: asyncio.Task) -> None:
                    try:
                        outcome = task.result()
                    except Exception as exc:  # noqa: BLE001 — report, keep serving
                        print(f"[serve] store swap failed: {exc}",
                              file=sys.stderr, flush=True)
                    else:
                        print(
                            f"[serve] swapped stores to "
                            f"{outcome['workdir']} (generation "
                            f"{outcome['generation']}, drained "
                            f"{outcome['drained']} in-flight)",
                            file=sys.stderr, flush=True,
                        )

                def _on_hup() -> None:
                    task = loop.create_task(
                        daemon.swap_stores(arguments.swap_dir)
                    )
                    task.add_done_callback(_swap_done)

                if arguments.swap_dir and hasattr(signal, "SIGHUP"):
                    with contextlib.suppress(
                        NotImplementedError, ValueError, RuntimeError
                    ):
                        loop.add_signal_handler(signal.SIGHUP, _on_hup)
                print(
                    f"serving {repository.num_pages} pages on "
                    f"{arguments.host}:{daemon.bound_port} "
                    f"(workers={daemon.workers}, "
                    f"queue_limit={daemon.queue_limit})",
                    flush=True,
                )
                try:
                    await stop.wait()
                finally:
                    await daemon.stop()

            # Fallback for platforms without add_signal_handler: turn
            # SIGTERM into the KeyboardInterrupt that asyncio.run already
            # handles (add_signal_handler, where supported, overrides it).
            def _terminate(signum, frame):
                raise KeyboardInterrupt

            with contextlib.suppress(ValueError):  # non-main thread
                signal.signal(signal.SIGTERM, _terminate)

            plan_scope = (
                faults.activated(fault_plan)
                if fault_plan is not None
                else contextlib.nullcontext()
            )
            with plan_scope, contextlib.suppress(KeyboardInterrupt):
                asyncio.run(serve())
            if arguments.debug_bundle:
                path = daemon.dump_debug_bundle(arguments.debug_bundle)
                if not arguments.quiet:
                    print(f"[serve] debug bundle written to {path}",
                          file=sys.stderr)
        finally:
            telemetry.access_log.close()
            telemetry.slow_log.close()
            context.close()
    finally:
        if own_tmp is not None:
            own_tmp.cleanup()
    return 0


def _cmd_loadgen(arguments: argparse.Namespace) -> int:
    from repro.experiments.harness import emit_report
    from repro.serve.loadgen import run_load

    deadline_ms = arguments.deadline_ms
    deadline_every = arguments.deadline_every
    if arguments.chaos:
        # The chaos preset: deadlines on every third request, at the
        # budget the chaos sweep gates on.  Explicit flags still win.
        if deadline_ms is None:
            deadline_ms = 250.0
        if deadline_every == 0:
            deadline_every = 3
    load = run_load(
        arguments.host,
        arguments.port,
        concurrency=arguments.concurrency,
        requests_per_client=arguments.requests,
        deadline_ms=deadline_ms,
        deadline_every=deadline_every,
        retry_seed=arguments.retry_seed,
        retry_budget=arguments.retry_budget,
    )
    summary = load.summary()
    client_hist = load.latency_histogram()
    print(
        f"requests ok {load.requests_ok} / "
        f"{load.concurrency * load.requests_per_client}, "
        f"degraded {load.requests_degraded}, "
        f"timeout {load.requests_timeout}, "
        f"failed {load.requests_failed}, "
        f"backpressure retries {load.shed_retries}"
    )
    if load.deadline_requests:
        print(
            f"deadlines: {load.deadline_requests} requests carried "
            f"{deadline_ms:g} ms, {load.requests_timeout} timed out, "
            f"honored: {load.deadline_honored()}"
        )
    if client_hist.count:
        print(
            f"throughput {load.throughput_qps:.1f} q/s, client latency p50 "
            f"{summary['client_latency']['latency_ms_p50']:.1f} ms, p99 "
            f"{summary['client_latency']['latency_ms_p99']:.1f} ms"
        )
        print(
            f"server latency p50 "
            f"{summary['server_latency']['latency_ms_p50']:.1f} ms, p99 "
            f"{summary['server_latency']['latency_ms_p99']:.1f} ms "
            f"(queue wait p99 "
            f"{summary['server_latency']['queue_wait_ms_p99']:.1f} ms)"
        )
    else:
        print("throughput 0.0 q/s (no request succeeded)")
    consistent = load.consistent()
    print(f"results consistent across clients: {consistent}")
    for client in load.clients:
        if client.error:
            print(f"client {client.client_index}: ERROR {client.error}")
    emit_report(
        arguments.json_dir,
        "loadgen",
        summary,
        params={
            "host": arguments.host,
            "port": arguments.port,
            "concurrency": arguments.concurrency,
            "requests_per_client": arguments.requests,
            "deadline_ms": deadline_ms,
            "deadline_every": deadline_every,
            "retry_seed": arguments.retry_seed,
        },
        histograms={
            "client_latency": client_hist.to_dict(),
            "server_latency": load.server_latency_histogram().to_dict(),
            "queue_wait": load.queue_wait_histogram().to_dict(),
        },
    )
    failed = (
        load.requests_failed > 0
        or not consistent
        or not load.deadline_honored()
        or any(client.error for client in load.clients)
    )
    return 1 if failed else 0


def register(commands) -> None:
    """Attach the ``serve`` and ``loadgen`` subparsers."""
    from repro.experiments.harness import add_report_arguments
    from repro.obs.accesslog import (
        DEFAULT_SAMPLE_EVERY,
        DEFAULT_SLOW_TOP_K,
    )
    from repro.obs.flightrecorder import DEFAULT_RECENT
    from repro.obs.windowed import DEFAULT_WINDOW_SECONDS, DEFAULT_WINDOWS

    serve = commands.add_parser(
        "serve", help="run the graph query daemon over a synthesized store"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=7411, help="0 picks a free port"
    )
    serve.add_argument("--size", type=int, default=None,
                       help="repository pages (default: the Figure 11 size)")
    serve.add_argument("--buffer-kb", type=int, default=512)
    serve.add_argument("--workers", type=int, default=8)
    serve.add_argument("--queue-limit", type=int, default=32)
    serve.add_argument("--stripes", type=int, default=8)
    serve.add_argument("--workdir", default=None,
                       help="build directory (default: temporary)")
    serve.add_argument(
        "--window-seconds", type=float, default=DEFAULT_WINDOW_SECONDS,
        help="telemetry window width (seconds)",
    )
    serve.add_argument(
        "--windows", type=int, default=DEFAULT_WINDOWS,
        help="live windows retained (the decay horizon)",
    )
    serve.add_argument(
        "--access-log", default=None, metavar="FILE",
        help="append sampled request records as JSONL to FILE",
    )
    serve.add_argument(
        "--access-sample", type=int, default=DEFAULT_SAMPLE_EVERY,
        metavar="N", help="log every Nth request (default: every request)",
    )
    serve.add_argument(
        "--slow-log", default=None, metavar="FILE",
        help="append slow-query records as JSONL to FILE",
    )
    serve.add_argument(
        "--slow-threshold-ms", type=float, default=100.0,
        help="slow-query threshold in milliseconds (default 100)",
    )
    serve.add_argument(
        "--slow-top", type=int, default=DEFAULT_SLOW_TOP_K,
        help="slowest requests retained in memory (default 32)",
    )
    serve.add_argument(
        "--flight-recent", type=int, default=DEFAULT_RECENT, metavar="N",
        help="recent request traces retained by the flight recorder "
             "(slow/error traces are retained separately)",
    )
    serve.add_argument(
        "--debug-bundle", default=None, metavar="DIR",
        help="write a debug bundle (traces + stats + config + slow log) "
             "to DIR on shutdown",
    )
    serve.add_argument(
        "--swap-dir", default=None, metavar="DIR",
        help="on SIGHUP, hot-swap onto the serve_f/serve_b pair under DIR "
             "(validate, open, drain, switch — no dropped requests; with "
             "--mutable the WAL hand-off rides the same generation bump)",
    )
    serve.add_argument(
        "--mutable", action="store_true",
        help="serve mutably: replay/append the graph.wal sidecar and "
             "accept add_edges/remove_edges/compact ops",
    )
    serve.add_argument(
        "--on-corruption", choices=("raise", "degrade"), default="raise",
        help="corrupt-region policy of the serving stores (degrade = "
             "quarantine and answer without the region)",
    )
    serve.add_argument(
        "--corrupt-pages", type=int, default=0, metavar="N",
        help="chaos fixture: flip one byte in N stored regions per "
             "direction after the build, then reopen cold",
    )
    serve.add_argument(
        "--fault-seed", type=int, default=0,
        help="seed of the injected-fault schedule (and --corrupt-pages)",
    )
    serve.add_argument(
        "--fault-eio-rate", type=float, default=0.0,
        help="probability of an injected transient EIO per read",
    )
    serve.add_argument(
        "--fault-slow-rate", type=float, default=0.0,
        help="probability of an injected slow read per read",
    )
    serve.add_argument(
        "--fault-slow-ms", type=float, default=5.0,
        help="stall of each injected slow read (milliseconds)",
    )
    serve.add_argument("--quiet", action="store_true")
    serve.set_defaults(handler=_cmd_serve)

    loadgen = commands.add_parser(
        "loadgen", help="drive a running daemon with the Figure 11 mix"
    )
    loadgen.add_argument("--host", default="127.0.0.1")
    loadgen.add_argument("--port", type=int, default=7411)
    loadgen.add_argument("--concurrency", type=int, default=8)
    loadgen.add_argument("--requests", type=int, default=12,
                         help="query requests per client")
    loadgen.add_argument(
        "--chaos", action="store_true",
        help="chaos preset: attach a 250 ms deadline to every third "
             "request (explicit --deadline-* flags override)",
    )
    loadgen.add_argument(
        "--deadline-ms", type=float, default=None,
        help="deadline budget attached to requests (default: none)",
    )
    loadgen.add_argument(
        "--deadline-every", type=int, default=0, metavar="K",
        help="attach the deadline to every Kth request (0 = all)",
    )
    loadgen.add_argument(
        "--retry-seed", type=int, default=0,
        help="seed of the backpressure retry jitter streams",
    )
    loadgen.add_argument(
        "--retry-budget", type=int, default=None, metavar="TOKENS",
        help="shared cap on total backpressure retries (default: none)",
    )
    add_report_arguments(loadgen)
    loadgen.set_defaults(handler=_cmd_loadgen)
