"""``repro fsck`` and ``repro verify`` — integrity checking."""

from __future__ import annotations

import argparse
import json


def _cmd_verify(arguments: argparse.Namespace) -> int:
    from repro.snode.verify import verify_snode

    report = verify_snode(arguments.root, decode_payloads=not arguments.fast)
    if report.ok:
        print(f"OK ({report.graphs_checked} graphs checked)")
        return 0
    for problem in report.problems:
        print(f"PROBLEM: {problem}")
    return 1


def _cmd_fsck(arguments: argparse.Namespace) -> int:
    from repro.storage.fsck import fsck

    report = fsck(arguments.root, repair=arguments.repair)
    if arguments.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(report.render())
    return 0 if report.ok else 1


def register(commands) -> None:
    """Attach the ``verify`` and ``fsck`` subparsers."""
    verify = commands.add_parser("verify", help="integrity-check a representation")
    verify.add_argument("root")
    verify.add_argument(
        "--fast", action="store_true", help="skip payload decoding"
    )
    verify.set_defaults(handler=_cmd_verify)

    fsck = commands.add_parser(
        "fsck",
        help="check a build directory: atomic-commit state, manifest file "
        "table, per-region checksums (any scheme)",
    )
    fsck.add_argument("root")
    fsck.add_argument(
        "--repair",
        action="store_true",
        help="quarantine corrupt S-Node regions into quarantine.json so "
        "degrade-mode stores keep serving the rest",
    )
    fsck.add_argument(
        "--json",
        action="store_true",
        help="emit the machine-readable report instead of text",
    )
    fsck.set_defaults(handler=_cmd_fsck)
