"""``repro trace`` — render recorded request traces.

Reads traces from either a **debug bundle** on disk (``--bundle DIR``,
written by ``repro serve --debug-bundle`` at shutdown or by
``repro trace --dump`` from a live daemon) or straight from a **running
daemon** (``--host/--port``, via the inline ``debug`` op).

* default — one request as a **waterfall**: lifecycle phases over the
  server time, the span tree beneath (offset into the execute phase),
  every span carrying its attributed storage counters.  Select the
  request by trace id (positional), ``--rid``, or let it default to the
  slowest retained trace;
* ``--folded`` — every selected trace folded into flamegraph input
  (op -> phase -> span stacks, weighted by self time in µs);
* ``--list`` — one summary line per retained trace;
* ``--dump DIR`` — fetch a live daemon's flight recorder and write it
  as a debug bundle to DIR (then render nothing).
"""

from __future__ import annotations

import argparse
import sys


def _load_traces(arguments: argparse.Namespace) -> tuple[list[dict], dict]:
    """The traces to render plus bundle-ish context (slow log etc.)."""
    from repro.errors import ServeError
    from repro.obs.flightrecorder import read_debug_bundle

    if arguments.bundle:
        try:
            bundle = read_debug_bundle(arguments.bundle)
        except ValueError as exc:
            raise ServeError(str(exc)) from exc
        return bundle["traces"], bundle
    from repro.serve.loadgen import ServeClient
    from repro.serve.retry import RetryPolicy

    try:
        # A handful of jittered attempts rides out a daemon mid-restart
        # (e.g. around a store swap) without hanging on a dead address.
        client = ServeClient.connect(
            arguments.host,
            arguments.port,
            policy=RetryPolicy(base_s=0.1, cap_s=1.0, max_attempts=5),
        )
    except ServeError as exc:
        raise ServeError(
            f"cannot connect to daemon at "
            f"{arguments.host}:{arguments.port}: {exc} "
            f"(use --bundle DIR for a recorded bundle)"
        ) from exc
    with client:
        debug = client.debug()
    return debug.get("traces", []), debug


def _select(traces: list[dict], arguments: argparse.Namespace) -> list[dict]:
    """Apply the trace-id / rid selection; default to the slowest."""
    from repro.errors import ServeError

    if arguments.trace_ids:
        wanted = set(arguments.trace_ids)
        selected = [t for t in traces if str(t.get("trace")) in wanted]
        missing = wanted - {str(t.get("trace")) for t in selected}
        if missing:
            raise ServeError(
                f"no retained trace with id(s): {', '.join(sorted(missing))}"
            )
        return selected
    if arguments.rid:
        selected = [t for t in traces if str(t.get("rid")) == arguments.rid]
        if not selected:
            raise ServeError(f"no retained trace with rid {arguments.rid!r}")
        return selected
    return traces


def _cmd_trace(arguments: argparse.Namespace) -> int:
    from repro.errors import ServeError
    from repro.obs.flightrecorder import (
        fold_traces,
        render_waterfall,
        write_debug_bundle,
    )

    if arguments.dump:
        if arguments.bundle:
            raise ServeError("--dump reads a live daemon, not --bundle")
        traces, debug = _load_traces(arguments)
        path = write_debug_bundle(
            arguments.dump,
            traces,
            stats=debug.get("stats"),
            config=debug.get("config"),
            slow_entries=debug.get("slow"),
        )
        print(f"debug bundle with {len(traces)} traces written to {path}")
        return 0

    traces, _context = _load_traces(arguments)
    if not traces:
        print("no traces retained", file=sys.stderr)
        return 1
    selected = _select(traces, arguments)

    if arguments.list:
        for trace in selected:
            print(
                f"trace={trace.get('trace')} rid={trace.get('rid')} "
                f"op={trace.get('op')} outcome={trace.get('outcome')} "
                f"server={trace.get('server_us', 0) / 1e3:.3f}ms "
                f"spans={len(trace.get('spans', []))}"
            )
        return 0

    if arguments.folded:
        text = fold_traces(selected)
        if text:
            print(text)
        return 0

    # Waterfall: explicit selections render all; the default renders the
    # slowest retained trace (the one an operator wants explained).
    if not arguments.trace_ids and not arguments.rid:
        selected = [max(selected, key=lambda t: t.get("server_us", 0))]
    for index, trace in enumerate(selected):
        if index:
            print()
        print(render_waterfall(trace, width=arguments.width))
    return 0


def register(commands) -> None:
    """Attach the ``trace`` subparser."""
    trace = commands.add_parser(
        "trace",
        help="render recorded request traces (waterfall / flamegraph)",
    )
    trace.add_argument(
        "trace_ids", nargs="*", metavar="TRACE_ID",
        help="trace id(s) to render (default: the slowest retained)",
    )
    trace.add_argument(
        "--bundle", default=None, metavar="DIR",
        help="read traces from a debug bundle instead of a live daemon",
    )
    trace.add_argument("--host", default="127.0.0.1")
    trace.add_argument("--port", type=int, default=7411)
    trace.add_argument(
        "--rid", default=None,
        help="select by request id instead of trace id",
    )
    trace.add_argument(
        "--list", action="store_true",
        help="one summary line per retained trace",
    )
    trace.add_argument(
        "--folded", action="store_true",
        help="print folded flamegraph stacks over the selected traces",
    )
    trace.add_argument(
        "--dump", default=None, metavar="DIR",
        help="write a live daemon's flight recorder as a debug bundle",
    )
    trace.add_argument(
        "--width", type=int, default=48,
        help="waterfall bar width in characters (default 48)",
    )
    trace.set_defaults(handler=_cmd_trace)
