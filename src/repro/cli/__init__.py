"""Command-line interface: ``repro <command>``.

Gives a repository operator the whole pipeline without writing Python:

* ``repro generate`` — synthesize a crawl and write it as a WebBase-style
  bulk stream;
* ``repro build``    — build an S-Node representation from a stream
  (``--workers N`` fans the encode stage over a process pool,
  ``--resume`` continues an interrupted build from its last stage
  checkpoint — bytes are identical either way);
* ``repro verify``   — integrity-check a stored representation;
* ``repro fsck``     — check any build directory (atomic-commit state,
  manifest file table, per-region checksums); ``--repair`` quarantines
  corrupt S-Node regions for graceful degradation;
* ``repro stats``    — summarize a stored representation;
* ``repro neighbors``— print a page's out-links from a stored
  representation (by repository page id);
* ``repro experiment`` — run one of the paper's experiment drivers
  (every driver accepts ``--json [DIR]`` to write a versioned
  ``BENCH_<experiment>.json`` bench report, and the shared
  ``--trace/--trace-out/--folded/--quiet`` span flags);
* ``repro profile`` — run a workload under the access-pattern profiler
  (Mattson miss-ratio curves, seek-distance profiles, hot-set heatmaps);
* ``repro serve`` — run the graph query daemon: concurrent Figure 11
  queries over one shared store behind admission control;
* ``repro loadgen`` — drive a running daemon with the Figure 11 mix at
  a configurable concurrency and report throughput/latency
  (client-measured next to server-measured; ``--json`` writes the
  summary as a machine-readable file);
* ``repro top`` — refresh-loop terminal dashboard polling a daemon's
  ``metrics`` op: windowed QPS, in-flight, queue depth, shed rate and
  per-op p50/p99 with per-bucket exemplar trace ids (``--once`` for
  scripts, ``--prometheus`` for the text exposition); exits non-zero
  when no daemon is listening;
* ``repro trace`` — render recorded request traces from a debug bundle
  or a live daemon's flight recorder: phase/I/O waterfall for one
  request, folded flamegraph over many (``--dump`` writes a live
  daemon's recorder as a bundle);
* ``repro bench-diff`` — compare two bench reports and flag regressions
  (``--ignore`` skips machine-dependent metrics, ``--exact`` pins
  determinism markers like digests and shard counts).

Every command prints human-readable output to stdout and exits non-zero
on failure, so the tool scripts cleanly.  Long-running builds report
throttled progress to stderr (suppress with ``--quiet``), and
``repro build --trace`` prints the span tree attributing build time to
pipeline phases.

The package splits one module per subcommand group — ``build`` (generate,
build), ``query`` (stats, neighbors), ``fsck`` (verify, fsck), ``bench``
(experiment, bench-validate, bench-diff), ``profile``, ``serve`` (serve,
loadgen), ``top``, ``trace`` — each exposing a
``register(commands)`` hook this module assembles into the parser.  The
entry point (``repro.cli:main``) and every flag are unchanged from the
single-module days.
"""

from __future__ import annotations

import argparse
import sys

from repro.cli import bench, build, fsck, profile, query, serve, top, trace
from repro.errors import ReproError


def build_parser() -> argparse.ArgumentParser:
    """The CLI's argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro", description="S-Node Web-graph representation toolkit"
    )
    commands = parser.add_subparsers(dest="command", required=True)
    build.register(commands)
    fsck.register(commands)
    query.register(commands)
    profile.register(commands)
    serve.register(commands)
    top.register(commands)
    trace.register(commands)
    bench.register(commands)
    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    parser = build_parser()
    arguments = parser.parse_args(argv)
    try:
        return arguments.handler(arguments)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


__all__ = ["build_parser", "main"]
