"""``repro profile`` — run workloads under the access-pattern profiler."""

from __future__ import annotations

import argparse
import sys


def _cmd_profile(arguments: argparse.Namespace) -> int:
    from repro.experiments import profile
    from repro.experiments.harness import emit_report, trace_session

    with trace_session(arguments, "profile") as tracer:
        result = profile.run(
            size=arguments.size,
            scheme=arguments.scheme,
            workload=arguments.workload,
            capacities_kb=tuple(arguments.capacities_kb),
            trials=arguments.trials,
        )
    if not arguments.quiet:
        print(profile.render(result, top=arguments.top))
    if arguments.events_out:
        profile.write_events(result, arguments.events_out)
        print(f"access events written to {arguments.events_out}", file=sys.stderr)
    emit_report(
        arguments.json_dir,
        "profile",
        profile.to_results(result, arguments.capacities_kb, top=arguments.top),
        params={
            "scheme": arguments.scheme,
            "workload": arguments.workload,
            "trials": arguments.trials,
            "capacities_kb": list(arguments.capacities_kb),
        },
        spans=tracer.summary_dict() if tracer else None,
    )
    return 0


def register(commands) -> None:
    """Attach the ``profile`` subparser."""
    profile = commands.add_parser(
        "profile",
        help="run a workload under the access-pattern profiler "
        "(miss-ratio curves, seek profile, hot-set heatmap)",
    )
    profile.add_argument("--size", type=int, default=None, help="dataset pages")
    profile.add_argument(
        "--scheme",
        choices=("flat-file", "relational", "link3", "s-node"),
        default="s-node",
    )
    profile.add_argument(
        "--workload", choices=("queries", "build"), default="queries"
    )
    profile.add_argument(
        "--capacities-kb",
        type=int,
        nargs="+",
        default=[16, 32, 64, 128, 256],
        metavar="KB",
        help="buffer capacities (KiB) for the measured validation sweep",
    )
    profile.add_argument("--trials", type=int, default=2)
    profile.add_argument(
        "--top", type=int, default=10, help="top-k hot entries shown"
    )
    profile.add_argument(
        "--events-out",
        default=None,
        metavar="FILE",
        help="write the raw access-event trace as JSON lines to FILE",
    )
    profile.add_argument(
        "--json",
        nargs="?",
        const=".",
        default=None,
        metavar="DIR",
        dest="json_dir",
        help="write a machine-readable BENCH_profile.json report "
        "(optionally into DIR)",
    )
    profile.add_argument(
        "--trace",
        action="store_true",
        help="print the span tree attributing profiler time to phases (stderr)",
    )
    profile.add_argument(
        "--trace-out", default=None, metavar="FILE",
        help="write the full span tree as JSON lines to FILE",
    )
    profile.add_argument(
        "--trace-depth", type=int, default=2,
        help="maximum span depth shown by --trace (default 2)",
    )
    profile.add_argument(
        "--folded", default=None, metavar="FILE",
        help="write flamegraph folded stacks (span path + self time) to FILE",
    )
    profile.add_argument(
        "--quiet", action="store_true",
        help="suppress the human-readable report on stdout",
    )
    profile.set_defaults(handler=_cmd_profile)
