"""``repro top`` — live terminal dashboard over a running daemon.

Polls the daemon's inline ``metrics`` op (never queued, so it works even
when the query pool is saturated) and renders the operator's view:
QPS and shed rate over the decay window, in-flight and queue depth,
per-op p50/p99 (windowed next to cumulative — a live spike shows in the
windowed column long before it moves the lifetime percentile), the
request lifecycle phase breakdown, buffer-pool pressure and the
slowest recent requests with their request ids.

``--once`` prints a single snapshot and exits (scripts, CI smoke);
``--prometheus`` prints the Prometheus text exposition instead.

In the refresh loop a lost connection (the daemon restarted, e.g.
around a store swap) is ridden out: the dashboard reconnects under the
shared :class:`~repro.serve.retry.RetryPolicy` instead of exiting, and
only gives up (exit 2) when the daemon stays away for the whole retry
schedule.  The *initial* connect stays a single attempt — pointing top
at nothing should fail fast, and scripts rely on that.
"""

from __future__ import annotations

import argparse
import time


def _ms(value: float) -> str:
    return f"{value * 1000.0:8.2f}"


def _rate(value: float) -> str:
    return f"{value:7.1f}/s"


def render_top(snapshot: dict) -> str:
    """Human-readable dashboard text for one ``metrics`` snapshot."""
    from repro.experiments.harness import format_table

    gauges = snapshot.get("gauges", {})
    outcomes = snapshot.get("outcomes", {})

    def outcome(name: str, key: str):
        return outcomes.get(name, {}).get(key, 0)

    lines = [
        f"repro top — uptime {snapshot.get('uptime_seconds', 0.0):.0f}s, "
        f"window {snapshot.get('windows', 0)} x "
        f"{snapshot.get('window_seconds', 0.0):.0f}s",
        f"qps {_rate(outcome('ok', 'per_second'))} ok"
        f"  {_rate(outcome('backpressure', 'per_second'))} shed"
        f"  {_rate(outcome('bad_request', 'per_second') + outcome('server_error', 'per_second'))} err"
        f"  {_rate(outcome('degraded', 'per_second'))} degraded",
        f"inflight {gauges.get('inflight', 0)}"
        f"  queue {gauges.get('queue_depth', 0)}/{gauges.get('queue_limit', 0)}"
        f"  workers {gauges.get('workers', 0)}"
        f"  connections live {len(snapshot.get('connections', {}))}"
        f" total {gauges.get('connections_total', 0)}",
    ]
    pool = [
        f"{direction[len('buffer_'):-len('_used_bytes')]} "
        f"{gauges[direction] // 1024}K/"
        f"{gauges[direction.replace('used', 'capacity')] // 1024}K "
        f"(+{gauges[direction.replace('used', 'pinned')] // 1024}K pinned)"
        for direction in sorted(gauges)
        if direction.startswith("buffer_") and direction.endswith("_used_bytes")
    ]
    if pool:
        lines.append("buffer pool: " + "  ".join(pool))
    if "wal_bytes" in gauges:
        # Mutable serving: WAL growth, pending delta, compaction progress.
        lines.append(
            f"mutation: wal {gauges.get('wal_bytes', 0)}B"
            f"  delta edges {gauges.get('delta_edges', 0)}"
            f" over {gauges.get('overlay_rows', 0)} rows"
            f"  compactions {gauges.get('compactions', 0)}"
            f" (last gen {gauges.get('last_compaction_generation', 0)})"
        )
    storage = snapshot.get("storage", {})
    if storage:
        # I/O-resilience counters: transparent retries absorbed by the
        # storage layer, injected faults seen, quarantined-region reads.
        lines.append(
            "storage: "
            + "  ".join(
                f"{name} {int(value)}" for name, value in sorted(storage.items())
            )
        )

    ops = snapshot.get("ops", {})
    op_rows = []
    phase_rows = []
    for name in sorted(ops):
        data = ops[name]
        windowed = data.get("windowed", {})
        cumulative = data.get("cumulative", {})
        row = (
            name.removeprefix("phase:"),
            cumulative.get("count", 0),
            _ms(windowed.get("p50", 0.0)),
            _ms(windowed.get("p99", 0.0)),
            _ms(cumulative.get("p50", 0.0)),
            _ms(cumulative.get("p99", 0.0)),
        )
        (phase_rows if name.startswith("phase:") else op_rows).append(row)
    headers = ["op", "count", "win p50ms", "win p99ms", "cum p50ms", "cum p99ms"]
    if op_rows:
        lines.append("")
        lines.append(format_table(headers, op_rows))
    if phase_rows:
        lines.append("")
        lines.append(format_table(["phase"] + headers[1:], phase_rows))

    # Per-op slowest-bucket exemplars: the concrete trace id behind the
    # worst live latency bucket — feed it to `repro trace <id>`.
    exemplar_rows = []
    for name in sorted(ops):
        if name.startswith("phase:"):
            continue
        exemplars = ops[name].get("exemplars") or {}
        if not exemplars:
            continue
        bucket = max(exemplars, key=lambda key: int(key))
        entry = exemplars[bucket]
        exemplar_rows.append(
            f"  {name}: trace={entry.get('trace')} "
            f"({entry.get('value', 0.0) * 1000.0:.2f} ms)"
        )
    if exemplar_rows:
        lines.append("")
        lines.append("slowest-bucket exemplars (repro trace <id>):")
        lines.extend(exemplar_rows)

    slow = snapshot.get("slow_queries", {})
    if slow:
        lines.append("")
        lines.append(
            f"slow queries (>= {slow.get('threshold_ms', 0.0):.0f} ms): "
            f"{slow.get('slow', 0)} of {slow.get('observed', 0)}"
        )
        for entry in slow.get("top", [])[:5]:
            trace = entry.get("trace")
            lines.append(
                f"  rid={entry.get('rid')} "
                + (f"trace={trace} " if trace else "")
                + f"op={entry.get('op')} "
                f"outcome={entry.get('outcome')} "
                f"server={entry.get('server_us', 0) / 1000.0:.2f} ms"
            )
    access = snapshot.get("access_log", {})
    if access:
        lines.append(
            f"access log: {access.get('logged', 0)} logged of "
            f"{access.get('offered', 0)} offered "
            f"(1 in {access.get('sample_every', 1)})"
        )
    return "\n".join(lines)


def _cmd_top(arguments: argparse.Namespace) -> int:
    import contextlib
    import sys

    from repro.errors import ServeError
    from repro.serve.loadgen import ServeClient
    from repro.serve.retry import RetryPolicy

    try:
        client = ServeClient(arguments.host, arguments.port)
    except OSError as exc:
        # No daemon there: say so and fail, instead of rendering an
        # empty dashboard a script would happily treat as healthy.
        print(
            f"repro top: cannot connect to daemon at "
            f"{arguments.host}:{arguments.port}: {exc}",
            file=sys.stderr,
        )
        return 2
    # Reconnect policy for the refresh loop: patient enough to ride out
    # a daemon restart (~20 jittered attempts capped at 2 s each), but
    # it does give up eventually.
    policy = RetryPolicy(base_s=0.2, cap_s=2.0, max_attempts=20)
    try:
        if arguments.prometheus:
            print(client.request_ok("metrics", format="text")["text"], end="")
            return 0
        while True:
            try:
                snapshot = client.request_ok("metrics")
            except (ServeError, OSError) as exc:
                if arguments.once:
                    raise
                with contextlib.suppress(Exception):
                    client.close()
                print(
                    f"repro top: lost daemon at "
                    f"{arguments.host}:{arguments.port} ({exc}); "
                    f"reconnecting...",
                    file=sys.stderr,
                    flush=True,
                )
                try:
                    client = ServeClient.connect(
                        arguments.host, arguments.port, policy=policy
                    )
                except ServeError as giveup:
                    print(f"repro top: {giveup}", file=sys.stderr)
                    return 2
                continue
            text = render_top(snapshot)
            if arguments.once:
                print(text)
                return 0
            # ANSI clear-screen + home keeps the dashboard in place.
            print(f"\x1b[2J\x1b[H{text}", flush=True)
            try:
                time.sleep(arguments.interval)
            except KeyboardInterrupt:
                return 0
    finally:
        with contextlib.suppress(Exception):
            client.close()


def register(commands) -> None:
    """Attach the ``top`` subparser."""
    top = commands.add_parser(
        "top", help="live dashboard polling a running daemon's metrics op"
    )
    top.add_argument("--host", default="127.0.0.1")
    top.add_argument("--port", type=int, default=7411)
    top.add_argument(
        "--interval", type=float, default=2.0,
        help="refresh interval in seconds (default 2)",
    )
    top.add_argument(
        "--once", action="store_true",
        help="print one snapshot and exit (no screen clearing)",
    )
    top.add_argument(
        "--prometheus", action="store_true",
        help="print the Prometheus text exposition once and exit",
    )
    top.set_defaults(handler=_cmd_top)
