"""``repro experiment``, ``bench-validate`` and ``bench-diff``."""

from __future__ import annotations

import argparse
import sys


def _cmd_experiment(arguments: argparse.Namespace) -> int:
    import importlib

    module_names = {
        "scalability",
        "compression",
        "access_time",
        "queries",
        "buffer_sweep",
        "ablations",
        "profile",
        "serve",
        "mutate",
    }
    if arguments.name not in module_names:
        print(
            f"unknown experiment {arguments.name!r}; choose from "
            f"{sorted(module_names)}",
            file=sys.stderr,
        )
        return 1
    module = importlib.import_module(f"repro.experiments.{arguments.name}")
    saved_argv = sys.argv
    try:
        sys.argv = [f"repro experiment {arguments.name}", *arguments.args]
        module.main()
    finally:
        sys.argv = saved_argv
    return 0


def _cmd_bench_validate(arguments: argparse.Namespace) -> int:
    from repro.errors import ReportError
    from repro.obs.report import load_report

    failed = False
    for name in arguments.files:
        try:
            load_report(name)
            print(f"{name}: ok")
        except ReportError as exc:
            print(f"{name}: INVALID — {exc}")
            failed = True
    return 1 if failed else 0


def _cmd_bench_diff(arguments: argparse.Namespace) -> int:
    from repro.obs.report import diff_reports, load_report

    diff = diff_reports(
        load_report(arguments.old),
        load_report(arguments.new),
        threshold=arguments.threshold,
        ignore=tuple(arguments.ignore),
        exact=tuple(arguments.exact),
    )
    print(diff.render())
    return 1 if diff.failed else 0


def register(commands) -> None:
    """Attach the ``experiment``/``bench-validate``/``bench-diff`` subparsers."""
    experiment = commands.add_parser("experiment", help="run a paper experiment")
    experiment.add_argument("name")
    experiment.add_argument("args", nargs=argparse.REMAINDER)
    experiment.set_defaults(handler=_cmd_experiment)

    bench_validate = commands.add_parser(
        "bench-validate", help="schema-check BENCH_*.json reports"
    )
    bench_validate.add_argument("files", nargs="+")
    bench_validate.set_defaults(handler=_cmd_bench_validate)

    bench_diff = commands.add_parser(
        "bench-diff", help="compare two BENCH_*.json reports for regressions"
    )
    bench_diff.add_argument("old", help="baseline bench report")
    bench_diff.add_argument("new", help="candidate bench report")
    bench_diff.add_argument(
        "--threshold",
        type=float,
        default=0.2,
        help="relative cost increase flagged as a regression (default 0.2)",
    )
    bench_diff.add_argument(
        "--ignore",
        action="append",
        default=[],
        metavar="SUBSTRING",
        help="skip cost paths containing SUBSTRING (repeatable; e.g. "
        "wall_ms to exclude machine-dependent wall-clock metrics)",
    )
    bench_diff.add_argument(
        "--exact",
        action="append",
        default=[],
        metavar="SUBSTRING",
        help="result paths containing SUBSTRING must match exactly "
        "(repeatable; covers non-numeric leaves like digests, and exempts "
        "the path from --ignore; e.g. digest, shards)",
    )
    bench_diff.set_defaults(handler=_cmd_bench_diff)
