"""``repro stats`` and ``repro neighbors`` — inspect a stored build."""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def _size_breakdown(root: Path, manifest: dict) -> dict:
    """On-disk bytes per component of a stored representation.

    Combines the manifest's logical payload accounting (intranode vs
    superedge bytes, which share the index files) with actual file sizes
    for every auxiliary structure, so an operator can see where bytes go.
    """
    def file_size(name: str) -> int:
        path = root / name
        return path.stat().st_size if path.exists() else 0

    payload_files = manifest.get("index_files", [])
    payload_disk = sum(file_size(name) for name in payload_files)
    breakdown = {
        "payload_files": {
            "files": len(payload_files),
            "disk_bytes": payload_disk,
            "intranode_bytes": manifest.get("intranode_bytes", 0),
            "superedge_bytes": manifest.get("superedge_bytes", 0),
        },
        "supernode_graph_bytes": file_size("supernode.bin"),
        "pointer_bytes": file_size("pointers.bin"),
        "pageid_index_bytes": file_size("pageid.bin"),
        "newid_map_bytes": file_size("newid.bin"),
        "domain_index_bytes": file_size("domain.json"),
        "manifest_bytes": file_size("manifest.json"),
    }
    breakdown["total_disk_bytes"] = (
        payload_disk
        + breakdown["supernode_graph_bytes"]
        + breakdown["pointer_bytes"]
        + breakdown["pageid_index_bytes"]
        + breakdown["newid_map_bytes"]
        + breakdown["domain_index_bytes"]
        + breakdown["manifest_bytes"]
    )
    return breakdown


_STATS_MANIFEST_KEYS = (
    "num_pages",
    "num_supernodes",
    "num_superedges",
    "positive_superedges",
    "negative_superedges",
    "payload_bytes",
    "intranode_bytes",
    "superedge_bytes",
    "supernode_graph_bytes",
)


def _cmd_stats(arguments: argparse.Namespace) -> int:
    root = Path(arguments.root)
    manifest_path = root / "manifest.json"
    if not manifest_path.exists():
        print(f"no S-Node manifest under {arguments.root}", file=sys.stderr)
        return 1
    manifest = json.loads(manifest_path.read_text())
    breakdown = _size_breakdown(root, manifest)
    if arguments.json:
        print(
            json.dumps(
                {
                    "manifest": {
                        key: manifest.get(key) for key in _STATS_MANIFEST_KEYS
                    },
                    "on_disk": breakdown,
                },
                indent=2,
                sort_keys=True,
            )
        )
        return 0
    for key in _STATS_MANIFEST_KEYS:
        print(f"{key:24s} {manifest.get(key)}")
    print("\non-disk size breakdown:")
    payload = breakdown["payload_files"]
    total = breakdown["total_disk_bytes"]

    def line(label: str, size: int) -> None:
        share = 100.0 * size / total if total else 0.0
        print(f"  {label:22s} {size:>12d} bytes ({share:5.1f}%)")

    line(f"payload x{payload['files']}", payload["disk_bytes"])
    line("  - intranode", payload["intranode_bytes"])
    line("  - superedge", payload["superedge_bytes"])
    line("supernode graph", breakdown["supernode_graph_bytes"])
    line("pointers", breakdown["pointer_bytes"])
    line("pageid index", breakdown["pageid_index_bytes"])
    line("newid map", breakdown["newid_map_bytes"])
    line("domain index", breakdown["domain_index_bytes"])
    line("manifest", breakdown["manifest_bytes"])
    print(f"  {'total':22s} {total:>12d} bytes")
    return 0


def _cmd_neighbors(arguments: argparse.Namespace) -> int:
    from repro.snode.store import SNodeStore

    with SNodeStore(arguments.root) as store:
        new_to_old = store.new_to_old
        old_to_new = {old: new for new, old in enumerate(new_to_old)}
        new_page = old_to_new.get(arguments.page)
        if new_page is None:
            print(f"page {arguments.page} not in this representation", file=sys.stderr)
            return 1
        row = sorted(new_to_old[t] for t in store.out_neighbors(new_page))
        print(" ".join(str(p) for p in row))
    return 0


def register(commands) -> None:
    """Attach the ``stats`` and ``neighbors`` subparsers."""
    stats = commands.add_parser("stats", help="summarize a representation")
    stats.add_argument("root")
    stats.add_argument(
        "--json",
        action="store_true",
        help="emit machine-readable JSON instead of the text table",
    )
    stats.set_defaults(handler=_cmd_stats)

    neighbors = commands.add_parser("neighbors", help="print a page's out-links")
    neighbors.add_argument("root")
    neighbors.add_argument("page", type=int)
    neighbors.set_defaults(handler=_cmd_neighbors)
