"""The graph query daemon: concurrent Figure 11 queries over one store.

Architecture (the paper's runtime organization, made multi-client):

* **one shared store pair** — forward and transpose S-Node stores with
  their pinned supernode graphs and one byte-budgeted buffer pool each
  (lock-striped for concurrent readers);
* **per-client sessions** — every connection gets its own
  :class:`~repro.snode.store.ReadSession` pair wrapped in a
  :class:`~repro.query.engine.QueryEngine`, so its hits, misses, seeks
  and navigation timers are attributable to exactly that client while
  the cached graphs are shared by everyone;
* **asyncio frontend, thread-pool backend** — the event loop owns
  accept/read/write; query execution (decode-heavy, disk-touching) runs
  on a bounded worker pool;
* **admission control** — at most ``queue_limit`` requests may be in
  flight (running + queued).  Excess requests are not queued without
  bound and not errored: they receive an immediate typed
  ``backpressure`` reply, and well-behaved clients (the load generator)
  retry with backoff.  Overload therefore degrades throughput, never
  correctness.

``ping``, ``stats`` and ``metrics`` are served inline on the event loop
— they touch no disk and must stay responsive under query overload
(``stats``/``metrics`` are how an operator sees the overload).

**Deadlines.**  A query/neighbors request may carry ``deadline_ms``
(:func:`repro.serve.protocol.parse_deadline_ms`), a budget measured
from frame acceptance and enforced at three points: already-expired
work is shed *before* admission (it never occupies a worker slot), a
worker sheds a request whose deadline passed while it sat in the queue,
and a request still executing at its deadline gets a typed ``timeout``
reply sent *at the deadline* while the abandoned execution drains in
the background (the connection's next frame is not read until it does,
preserving the strictly-sequential per-connection invariant that
per-request counter attribution depends on).

**Hot store swap.**  The ``swap`` admin op (also reachable via SIGHUP
in ``repro serve``) points the daemon at a freshly built store
directory pair: the directories are validated off-loop (committed
build, manifest digest, whole-file CRCs via quick fsck, matching page
count), opened cold, then the context flips atomically on the event
loop and in-flight requests drain against the old stores before they
close.  Requests admitted before the flip finish on the old store,
requests after it run on the new one; none fail.  Connections lazily
rebuild their sessions when they observe the context generation moved.

**Telemetry.**  Every frame becomes a
:class:`~repro.serve.telemetry.RequestRecord`: a request id (the
client's ``rid`` or a daemon-generated one), per-phase timings along
``accept -> decode -> queue-wait -> execute -> encode -> reply``, an
outcome (``ok | backpressure | bad_request | server_error | degraded |
timeout``)
and the session counter deltas the request caused.  Records feed the
shared :class:`~repro.serve.telemetry.ServeTelemetry` (windowed
histograms, outcome rates, access + slow-query logs) and are echoed to
the client in the reply's ``server`` section.

**Request tracing.**  Every request carries a trace id — the client's
propagated ``trace`` context (:func:`repro.serve.protocol.
parse_trace_context`), else a daemon-generated one — and every executed
request runs under a *request-scoped*
:class:`~repro.obs.tracing.Tracer` bound to the connection's session
pair: activation is contextvar-confined to the worker thread, the root
span is ``request.<op>``, navigation blocks open ``nav.<op>`` child
spans, and each span captures the session counter deltas it caused —
so "this request did 12 seeks" decomposes into *which* navigation did
them.  Finished traces (lifecycle record + span tree) go to the
:class:`~repro.obs.flightrecorder.FlightRecorder`, dumpable live via
the inline ``debug`` op or at shutdown via :meth:`GraphQueryDaemon.
dump_debug_bundle`.
"""

from __future__ import annotations

import asyncio
import contextlib
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import (
    DeadlineError,
    QueryError,
    ReproError,
    ServeError,
    StorageError,
)
from repro.obs import tracing
from repro.obs.flightrecorder import FlightRecorder, write_debug_bundle
from repro.obs.tracing import Tracer
from repro.query.engine import QueryEngine
from repro.query.workload import PAPER_QUERIES, run_query
from repro.serve import protocol
from repro.serve.telemetry import (
    DELTA_COUNTERS,
    RequestRecord,
    ServeTelemetry,
    render_prometheus,
)

#: Worker threads executing queries (each owns no state; engines are
#: per-connection, stores are shared).
DEFAULT_WORKERS = 8
#: Maximum requests in flight (running + queued) before shedding.
DEFAULT_QUEUE_LIMIT = 32
#: Buffer-pool lock stripes for the shared stores in serving mode.
DEFAULT_STRIPES = 8
#: Shared buffer budget per direction (matches the Figure 11 bound).
DEFAULT_BUFFER_BYTES = 512 * 1024

_QUERY_NAMES = tuple(name for name, _fn in PAPER_QUERIES)


@dataclass
class ClientEngine:
    """One connection's engine plus the sessions it reads through."""

    engine: QueryEngine
    forward: object  # SNodeSessionRepresentation
    backward: object
    #: The context generation the sessions were opened against; a hot
    #: store swap bumps the context's counter and connections rebuild
    #: their engine when the two disagree.
    generation: int = 0

    def io_stats(self) -> dict[str, dict[str, int]]:
        """This client's own counters, per direction."""
        return {
            "forward": self.forward.io_stats(),
            "backward": self.backward.io_stats(),
        }

    def snapshot(self) -> dict[str, float]:
        """Merged counters over both directions' sessions.

        This is the duck-typed registry face a request-scoped
        :class:`~repro.obs.tracing.Tracer` binds to — the tracer only
        snapshots and diffs, so span counter deltas attribute the
        connection's combined forward+backward I/O to each span.
        """
        totals: dict[str, float] = {}
        for stats in self.io_stats().values():
            for name, value in stats.items():
                totals[name] = totals.get(name, 0) + value
        return totals

    def close(self) -> None:
        """Fold both sessions' metrics back into the shared stores."""
        self.forward.close()
        self.backward.close()


class ServeContext:
    """Everything the daemon serves from: stores, indexes, repository.

    Owns the *shared* side (one forward + one transpose
    :class:`~repro.baselines.base.SNodeRepresentation`, the text and
    PageRank indexes); :meth:`make_engine` stamps out the per-client
    side.
    """

    def __init__(
        self,
        repository,
        text_index,
        pagerank_index,
        forward,
        backward,
        buffer_bytes: int = DEFAULT_BUFFER_BYTES,
        stripes: int = DEFAULT_STRIPES,
        on_corruption: str = "raise",
    ) -> None:
        self.repository = repository
        self.text_index = text_index
        self.pagerank_index = pagerank_index
        self.forward = forward
        self.backward = backward
        # Store-opening configuration, remembered so a hot swap opens
        # the replacement pair exactly the way the originals were.
        self.buffer_bytes = buffer_bytes
        self.stripes = stripes
        self.on_corruption = on_corruption
        #: Bumped by every adopted store swap; connections compare it
        #: against their engine's generation and rebuild lazily.
        self.generation = 0
        #: Refinement config the stores were built with; compaction
        #: rebuilds with the same one (None -> the experiment default).
        self.refinement = None
        # Mutable-serving state (enable_mutation): the WAL plus one
        # overlay per direction, both fed from the same log.
        self.wal = None
        self.overlay_forward = None
        self.overlay_backward = None
        self.mutation_enabled = False
        self.compactions = 0
        self.last_compaction_generation = 0

    @classmethod
    def build(
        cls,
        repository,
        workdir: Path | str,
        buffer_bytes: int = DEFAULT_BUFFER_BYTES,
        stripes: int = DEFAULT_STRIPES,
        refinement=None,
        on_corruption: str = "raise",
    ) -> "ServeContext":
        """Build forward + transpose S-Node stores and the indexes.

        The stores are reopened with ``stripes`` buffer-pool segments —
        the serving configuration; experiments that need the exact
        single-LRU eviction order open their own stores with the default
        ``stripes=1``.
        """
        from repro.baselines import SNodeRepresentation
        from repro.experiments.harness import experiment_refinement_config
        from repro.index.pagerank_index import PageRankIndex
        from repro.index.textindex import TextIndex
        from repro.snode.build import BuildOptions, build_snode
        from repro.snode.store import SNodeStore

        workdir = Path(workdir)
        refinement = (
            refinement if refinement is not None else experiment_refinement_config()
        )
        forward_build = build_snode(
            repository,
            workdir / "serve_f",
            BuildOptions(refinement=refinement, buffer_bytes=buffer_bytes),
        )
        backward_build = build_snode(
            repository,
            workdir / "serve_b",
            BuildOptions(
                refinement=refinement, buffer_bytes=buffer_bytes, transpose=True
            ),
        )
        if stripes != 1 or on_corruption != "raise":
            for build in (forward_build, backward_build):
                build.store.close()
                build.store = SNodeStore(
                    build.root,
                    buffer_bytes=buffer_bytes,
                    stripes=stripes,
                    on_corruption=on_corruption,
                )
        context = cls(
            repository,
            TextIndex(repository),
            PageRankIndex(repository),
            SNodeRepresentation(forward_build),
            SNodeRepresentation(backward_build),
            buffer_bytes=buffer_bytes,
            stripes=stripes,
            on_corruption=on_corruption,
        )
        context.refinement = refinement
        return context

    @classmethod
    def open(
        cls,
        repository,
        workdir: Path | str,
        buffer_bytes: int = DEFAULT_BUFFER_BYTES,
        stripes: int = DEFAULT_STRIPES,
        on_corruption: str = "raise",
    ) -> "ServeContext":
        """Open committed ``serve_f``/``serve_b`` directories, no rebuild.

        The disk-only twin of :meth:`build`: stores come off the
        committed directories via
        :meth:`~repro.baselines.base.SNodeRepresentation.open`, indexes
        are derived from the repository as usual.  Used by chaos
        fixtures (reopen a deliberately corrupted copy with
        ``on_corruption="degrade"``) and anywhere a store exists but the
        build-time state does not.
        """
        from repro.baselines import SNodeRepresentation
        from repro.index.pagerank_index import PageRankIndex
        from repro.index.textindex import TextIndex

        workdir = Path(workdir)
        forward = SNodeRepresentation.open(
            workdir / "serve_f",
            buffer_bytes=buffer_bytes,
            stripes=stripes,
            on_corruption=on_corruption,
        )
        backward = SNodeRepresentation.open(
            workdir / "serve_b",
            buffer_bytes=buffer_bytes,
            stripes=stripes,
            on_corruption=on_corruption,
        )
        context = cls(
            repository,
            TextIndex(repository),
            PageRankIndex(repository),
            forward,
            backward,
            buffer_bytes=buffer_bytes,
            stripes=stripes,
            on_corruption=on_corruption,
        )
        for representation in (forward, backward):
            if representation.num_pages != repository.num_pages:
                context.close()
                raise ServeError(
                    f"store under {workdir} holds "
                    f"{representation.num_pages} pages but the repository "
                    f"has {repository.num_pages}"
                )
        return context

    # -- mutable serving (WAL + delta overlay) -------------------------------

    def enable_mutation(self) -> dict:
        """Start serving mutably: open (or create) the WAL, replay it.

        The log lives beside the forward build's manifest
        (``serve_f/graph.wal``).  A torn tail — the residue of a crash
        mid-append — is repaired *before* anything else, so subsequent
        appends land on a clean frame boundary and every acknowledged
        write stays replayable.  The intact records rebuild one overlay
        per direction (the transpose overlay sees every edge flipped),
        and both attach to the live representations; sessions pick the
        overlay up dynamically.
        """
        from repro.snode.delta import DeltaOverlay
        from repro.storage.wal import GraphWal

        wal = GraphWal.for_build(self.forward.build.root)
        repaired = wal.repair_tail()
        scan = wal.scan()
        forward_overlay = DeltaOverlay()
        backward_overlay = DeltaOverlay(transpose=True)
        for record in scan.records:
            forward_overlay.apply_record(record)
            backward_overlay.apply_record(record)
        self.forward.attach_overlay(forward_overlay)
        self.backward.attach_overlay(backward_overlay)
        self.wal = wal
        self.overlay_forward = forward_overlay
        self.overlay_backward = backward_overlay
        self.mutation_enabled = True
        return {
            "wal_bytes": scan.good_bytes,
            "wal_records": len(scan.records),
            "repaired_bytes": repaired,
        }

    def apply_mutation(self, op: str, edges) -> dict:
        """Durably log one edge batch, then fold it into both overlays.

        The WAL append (CRC frame + fsync) happens *first*; only after
        it returns is the overlay touched and the caller answered —
        returning from here is the acknowledgement the crash-safety
        contract covers.  Must be called from the daemon's event loop
        (or any single writer): writes are serialized by construction.
        """
        if not self.mutation_enabled:
            raise ServeError(
                "mutation is not enabled on this daemon "
                "(start it with --mutable / enable_mutation())"
            )
        if not isinstance(edges, (list, tuple)) or not edges:
            raise ServeError(f"{op} needs a non-empty list of [source, target] pairs")
        checked: list[tuple[int, int]] = []
        for pair in edges:
            if (
                not isinstance(pair, (list, tuple))
                or len(pair) != 2
                or any(not isinstance(v, int) or isinstance(v, bool) for v in pair)
            ):
                raise ServeError(f"bad edge {pair!r}: expected [source, target]")
            source, target = pair
            for page in (source, target):
                if not 0 <= page < self.repository.num_pages:
                    raise ServeError(f"page {page} out of range")
            checked.append((source, target))
        wal_bytes = self.wal.append(op, checked)
        applied = self.overlay_forward.apply(op, checked)
        self.overlay_backward.apply(op, checked)
        return {
            "op": op,
            "edges_applied": applied,
            "wal_bytes": wal_bytes,
            "delta_edges": self.overlay_forward.edge_count,
        }

    def mutation_stats(self) -> dict:
        """The ``mutation`` section of stats replies and gauge exports."""
        if not self.mutation_enabled:
            return {"enabled": False}
        return {
            "enabled": True,
            "wal_bytes": self.wal.size_bytes(),
            "wal_records": self.overlay_forward.records_applied,
            "delta_edges": self.overlay_forward.edge_count,
            "overlay_rows": self.overlay_forward.row_count,
            "compactions": self.compactions,
            "last_compaction_generation": self.last_compaction_generation,
        }

    def compact_build(self, overlay, workdir: Path | str) -> None:
        """Materialize base + ``overlay`` and build a fresh pair.

        The base rows come from a *separate, overlay-free* open of the
        committed forward store — never from ``repository.graph``, which
        after one compaction lags the store — so chained compactions
        stay correct and the WAL remains the only non-durable truth.
        Runs off the event loop (heavy build I/O); the snapshot
        ``overlay`` must be frozen by the caller before new writes can
        interleave.
        """
        from repro.baselines import SNodeRepresentation
        from repro.experiments.harness import experiment_refinement_config
        from repro.snode.build import BuildOptions, build_snode
        from repro.snode.delta import merged_repository

        base = SNodeRepresentation.open(
            self.forward.build.root, buffer_bytes=self.buffer_bytes
        )
        try:
            repository = merged_repository(self.repository, base, overlay)
        finally:
            base.close()
        workdir = Path(workdir)
        refinement = (
            self.refinement
            if self.refinement is not None
            else experiment_refinement_config()
        )
        for name, transpose in (("serve_f", False), ("serve_b", True)):
            build = build_snode(
                repository,
                workdir / name,
                BuildOptions(
                    refinement=refinement,
                    buffer_bytes=self.buffer_bytes,
                    transpose=transpose,
                ),
            )
            build.store.close()

    def absorb_wal(self, absorbed_offset, forward, backward) -> dict:
        """Truncate the absorbed WAL prefix as part of a generation bump.

        Runs synchronously on the event loop right after :meth:`adopt`
        (between two awaits), so from every other coroutine's point of
        view the store flip and the log truncation are one atomic step.
        The unabsorbed suffix is carried into a fresh ``graph.wal``
        beside the adopted forward build (a restart on the new directory
        replays exactly the writes the new build lacks), replayed into
        fresh overlays, and attached to the new pair.  With
        ``absorbed_offset=None`` — an operator-initiated swap onto an
        independently rebuilt store — the whole log is treated as
        superseded.
        """
        from repro.snode.delta import DeltaOverlay
        from repro.storage.wal import GraphWal

        old_wal = self.wal
        if absorbed_offset is None:
            absorbed_offset = old_wal.scan().good_bytes
        new_wal = GraphWal.for_build(forward.build.root)
        carried_bytes = old_wal.carry_suffix_to(new_wal, absorbed_offset)
        forward_overlay, scan = DeltaOverlay.replay(new_wal)
        backward_overlay, _ = DeltaOverlay.replay(new_wal, transpose=True)
        forward.attach_overlay(forward_overlay)
        backward.attach_overlay(backward_overlay)
        self.wal = new_wal
        self.overlay_forward = forward_overlay
        self.overlay_backward = backward_overlay
        return {
            "absorbed_bytes": absorbed_offset,
            "carried_bytes": carried_bytes,
            "carried_records": len(scan.records),
        }

    # -- hot store swap ------------------------------------------------------

    def validate_store_dir(self, root: Path) -> None:
        """Reject ``root`` unless it is a committed, intact, matching build.

        The pre-open validation of the swap protocol: build digest and
        whole-file CRCs via quick :func:`~repro.storage.fsck.fsck`
        (region CRCs are still verified lazily on every read), page
        count against the serving repository.
        """
        from repro.storage.fsck import fsck

        report = fsck(root, quick=True)
        if not report.ok:
            problems = "; ".join(f.render() for f in report.findings[:3])
            raise ServeError(
                f"swap rejected: {root} failed validation "
                f"(state={report.state}) {problems}"
            )
        if report.scheme != "s-node":
            raise ServeError(
                f"swap rejected: {root} holds a {report.scheme} build, "
                "not an s-node store"
            )

    def open_pair(self, workdir: Path | str):
        """Validate and open a fresh ``serve_f``/``serve_b`` pair.

        Runs off the event loop (blocking I/O); returns the opened
        representations without touching the serving state — adoption
        is a separate, event-loop-confined step (:meth:`adopt`).
        """
        from repro.baselines import SNodeRepresentation

        workdir = Path(workdir)
        for name in ("serve_f", "serve_b"):
            self.validate_store_dir(workdir / name)
        opened = []
        try:
            for name in ("serve_f", "serve_b"):
                representation = SNodeRepresentation.open(
                    workdir / name,
                    buffer_bytes=self.buffer_bytes,
                    stripes=self.stripes,
                    on_corruption=self.on_corruption,
                )
                opened.append(representation)
                if representation.num_pages != self.repository.num_pages:
                    raise ServeError(
                        f"swap rejected: {workdir / name} holds "
                        f"{representation.num_pages} pages, serving "
                        f"repository has {self.repository.num_pages}"
                    )
        except BaseException:
            for representation in opened:
                representation.close()
            raise
        return opened[0], opened[1]

    def adopt(self, forward, backward):
        """Switch to a new store pair; returns the old pair, still open.

        Must run on the daemon's event loop: the reference flip plus the
        generation bump are one atomic step from every coroutine's point
        of view, so a dispatch either sees the old pair or the new pair,
        never a mix.  The caller drains in-flight work before closing
        the returned old pair.
        """
        old = (self.forward, self.backward)
        self.forward = forward
        self.backward = backward
        self.generation += 1
        return old

    def make_engine(self, label: str) -> ClientEngine:
        """A per-client engine reading through fresh sessions."""
        forward = self.forward.session(label=f"{label}/forward")
        backward = self.backward.session(label=f"{label}/backward")
        engine = QueryEngine(
            self.repository,
            self.text_index,
            self.pagerank_index,
            forward,
            backward,
            # The engine pushes its corruption policy down onto the
            # stores it reads; defaulting here would silently flip a
            # degrade-mode serving store back to raise.
            on_corruption=self.on_corruption,
        )
        return ClientEngine(
            engine=engine,
            forward=forward,
            backward=backward,
            generation=self.generation,
        )

    def serial_engine(self) -> QueryEngine:
        """An engine on the shared (root) path — the serial baseline."""
        return QueryEngine(
            self.repository,
            self.text_index,
            self.pagerank_index,
            self.forward,
            self.backward,
            on_corruption=self.on_corruption,
        )

    def shared_totals(self) -> dict[str, dict[str, float]]:
        """Merged metrics (base + live sessions), per direction."""
        return {
            "forward": self.forward.store.metrics.merged_snapshot(),
            "backward": self.backward.store.metrics.merged_snapshot(),
        }

    def buffer_stats(self) -> dict[str, dict[str, int]]:
        """Shared buffer-pool occupancy and hit counters, per direction."""
        return {
            "forward": self.forward.store.buffer_stats(),
            "backward": self.backward.store.buffer_stats(),
        }

    def close(self) -> None:
        """Close both shared stores."""
        self.forward.close()
        self.backward.close()


@dataclass
class DaemonCounters:
    """Daemon-level request accounting (event-loop confined)."""

    connections: int = 0
    requests_ok: int = 0
    requests_shed: int = 0
    requests_failed: int = 0
    requests_timeout: int = 0
    store_swaps: int = 0
    writes: int = 0

    def as_dict(self) -> dict[str, int]:
        # "backpressure_replies", not "requests_shed": the count varies
        # with thread interleaving, and a key containing "_s" would be
        # threshold-compared as a cost by bench-diff.
        return {
            "connections": self.connections,
            "requests_ok": self.requests_ok,
            "backpressure_replies": self.requests_shed,
            "requests_failed": self.requests_failed,
            "requests_timeout": self.requests_timeout,
            "store_swaps": self.store_swaps,
            "writes_applied": self.writes,
        }


@dataclass
class GraphQueryDaemon:
    """Asyncio TCP daemon serving the Figure 11 workload."""

    context: ServeContext
    host: str = "127.0.0.1"
    port: int = 0
    workers: int = DEFAULT_WORKERS
    queue_limit: int = DEFAULT_QUEUE_LIMIT
    counters: DaemonCounters = field(default_factory=DaemonCounters)
    #: Shared telemetry sink; pass one with a fake clock / log sinks to
    #: control windows and capture JSONL logs.
    telemetry: ServeTelemetry = field(default_factory=ServeTelemetry)
    #: Always-on retention of complete request traces (recent ring +
    #: slow top-K + errors); dumped by the ``debug`` op / debug bundles.
    flight: FlightRecorder = field(default_factory=FlightRecorder)

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ServeError(f"workers must be >= 1, got {self.workers}")
        if self.queue_limit < 1:
            raise ServeError(
                f"queue_limit must be >= 1, got {self.queue_limit}"
            )
        self._server: asyncio.AbstractServer | None = None
        self._executor: ThreadPoolExecutor | None = None
        self._inflight = 0
        self._next_client = 0
        self._next_rid = 0
        self._next_trace = 0
        # In-flight executor futures (event-loop confined); a store swap
        # snapshots this set to drain pre-swap work before closing the
        # old stores.
        self._active: set = set()
        self._swap_lock: asyncio.Lock | None = None

    @property
    def bound_port(self) -> int:
        """The actual listening port (after binding port 0)."""
        if self._server is None:
            raise ServeError("daemon is not started")
        return self._server.sockets[0].getsockname()[1]

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        """Bind and start accepting connections."""
        self._executor = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="serve-worker"
        )
        self._swap_lock = asyncio.Lock()
        self._server = await asyncio.start_server(
            self._handle_client, self.host, self.port
        )

    async def stop(self) -> None:
        """Stop accepting, drain workers, release the port."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    async def serve_forever(self) -> None:
        """Start (if needed) and serve until cancelled."""
        if self._server is None:
            await self.start()
        try:
            await self._server.serve_forever()
        finally:
            await self.stop()

    # -- connection handling ---------------------------------------------------

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        client_id = self._next_client
        self._next_client += 1
        self.counters.connections += 1
        label = f"client-{client_id}"
        engine = self.context.make_engine(label)
        self.telemetry.connection_opened(label)
        clock = self.telemetry.clock
        try:
            while True:
                try:
                    raw = await protocol.read_frame_raw(reader)
                except ServeError as exc:
                    with contextlib.suppress(Exception):
                        await protocol.write_frame(
                            writer,
                            protocol.error_reply(
                                None, protocol.ERROR_BAD_REQUEST, str(exc)
                            ),
                        )
                    break
                if raw is None:
                    break
                # Accept boundary: the frame's last byte has arrived.
                accepted = clock()
                record = RequestRecord(
                    rid="",
                    client=label,
                    op="invalid",
                    outcome="bad_request",
                    unix=self.telemetry.wall_clock(),
                )
                try:
                    request = protocol.decode_payload(raw)
                except ServeError as exc:
                    record.phases["decode"] = clock() - accepted
                    record.rid = self._generate_rid()
                    record.trace = self._generate_trace()
                    record.error = str(exc)
                    self.counters.requests_failed += 1
                    reply = protocol.error_reply(
                        None,
                        protocol.ERROR_BAD_REQUEST,
                        str(exc),
                        server=record.reply_view(),
                    )
                    await self._send(writer, reply, record)
                    break
                record.phases["decode"] = clock() - accepted
                # A hot swap moved the context generation: rebuild the
                # engine on fresh sessions (between requests — never
                # mid-flight, dispatches are strictly sequential here).
                if engine.generation != self.context.generation:
                    engine.close()
                    engine = self.context.make_engine(label)
                reply, pending = await self._dispatch(
                    engine, request, record, accepted
                )
                await self._send(writer, reply, record)
                if pending is not None:
                    # A deadline fired mid-execution: the timeout reply
                    # is out, but the abandoned work still occupies a
                    # worker slot and this connection's sessions.  Wait
                    # for it before reading the next frame — the
                    # strictly-sequential invariant per connection is
                    # what makes counter attribution exact.
                    with contextlib.suppress(Exception):
                        await pending
                    self._inflight -= 1
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            self.telemetry.connection_closed(label)
            engine.close()
            writer.close()
            # CancelledError is a BaseException on 3.11: suppress it too,
            # or a shutdown mid-close logs a spurious task traceback.
            with contextlib.suppress(Exception, asyncio.CancelledError):
                await writer.wait_closed()

    def _generate_rid(self) -> str:
        """A daemon-assigned request id (event-loop confined counter)."""
        rid = f"srv-{self._next_rid}"
        self._next_rid += 1
        return rid

    def _generate_trace(self) -> str:
        """A daemon-assigned trace id (event-loop confined counter)."""
        trace = f"srvtr-{self._next_trace}"
        self._next_trace += 1
        return trace

    async def _send(
        self, writer: asyncio.StreamWriter, reply: dict, record: RequestRecord
    ) -> None:
        """Encode and write one reply, measuring the last two phases.

        The record is folded into the telemetry whatever happens to the
        socket — a request the peer never read still ran.
        """
        clock = self.telemetry.clock
        try:
            start = clock()
            data = protocol.encode_frame(reply)
            encoded = clock()
            record.phases["encode"] = encoded - start
            writer.write(data)
            await writer.drain()
            record.phases["reply"] = clock() - encoded
        finally:
            self.telemetry.record(record)
            self.flight.record(record.trace_view())

    async def _dispatch(
        self,
        engine: ClientEngine,
        request,
        record: RequestRecord,
        accepted: float,
    ) -> tuple[dict, asyncio.Future | None]:
        """Route one decoded frame; returns (reply, still-draining future).

        The second element is non-None only when a deadline fired while
        the request was executing: the typed ``timeout`` reply goes out
        immediately, and the caller must await the abandoned future (and
        release its admission slot) before reading the connection's next
        frame.
        """
        clock = self.telemetry.clock
        if not isinstance(request, dict):
            record.rid = self._generate_rid()
            record.trace = self._generate_trace()
            record.error = "request frame must be an object"
            self.counters.requests_failed += 1
            return protocol.error_reply(
                None,
                protocol.ERROR_BAD_REQUEST,
                record.error,
                server=record.reply_view(),
            ), None
        rid = request.get("rid")
        if isinstance(rid, (str, int)) and not isinstance(rid, bool):
            record.rid = str(rid)
        else:
            record.rid = self._generate_rid()
        # Trace context: propagate the client's trace id when present
        # (lenient parse — unknown/malformed sections never fail the
        # request), else assign a server-side one.
        context = protocol.parse_trace_context(request)
        record.trace = context.trace_id or self._generate_trace()
        record.parent = context.parent
        request_id = request.get("id")
        op = request.get("op")
        if isinstance(op, str):
            record.op = op
        if op in ("ping", "stats", "metrics", "debug"):
            # Inline ops: no disk, no queue — measured as pure execute.
            start = clock()
            try:
                if op == "ping":
                    result = {"pong": True}
                elif op == "stats":
                    result = self._stats(engine)
                elif op == "debug":
                    result = self._debug()
                else:
                    result = self._metrics(request.get("format"))
            except QueryError as exc:
                record.phases["execute"] = clock() - start
                record.error = str(exc)
                self.counters.requests_failed += 1
                return protocol.error_reply(
                    request_id,
                    protocol.ERROR_BAD_REQUEST,
                    str(exc),
                    server=record.reply_view(),
                ), None
            record.phases["execute"] = clock() - start
            record.outcome = "ok"
            self.counters.requests_ok += 1
            return protocol.ok_reply(
                request_id, result, server=record.reply_view()
            ), None
        if op in ("add_edges", "remove_edges"):
            # Write ops run inline on the event loop: the WAL append +
            # overlay fold must serialize with each other and with the
            # swap/compaction flip, and the fsync *is* the op's cost.
            # Deliberately absent from IDEMPOTENT_OPS: a lost reply
            # retried blindly would double-apply a non-idempotent write.
            start = clock()
            try:
                result = self.context.apply_mutation(
                    "add" if op == "add_edges" else "remove",
                    request.get("edges"),
                )
            except (ServeError, StorageError) as exc:
                record.phases["execute"] = clock() - start
                record.error = str(exc)
                self.counters.requests_failed += 1
                return protocol.error_reply(
                    request_id,
                    protocol.ERROR_BAD_REQUEST,
                    str(exc),
                    server=record.reply_view(),
                ), None
            record.phases["execute"] = clock() - start
            record.outcome = "ok"
            self.counters.requests_ok += 1
            self.counters.writes += 1
            return protocol.ok_reply(
                request_id, result, server=record.reply_view()
            ), None
        if op == "swap":
            return await self._swap_op(request, record, request_id), None
        if op == "compact":
            return await self._compact_op(request, record, request_id), None
        if op not in ("query", "neighbors"):
            record.error = f"unknown op {op!r}"
            self.counters.requests_failed += 1
            return protocol.error_reply(
                request_id,
                protocol.ERROR_BAD_REQUEST,
                record.error,
                server=record.reply_view(),
            ), None
        try:
            deadline_ms = protocol.parse_deadline_ms(request)
        except ServeError as exc:
            record.error = str(exc)
            self.counters.requests_failed += 1
            return protocol.error_reply(
                request_id,
                protocol.ERROR_BAD_REQUEST,
                str(exc),
                server=record.reply_view(),
            ), None
        deadline = (
            None if deadline_ms is None else accepted + deadline_ms / 1000.0
        )
        # Shed already-expired work before it ever takes a worker slot.
        if deadline is not None and clock() >= deadline:
            return self._timeout_reply(request_id, record, deadline_ms), None
        # Admission control: _inflight is only touched on the event loop,
        # so the check-then-increment is race-free without a lock.
        if self._inflight >= self.queue_limit:
            self.counters.requests_shed += 1
            record.outcome = "backpressure"
            record.error = (
                f"{self._inflight} requests in flight (limit "
                f"{self.queue_limit}); retry later"
            )
            return protocol.error_reply(
                request_id,
                protocol.ERROR_BACKPRESSURE,
                record.error,
                server=record.reply_view(),
            ), None
        self._inflight += 1
        submitted = clock()
        loop = asyncio.get_running_loop()
        future = loop.run_in_executor(
            self._executor,
            self._execute_measured,
            engine,
            op,
            request,
            record,
            submitted,
            deadline,
        )
        self._active.add(future)
        future.add_done_callback(self._active.discard)
        try:
            if deadline is None:
                result = await future
            else:
                # The shield keeps the executor future alive past the
                # timer: threads cannot be cancelled, only abandoned.
                result = await asyncio.wait_for(
                    asyncio.shield(future), max(0.0, deadline - clock())
                )
        except asyncio.TimeoutError:
            # Deadline fired mid-queue or mid-execute: the typed reply
            # goes out *now* (deadline + one scheduling quantum is the
            # contract); the caller drains the abandoned future and then
            # releases its admission slot.
            return self._timeout_reply(request_id, record, deadline_ms), future
        except DeadlineError as exc:
            # The worker shed it at queue exit — never executed.
            self._inflight -= 1
            return self._timeout_reply(
                request_id, record, deadline_ms, message=str(exc)
            ), None
        except (QueryError, ServeError, StorageError, ValueError) as exc:
            self._inflight -= 1
            record.outcome = "bad_request"
            record.error = str(exc)
            self.counters.requests_failed += 1
            return protocol.error_reply(
                request_id,
                protocol.ERROR_BAD_REQUEST,
                str(exc),
                server=record.reply_view(),
            ), None
        except ReproError as exc:
            self._inflight -= 1
            record.outcome = "server_error"
            record.error = str(exc)
            self.counters.requests_failed += 1
            return protocol.error_reply(
                request_id,
                protocol.ERROR_SERVER,
                str(exc),
                server=record.reply_view(),
            ), None
        except Exception as exc:  # noqa: BLE001 — a query bug must not kill the daemon
            self._inflight -= 1
            record.outcome = "server_error"
            record.error = f"{type(exc).__name__}: {exc}"
            self.counters.requests_failed += 1
            return protocol.error_reply(
                request_id,
                protocol.ERROR_SERVER,
                record.error,
                server=record.reply_view(),
            ), None
        self._inflight -= 1
        # A request served from quarantined regions answered, but an
        # operator must see it was not served whole.
        record.outcome = (
            "degraded" if record.counters.get("degraded_reads", 0) else "ok"
        )
        self.counters.requests_ok += 1
        return protocol.ok_reply(
            request_id, result, server=record.reply_view()
        ), None

    def _timeout_reply(
        self,
        request_id,
        record: RequestRecord,
        deadline_ms,
        message: str | None = None,
    ) -> dict:
        """Account and build one typed ``timeout`` reply."""
        record.outcome = "timeout"
        record.error = message or (
            f"deadline of {deadline_ms:g} ms expired; request abandoned"
        )
        self.counters.requests_timeout += 1
        return protocol.error_reply(
            request_id,
            protocol.ERROR_TIMEOUT,
            record.error,
            server=record.reply_view(),
        )

    # -- hot store swap ---------------------------------------------------------

    async def _swap_op(
        self, request: dict, record: RequestRecord, request_id
    ) -> dict:
        """The ``swap`` admin op: hot-swap onto a freshly built pair."""
        clock = self.telemetry.clock
        start = clock()
        workdir = request.get("workdir")
        try:
            if not isinstance(workdir, str) or not workdir:
                raise ServeError("swap op needs a 'workdir' string")
            result = await self.swap_stores(workdir)
        except (ServeError, StorageError) as exc:
            record.phases["execute"] = clock() - start
            record.error = str(exc)
            self.counters.requests_failed += 1
            return protocol.error_reply(
                request_id,
                protocol.ERROR_BAD_REQUEST,
                str(exc),
                server=record.reply_view(),
            )
        record.phases["execute"] = clock() - start
        record.outcome = "ok"
        self.counters.requests_ok += 1
        return protocol.ok_reply(request_id, result, server=record.reply_view())

    async def _compact_op(
        self, request: dict, record: RequestRecord, request_id
    ) -> dict:
        """The ``compact`` admin op: fold the WAL into a fresh build."""
        clock = self.telemetry.clock
        start = clock()
        workdir = request.get("workdir")
        try:
            if not isinstance(workdir, str) or not workdir:
                raise ServeError("compact op needs a 'workdir' string")
            result = await self.compact_stores(workdir)
        except (ServeError, StorageError) as exc:
            record.phases["execute"] = clock() - start
            record.error = str(exc)
            self.counters.requests_failed += 1
            return protocol.error_reply(
                request_id,
                protocol.ERROR_BAD_REQUEST,
                str(exc),
                server=record.reply_view(),
            )
        record.phases["execute"] = clock() - start
        record.outcome = "ok"
        self.counters.requests_ok += 1
        return protocol.ok_reply(request_id, result, server=record.reply_view())

    async def swap_stores(self, workdir) -> dict:
        """Hot-swap the serving stores onto the pair under ``workdir``.

        The protocol, in order: **validate** the candidate directories
        off-loop (committed build, manifest digest + whole-file CRCs via
        quick fsck, matching page count) and open them cold; **flip**
        the context references and bump the generation — one atomic
        event-loop step, so every dispatch sees either the old pair or
        the new pair; **drain** the executor futures that were in flight
        at the flip (they run against the old stores); **close** the old
        pair.  Requests never fail because of a swap: pre-flip
        admissions complete on the old store, post-flip admissions run
        on the new one, and connections rebuild their sessions lazily on
        their next request.
        """
        if self._swap_lock is None:
            raise ServeError("daemon is not started")
        if self._swap_lock.locked():
            raise ServeError("a store swap is already in progress")
        async with self._swap_lock:
            return await self._adopt_pair(workdir, absorbed_offset=None)

    async def compact_stores(self, workdir) -> dict:
        """Online compaction: fold the WAL into a fresh pair, then swap.

        The sequence: **snapshot** the log on the event loop (no awaits
        between observing the offset and copying the records, so the
        snapshot is a frame-exact prefix even while writes keep
        arriving); **build** base + snapshot-overlay through the normal
        build pipeline off-loop under ``workdir``; **adopt** via the
        same validate/flip/drain/close protocol as a hot swap, extended
        to truncate the absorbed WAL prefix and replay the unabsorbed
        suffix into fresh overlays inside the same generation bump.
        Writes logged during the build are exactly that suffix — none
        are lost, none are double-applied.
        """
        if self._swap_lock is None:
            raise ServeError("daemon is not started")
        if self._swap_lock.locked():
            raise ServeError("a store swap is already in progress")
        async with self._swap_lock:
            context = self.context
            if not context.mutation_enabled:
                raise ServeError(
                    "compact requires mutation to be enabled on this daemon"
                )
            from repro.snode.delta import DeltaOverlay

            scan = context.wal.scan()
            snapshot = DeltaOverlay()
            for entry in scan.records:
                snapshot.apply_record(entry)
            await asyncio.to_thread(context.compact_build, snapshot, workdir)
            result = await self._adopt_pair(
                workdir, absorbed_offset=scan.good_bytes
            )
            context.compactions += 1
            context.last_compaction_generation = context.generation
            result.update(
                {
                    "compacted": True,
                    "absorbed_records": len(scan.records),
                    "absorbed_bytes": scan.good_bytes,
                }
            )
            return result

    async def _adopt_pair(self, workdir, absorbed_offset) -> dict:
        """Validate, open, flip, drain, close — the shared adoption tail.

        Caller holds the swap lock.  When mutation is enabled, the WAL
        hand-off (:meth:`ServeContext.absorb_wal`) runs synchronously
        between the flip and the first await, so the generation bump,
        the prefix truncation and the overlay re-attachment are one
        atomic step for every coroutine.
        """
        forward, backward = await asyncio.to_thread(
            self.context.open_pair, workdir
        )
        # Snapshot-then-flip with no await between: the snapshot is
        # exactly the set of requests running against the old pair.
        pending = list(self._active)
        old_forward, old_backward = self.context.adopt(forward, backward)
        mutation = None
        if self.context.mutation_enabled:
            mutation = self.context.absorb_wal(
                absorbed_offset, forward, backward
            )
        if pending:
            await asyncio.gather(*pending, return_exceptions=True)
        await asyncio.to_thread(old_forward.close)
        await asyncio.to_thread(old_backward.close)
        self.counters.store_swaps += 1
        result = {
            "swapped": True,
            "generation": self.context.generation,
            "drained": len(pending),
            "workdir": str(workdir),
        }
        if mutation is not None:
            result["mutation"] = mutation
        return result

    # -- request execution (worker threads) ------------------------------------

    def _session_counters(self, engine: ClientEngine) -> dict[str, int]:
        """Attributable session counters summed over both directions.

        Requests on one connection are strictly sequential (the read
        loop awaits each dispatch), so before/after differences of the
        connection's sessions are exactly this request's I/O.
        """
        totals: dict[str, int] = {}
        for direction in engine.io_stats().values():
            for name in DELTA_COUNTERS:
                totals[name] = totals.get(name, 0) + int(direction.get(name, 0))
        return totals

    def _execute_measured(
        self,
        engine: ClientEngine,
        op: str,
        request: dict,
        record: RequestRecord,
        submitted: float,
        deadline: float | None = None,
    ):
        """Worker-thread wrapper: queue-wait + execute spans, counter deltas.

        Opens a *request-scoped* tracer bound to the connection's
        session pair and activates it for this worker thread only
        (contextvar confinement): the root span is ``request.<op>``,
        navigation helpers add ``nav.*`` children, and every span's
        counter delta is this connection's I/O — another worker's
        request can never leak into it.  The resulting span records ride
        on the request record into the flight recorder.

        A request whose ``deadline`` passed while it waited in the queue
        is shed here, at queue exit, without executing — the second
        enforcement point after the pre-admission check (the event-loop
        timer covers the third, mid-execution, case).
        """
        clock = self.telemetry.clock
        begin = clock()
        record.phases["queue_wait"] = begin - submitted
        if deadline is not None and begin >= deadline:
            raise DeadlineError(
                f"deadline expired after {record.phases['queue_wait'] * 1e3:.1f} "
                "ms of queue wait; request shed unexecuted"
            )
        before = self._session_counters(engine)
        tracer = Tracer(registry=engine)
        try:
            with tracing.activated(tracer):
                with tracer.span(f"request.{op}", rid=record.rid):
                    return self._execute(engine, op, request)
        finally:
            record.phases["execute"] = clock() - begin
            after = self._session_counters(engine)
            record.counters = {
                name: after.get(name, 0) - before.get(name, 0)
                for name in DELTA_COUNTERS
            }
            record.spans = tracer.span_records()

    def _execute(self, engine: ClientEngine, op: str, request: dict):
        if op == "query":
            name = request.get("name")
            if name not in _QUERY_NAMES:
                raise QueryError(
                    f"unknown paper query {name!r}; choose from {_QUERY_NAMES}"
                )
            result = run_query(engine.engine, name)
            payload = protocol.canonicalize(result.payload)
            return {
                "name": name,
                "payload": payload,
                "digest": protocol.payload_digest(result.payload),
                "navigation_seconds": result.navigation_seconds,
            }
        if op == "neighbors":
            page = request.get("page")
            if not isinstance(page, int) or isinstance(page, bool):
                raise QueryError("neighbors op needs an integer 'page'")
            if not 0 <= page < self.context.repository.num_pages:
                raise QueryError(f"page {page} out of range")
            with engine.engine.navigation_timer("out_neighborhood"):
                row = engine.engine.forward.out_neighbors(page)
            return {"page": page, "neighbors": row}
        raise ServeError(f"unhandled op {op!r}")  # pragma: no cover

    # -- stats / metrics (event loop; registries are internally locked) --------

    @property
    def queue_depth(self) -> int:
        """Admitted requests waiting for a worker (in flight - running)."""
        return max(0, self._inflight - self.workers)

    def io_resilience(self) -> dict[str, int]:
        """Storage-level retry and injected-fault counters, both stores.

        ``io_retries`` counts transient read errors
        (:class:`~repro.storage.faults.TransientIOError`) absorbed by
        the device layer's bounded retry loop; ``fault_*`` counters
        appear when a chaos :class:`~repro.storage.faults.FaultPlan` is
        active.  Summed over base + live-session registries of both
        shared stores, so retries are visible even though requests that
        needed one still succeeded.
        """
        totals: dict[str, int] = {"io_retries": 0}
        for direction in self.context.shared_totals().values():
            for name, value in direction.items():
                if name == "io_retries" or name.startswith("fault_"):
                    totals[name] = totals.get(name, 0) + int(value)
        return totals

    def _stats(self, engine: ClientEngine) -> dict:
        return {
            "client": engine.io_stats(),
            "shared": self.context.shared_totals(),
            # Per-direction pool pressure: capacity_bytes is the byte
            # budget, pinned_bytes the resident floor, used_bytes the
            # LRU occupancy (see BufferPool.stats()).
            "buffer": self.context.buffer_stats(),
            # Storage-layer resilience: absorbed retries + injected
            # faults (see io_resilience).
            "storage": self.io_resilience(),
            # Mutable-serving state: WAL size, pending delta, compaction
            # progress ({"enabled": False} on an immutable daemon).
            "mutation": self.context.mutation_stats(),
            "daemon": {
                **self.counters.as_dict(),
                "inflight": self._inflight,
                "queue_depth": self.queue_depth,
                "workers": self.workers,
                "queue_limit": self.queue_limit,
                "uptime_seconds": self.telemetry.uptime_seconds,
            },
        }

    def _gauges(self) -> dict:
        """Instantaneous daemon values merged into metrics snapshots."""
        gauges = {
            "inflight": self._inflight,
            "queue_depth": self.queue_depth,
            "queue_limit": self.queue_limit,
            "workers": self.workers,
            "connections_total": self.counters.connections,
        }
        for direction, stats in self.context.buffer_stats().items():
            for key in ("capacity_bytes", "used_bytes", "pinned_bytes"):
                gauges[f"buffer_{direction}_{key}"] = stats[key]
        if self.context.mutation_enabled:
            mutation = self.context.mutation_stats()
            for key in (
                "wal_bytes",
                "delta_edges",
                "overlay_rows",
                "compactions",
                "last_compaction_generation",
            ):
                gauges[key] = mutation[key]
        return gauges

    def _metrics(self, fmt) -> dict:
        """The ``metrics`` inline op: JSON snapshot or Prometheus text."""
        if fmt not in (None, "json", "text"):
            raise QueryError(
                f"metrics format must be 'json' or 'text', got {fmt!r}"
            )
        snapshot = self.telemetry.snapshot(
            gauges=self._gauges(), storage=self.io_resilience()
        )
        if fmt == "text":
            return {"text": render_prometheus(snapshot)}
        return snapshot

    # -- flight recorder / debug bundles ---------------------------------------

    def config_view(self) -> dict:
        """The serving configuration, as recorded in debug bundles."""
        return {
            "host": self.host,
            "port": self.port,
            "workers": self.workers,
            "queue_limit": self.queue_limit,
            "flight": {
                "slow_threshold_ms": self.flight.slow_threshold_s * 1e3,
                "slow_top": self.flight.slow_top,
            },
        }

    def _debug(self) -> dict:
        """The ``debug`` inline op: every retained trace plus context.

        Returns the same material a shutdown debug bundle holds, so a
        client (``repro trace --dump``) can write a bundle from a live
        daemon without stopping it.
        """
        return {
            "flight": self.flight.snapshot(),
            "traces": self.flight.traces(),
            "slow": self.telemetry.slow_log.top(),
            "config": self.config_view(),
            "stats": self.telemetry.snapshot(
                gauges=self._gauges(), storage=self.io_resilience()
            ),
        }

    def dump_debug_bundle(self, directory) -> Path:
        """Write the flight recorder + stats/config/slow log as a bundle."""
        return write_debug_bundle(
            directory,
            self.flight.traces(),
            stats=self.telemetry.snapshot(
                gauges=self._gauges(), storage=self.io_resilience()
            ),
            config=self.config_view(),
            slow_entries=self.telemetry.slow_log.top(),
        )


class DaemonHandle:
    """A daemon running on its own event-loop thread (tests, benchmarks)."""

    def __init__(self, daemon: GraphQueryDaemon) -> None:
        self.daemon = daemon
        self._started = threading.Event()
        self._stop: asyncio.Event | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._failure: BaseException | None = None
        self._thread = threading.Thread(
            target=self._run, name="serve-daemon", daemon=True
        )

    def _run(self) -> None:
        async def main() -> None:
            self._loop = asyncio.get_running_loop()
            self._stop = asyncio.Event()
            try:
                await self.daemon.start()
            finally:
                self._started.set()
            try:
                await self._stop.wait()
            finally:
                await self.daemon.stop()

        try:
            asyncio.run(main())
        except BaseException as exc:  # noqa: BLE001 — surfaced by start()/stop()
            self._failure = exc
            self._started.set()

    def start(self, timeout: float = 30.0) -> "DaemonHandle":
        """Start the thread; returns once the daemon is listening."""
        self._thread.start()
        if not self._started.wait(timeout):
            raise ServeError("daemon did not start in time")
        if self._failure is not None:
            raise ServeError(f"daemon failed to start: {self._failure}")
        return self

    @property
    def port(self) -> int:
        """The daemon's bound port."""
        return self.daemon.bound_port

    def stop(self, timeout: float = 30.0) -> None:
        """Shut the daemon down and join its thread."""
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout)
        if self._thread.is_alive():
            raise ServeError("daemon did not shut down in time")
        if self._failure is not None:
            raise ServeError(f"daemon thread failed: {self._failure}")

    def __enter__(self) -> "DaemonHandle":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
