"""The graph query daemon: concurrent Figure 11 queries over one store.

Architecture (the paper's runtime organization, made multi-client):

* **one shared store pair** — forward and transpose S-Node stores with
  their pinned supernode graphs and one byte-budgeted buffer pool each
  (lock-striped for concurrent readers);
* **per-client sessions** — every connection gets its own
  :class:`~repro.snode.store.ReadSession` pair wrapped in a
  :class:`~repro.query.engine.QueryEngine`, so its hits, misses, seeks
  and navigation timers are attributable to exactly that client while
  the cached graphs are shared by everyone;
* **asyncio frontend, thread-pool backend** — the event loop owns
  accept/read/write; query execution (decode-heavy, disk-touching) runs
  on a bounded worker pool;
* **admission control** — at most ``queue_limit`` requests may be in
  flight (running + queued).  Excess requests are not queued without
  bound and not errored: they receive an immediate typed
  ``backpressure`` reply, and well-behaved clients (the load generator)
  retry with backoff.  Overload therefore degrades throughput, never
  correctness.

``ping`` and ``stats`` are served inline on the event loop — they touch
no disk and must stay responsive under query overload (``stats`` is how
an operator sees the overload).
"""

from __future__ import annotations

import asyncio
import contextlib
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import QueryError, ReproError, ServeError, StorageError
from repro.query.engine import QueryEngine
from repro.query.workload import PAPER_QUERIES, run_query
from repro.serve import protocol

#: Worker threads executing queries (each owns no state; engines are
#: per-connection, stores are shared).
DEFAULT_WORKERS = 8
#: Maximum requests in flight (running + queued) before shedding.
DEFAULT_QUEUE_LIMIT = 32
#: Buffer-pool lock stripes for the shared stores in serving mode.
DEFAULT_STRIPES = 8
#: Shared buffer budget per direction (matches the Figure 11 bound).
DEFAULT_BUFFER_BYTES = 512 * 1024

_QUERY_NAMES = tuple(name for name, _fn in PAPER_QUERIES)


@dataclass
class ClientEngine:
    """One connection's engine plus the sessions it reads through."""

    engine: QueryEngine
    forward: object  # SNodeSessionRepresentation
    backward: object

    def io_stats(self) -> dict[str, dict[str, int]]:
        """This client's own counters, per direction."""
        return {
            "forward": self.forward.io_stats(),
            "backward": self.backward.io_stats(),
        }

    def close(self) -> None:
        """Fold both sessions' metrics back into the shared stores."""
        self.forward.close()
        self.backward.close()


class ServeContext:
    """Everything the daemon serves from: stores, indexes, repository.

    Owns the *shared* side (one forward + one transpose
    :class:`~repro.baselines.base.SNodeRepresentation`, the text and
    PageRank indexes); :meth:`make_engine` stamps out the per-client
    side.
    """

    def __init__(
        self, repository, text_index, pagerank_index, forward, backward
    ) -> None:
        self.repository = repository
        self.text_index = text_index
        self.pagerank_index = pagerank_index
        self.forward = forward
        self.backward = backward

    @classmethod
    def build(
        cls,
        repository,
        workdir: Path | str,
        buffer_bytes: int = DEFAULT_BUFFER_BYTES,
        stripes: int = DEFAULT_STRIPES,
        refinement=None,
    ) -> "ServeContext":
        """Build forward + transpose S-Node stores and the indexes.

        The stores are reopened with ``stripes`` buffer-pool segments —
        the serving configuration; experiments that need the exact
        single-LRU eviction order open their own stores with the default
        ``stripes=1``.
        """
        from repro.baselines import SNodeRepresentation
        from repro.experiments.harness import experiment_refinement_config
        from repro.index.pagerank_index import PageRankIndex
        from repro.index.textindex import TextIndex
        from repro.snode.build import BuildOptions, build_snode
        from repro.snode.store import SNodeStore

        workdir = Path(workdir)
        refinement = (
            refinement if refinement is not None else experiment_refinement_config()
        )
        forward_build = build_snode(
            repository,
            workdir / "serve_f",
            BuildOptions(refinement=refinement, buffer_bytes=buffer_bytes),
        )
        backward_build = build_snode(
            repository,
            workdir / "serve_b",
            BuildOptions(
                refinement=refinement, buffer_bytes=buffer_bytes, transpose=True
            ),
        )
        if stripes != 1:
            for build in (forward_build, backward_build):
                build.store.close()
                build.store = SNodeStore(
                    build.root, buffer_bytes=buffer_bytes, stripes=stripes
                )
        return cls(
            repository,
            TextIndex(repository),
            PageRankIndex(repository),
            SNodeRepresentation(forward_build),
            SNodeRepresentation(backward_build),
        )

    def make_engine(self, label: str) -> ClientEngine:
        """A per-client engine reading through fresh sessions."""
        forward = self.forward.session(label=f"{label}/forward")
        backward = self.backward.session(label=f"{label}/backward")
        engine = QueryEngine(
            self.repository,
            self.text_index,
            self.pagerank_index,
            forward,
            backward,
        )
        return ClientEngine(engine=engine, forward=forward, backward=backward)

    def serial_engine(self) -> QueryEngine:
        """An engine on the shared (root) path — the serial baseline."""
        return QueryEngine(
            self.repository,
            self.text_index,
            self.pagerank_index,
            self.forward,
            self.backward,
        )

    def shared_totals(self) -> dict[str, dict[str, float]]:
        """Merged metrics (base + live sessions), per direction."""
        return {
            "forward": self.forward.store.metrics.merged_snapshot(),
            "backward": self.backward.store.metrics.merged_snapshot(),
        }

    def buffer_stats(self) -> dict[str, dict[str, int]]:
        """Shared buffer-pool occupancy and hit counters, per direction."""
        return {
            "forward": self.forward.store.buffer_stats(),
            "backward": self.backward.store.buffer_stats(),
        }

    def close(self) -> None:
        """Close both shared stores."""
        self.forward.close()
        self.backward.close()


@dataclass
class DaemonCounters:
    """Daemon-level request accounting (event-loop confined)."""

    connections: int = 0
    requests_ok: int = 0
    requests_shed: int = 0
    requests_failed: int = 0

    def as_dict(self) -> dict[str, int]:
        # "backpressure_replies", not "requests_shed": the count varies
        # with thread interleaving, and a key containing "_s" would be
        # threshold-compared as a cost by bench-diff.
        return {
            "connections": self.connections,
            "requests_ok": self.requests_ok,
            "backpressure_replies": self.requests_shed,
            "requests_failed": self.requests_failed,
        }


@dataclass
class GraphQueryDaemon:
    """Asyncio TCP daemon serving the Figure 11 workload."""

    context: ServeContext
    host: str = "127.0.0.1"
    port: int = 0
    workers: int = DEFAULT_WORKERS
    queue_limit: int = DEFAULT_QUEUE_LIMIT
    counters: DaemonCounters = field(default_factory=DaemonCounters)

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ServeError(f"workers must be >= 1, got {self.workers}")
        if self.queue_limit < 1:
            raise ServeError(
                f"queue_limit must be >= 1, got {self.queue_limit}"
            )
        self._server: asyncio.AbstractServer | None = None
        self._executor: ThreadPoolExecutor | None = None
        self._inflight = 0
        self._next_client = 0

    @property
    def bound_port(self) -> int:
        """The actual listening port (after binding port 0)."""
        if self._server is None:
            raise ServeError("daemon is not started")
        return self._server.sockets[0].getsockname()[1]

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        """Bind and start accepting connections."""
        self._executor = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="serve-worker"
        )
        self._server = await asyncio.start_server(
            self._handle_client, self.host, self.port
        )

    async def stop(self) -> None:
        """Stop accepting, drain workers, release the port."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    async def serve_forever(self) -> None:
        """Start (if needed) and serve until cancelled."""
        if self._server is None:
            await self.start()
        try:
            await self._server.serve_forever()
        finally:
            await self.stop()

    # -- connection handling ---------------------------------------------------

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        client_id = self._next_client
        self._next_client += 1
        self.counters.connections += 1
        engine = self.context.make_engine(f"client-{client_id}")
        try:
            while True:
                try:
                    request = await protocol.read_frame(reader)
                except ServeError as exc:
                    with contextlib.suppress(Exception):
                        await protocol.write_frame(
                            writer,
                            protocol.error_reply(
                                None, protocol.ERROR_BAD_REQUEST, str(exc)
                            ),
                        )
                    break
                if request is None:
                    break
                reply = await self._dispatch(engine, request)
                await protocol.write_frame(writer, reply)
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            engine.close()
            writer.close()
            # CancelledError is a BaseException on 3.11: suppress it too,
            # or a shutdown mid-close logs a spurious task traceback.
            with contextlib.suppress(Exception, asyncio.CancelledError):
                await writer.wait_closed()

    async def _dispatch(self, engine: ClientEngine, request) -> dict:
        if not isinstance(request, dict):
            self.counters.requests_failed += 1
            return protocol.error_reply(
                None, protocol.ERROR_BAD_REQUEST, "request frame must be an object"
            )
        request_id = request.get("id")
        op = request.get("op")
        if op == "ping":
            self.counters.requests_ok += 1
            return protocol.ok_reply(request_id, {"pong": True})
        if op == "stats":
            self.counters.requests_ok += 1
            return protocol.ok_reply(request_id, self._stats(engine))
        if op not in ("query", "neighbors"):
            self.counters.requests_failed += 1
            return protocol.error_reply(
                request_id, protocol.ERROR_BAD_REQUEST, f"unknown op {op!r}"
            )
        # Admission control: _inflight is only touched on the event loop,
        # so the check-then-increment is race-free without a lock.
        if self._inflight >= self.queue_limit:
            self.counters.requests_shed += 1
            return protocol.error_reply(
                request_id,
                protocol.ERROR_BACKPRESSURE,
                f"{self._inflight} requests in flight (limit "
                f"{self.queue_limit}); retry later",
            )
        self._inflight += 1
        try:
            loop = asyncio.get_running_loop()
            result = await loop.run_in_executor(
                self._executor, self._execute, engine, op, request
            )
        except (QueryError, ServeError, StorageError, ValueError) as exc:
            self.counters.requests_failed += 1
            return protocol.error_reply(
                request_id, protocol.ERROR_BAD_REQUEST, str(exc)
            )
        except ReproError as exc:
            self.counters.requests_failed += 1
            return protocol.error_reply(
                request_id, protocol.ERROR_SERVER, str(exc)
            )
        except Exception as exc:  # noqa: BLE001 — a query bug must not kill the daemon
            self.counters.requests_failed += 1
            return protocol.error_reply(
                request_id, protocol.ERROR_SERVER, f"{type(exc).__name__}: {exc}"
            )
        finally:
            self._inflight -= 1
        self.counters.requests_ok += 1
        return protocol.ok_reply(request_id, result)

    # -- request execution (worker threads) ------------------------------------

    def _execute(self, engine: ClientEngine, op: str, request: dict):
        if op == "query":
            name = request.get("name")
            if name not in _QUERY_NAMES:
                raise QueryError(
                    f"unknown paper query {name!r}; choose from {_QUERY_NAMES}"
                )
            result = run_query(engine.engine, name)
            payload = protocol.canonicalize(result.payload)
            return {
                "name": name,
                "payload": payload,
                "digest": protocol.payload_digest(result.payload),
                "navigation_seconds": result.navigation_seconds,
            }
        if op == "neighbors":
            page = request.get("page")
            if not isinstance(page, int) or isinstance(page, bool):
                raise QueryError("neighbors op needs an integer 'page'")
            if not 0 <= page < self.context.repository.num_pages:
                raise QueryError(f"page {page} out of range")
            with engine.engine.navigation_timer("out_neighborhood"):
                row = engine.engine.forward.out_neighbors(page)
            return {"page": page, "neighbors": row}
        raise ServeError(f"unhandled op {op!r}")  # pragma: no cover

    # -- stats (event loop; registries are internally locked) ------------------

    def _stats(self, engine: ClientEngine) -> dict:
        return {
            "client": engine.io_stats(),
            "shared": self.context.shared_totals(),
            "buffer": self.context.buffer_stats(),
            "daemon": {
                **self.counters.as_dict(),
                "inflight": self._inflight,
                "workers": self.workers,
                "queue_limit": self.queue_limit,
            },
        }


class DaemonHandle:
    """A daemon running on its own event-loop thread (tests, benchmarks)."""

    def __init__(self, daemon: GraphQueryDaemon) -> None:
        self.daemon = daemon
        self._started = threading.Event()
        self._stop: asyncio.Event | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._failure: BaseException | None = None
        self._thread = threading.Thread(
            target=self._run, name="serve-daemon", daemon=True
        )

    def _run(self) -> None:
        async def main() -> None:
            self._loop = asyncio.get_running_loop()
            self._stop = asyncio.Event()
            try:
                await self.daemon.start()
            finally:
                self._started.set()
            try:
                await self._stop.wait()
            finally:
                await self.daemon.stop()

        try:
            asyncio.run(main())
        except BaseException as exc:  # noqa: BLE001 — surfaced by start()/stop()
            self._failure = exc
            self._started.set()

    def start(self, timeout: float = 30.0) -> "DaemonHandle":
        """Start the thread; returns once the daemon is listening."""
        self._thread.start()
        if not self._started.wait(timeout):
            raise ServeError("daemon did not start in time")
        if self._failure is not None:
            raise ServeError(f"daemon failed to start: {self._failure}")
        return self

    @property
    def port(self) -> int:
        """The daemon's bound port."""
        return self.daemon.bound_port

    def stop(self, timeout: float = 30.0) -> None:
        """Shut the daemon down and join its thread."""
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout)
        if self._thread.is_alive():
            raise ServeError("daemon did not shut down in time")
        if self._failure is not None:
            raise ServeError(f"daemon thread failed: {self._failure}")

    def __enter__(self) -> "DaemonHandle":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
