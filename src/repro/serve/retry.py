"""Shared retry/backoff policy for daemon clients.

Every client of the graph query daemon — the load generator, ``repro
top``, ``repro trace`` — faces the same two transient conditions: a
typed ``backpressure`` reply (admission control shed the request; the
daemon is healthy but full) and a refused/reset connection (the daemon
is restarting, e.g. around a hot store swap).  Before this module each
client improvised its own loop (the load generator used linear backoff,
``repro top`` simply exited); now they share one :class:`RetryPolicy`.

The policy implements **decorrelated jitter**: each delay is drawn
uniformly from ``[base, previous * 3]`` and clamped to ``cap``, so a
fleet of clients hammered off a saturated daemon de-synchronises
instead of retrying in lockstep — the classic thundering-herd fix.  The
jitter stream is **seeded**, so a load-generator run retries at exactly
the same offsets every time and stays reproducible.

Two safety rails bound the retries:

* a per-request **attempt cap** (``max_attempts``) — a request gives up
  rather than spinning forever against a daemon that never admits it;
* an optional shared :class:`RetryBudget` — a process-wide token pool
  capping the *total* retry volume a fleet of client threads may emit,
  so overload cannot amplify itself (retries are offered load too).

**Idempotency gating.**  :meth:`RetryPolicy.retryable` only approves a
retry when re-sending cannot double-execute: a ``backpressure`` reply
was *never executed* (safe for any op), otherwise only reads
(:data:`IDEMPOTENT_OPS`) may be retried blind.  The mutating ops —
``swap``, ``compact`` and the edge writes ``add_edges``/``remove_edges``
— are deliberately not retryable: re-sending an edge write whose reply
was lost would append (and apply) it twice.
"""

from __future__ import annotations

import random
import threading

from repro.errors import ServeError

#: Default first backoff (matches the previous linear policy's base).
DEFAULT_BASE_S = 0.002
#: Default delay clamp — retries never sleep longer than this.
DEFAULT_CAP_S = 0.1
#: Default per-request attempt cap (the load generator's historical
#: give-up bound against a daemon that never admits anything).
DEFAULT_MAX_ATTEMPTS = 10_000

#: Ops safe to re-send even when the first send may have executed: all
#: of them read shared state and mutate nothing.  ``swap``, ``compact``,
#: ``add_edges`` and ``remove_edges`` are absent on purpose — re-sending
#: any of them would re-run a non-idempotent mutation.
IDEMPOTENT_OPS = frozenset(
    {"ping", "stats", "metrics", "debug", "query", "neighbors"}
)


class RetryBudget:
    """A shared, thread-safe pool of retry tokens.

    One budget is shared by every client thread of a run; each retry
    takes one token and a drained budget turns further retries into
    hard failures.  This bounds the *aggregate* retry storm a fleet can
    emit, which per-request attempt caps alone cannot.
    """

    def __init__(self, tokens: int) -> None:
        if tokens < 0:
            raise ServeError(f"retry budget must be >= 0, got {tokens}")
        self._tokens = tokens
        self._lock = threading.Lock()

    @property
    def remaining(self) -> int:
        """Tokens left in the pool."""
        with self._lock:
            return self._tokens

    def take(self) -> bool:
        """Consume one token; False when the budget is exhausted."""
        with self._lock:
            if self._tokens <= 0:
                return False
            self._tokens -= 1
            return True


class RetrySchedule:
    """The delay sequence for one logical request.

    Obtained from :meth:`RetryPolicy.for_request`; each
    :meth:`next_delay` call returns the seconds to sleep before the next
    attempt, or ``None`` when the request should give up (attempt cap or
    shared budget exhausted).
    """

    def __init__(self, policy: "RetryPolicy", rng: random.Random) -> None:
        self._policy = policy
        self._rng = rng
        self._previous = policy.base_s
        self.attempts = 0

    def next_delay(self) -> float | None:
        """Seconds before the next attempt; None = stop retrying."""
        policy = self._policy
        if self.attempts >= policy.max_attempts:
            return None
        if policy.budget is not None and not policy.budget.take():
            return None
        self.attempts += 1
        # Decorrelated jitter: uniform over [base, previous * 3], capped.
        delay = min(
            policy.cap_s, self._rng.uniform(policy.base_s, self._previous * 3)
        )
        self._previous = delay
        return delay


class RetryPolicy:
    """Seeded decorrelated-jitter backoff with budget and idempotency gates.

    One policy instance belongs to one client thread (the jitter RNG is
    not locked); the optional :class:`RetryBudget` may be shared across
    any number of policies.
    """

    def __init__(
        self,
        base_s: float = DEFAULT_BASE_S,
        cap_s: float = DEFAULT_CAP_S,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        seed: int = 0,
        budget: RetryBudget | None = None,
    ) -> None:
        if base_s <= 0:
            raise ServeError(f"base_s must be > 0, got {base_s}")
        if cap_s < base_s:
            raise ServeError(
                f"cap_s must be >= base_s, got cap {cap_s} < base {base_s}"
            )
        if max_attempts < 0:
            raise ServeError(f"max_attempts must be >= 0, got {max_attempts}")
        self.base_s = base_s
        self.cap_s = cap_s
        self.max_attempts = max_attempts
        self.seed = seed
        self.budget = budget
        self._rng = random.Random(seed)

    def for_request(self) -> RetrySchedule:
        """A fresh delay schedule for one logical request."""
        return RetrySchedule(self, self._rng)

    def retryable(self, op: str, error_type: str | None = None) -> bool:
        """May ``op`` be re-sent after ``error_type`` / a broken connection?

        A ``backpressure`` reply proves the daemon *never executed* the
        request, so any op may retry it.  Everything else (connect
        failures, closed connections) is ambiguous — the request may
        have run — so only idempotent ops retry blind.
        """
        if error_type == "backpressure":
            return True
        return op in IDEMPOTENT_OPS
