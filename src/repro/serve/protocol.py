"""Wire protocol of the graph query daemon.

Frames are **length-prefixed JSON**: a 4-byte big-endian payload length
followed by that many bytes of UTF-8 JSON.  JSON keeps the protocol
inspectable (``printf '...' | nc`` debugging works) while the length
prefix gives exact message boundaries over TCP without sentinel parsing.

Requests carry ``{"id": <client-chosen>, "op": <name>, ...}``; replies
echo the id with either ``{"ok": true, "result": ...}`` or
``{"ok": false, "error": {"type": ..., "message": ...}}``.  Error types
are part of the protocol: ``backpressure`` (admission control shed the
request — retry later), ``bad_request`` (malformed frame or unknown
op/query), ``server_error`` (the query raised), ``timeout`` (the
request's ``deadline_ms`` expired before it finished — the work was
shed or abandoned, never half-applied).

**Deadlines.**  A request may carry ``deadline_ms`` — a relative budget
in milliseconds, measured from the moment the daemon accepted the frame.
The daemon enforces it across queue-wait and execution: work whose
deadline has already passed is shed before it ever runs, and a request
still executing at its deadline gets a typed ``timeout`` reply at the
deadline while the abandoned execution drains in the background.
:func:`parse_deadline_ms` is *strict* (unlike trace context): a deadline
changes semantics, so a malformed one is a ``bad_request``.

**Request ids and server telemetry.**  Every request additionally gets a
*request id*: the client's ``rid`` field if it sent one (a string or
int), else one the daemon generates.  Replies echo it inside a
``server`` section along with the request's measured lifecycle —
outcome, per-phase timings in microseconds and the session counter
deltas it caused — so a client can compare its observed latency against
the server-side spend (queue-wait explains the difference under load)
and join its requests against the daemon's access and slow-query logs.

**Trace context.**  A request may carry a ``trace`` section —
``{"trace": {"id": <string>, "parent": <span id>}}`` — propagating the
client's trace id (and optionally the client-side span the request
belongs under) into the daemon's per-request span tree.
:func:`parse_trace_context` extracts it *leniently*: the section is
observability metadata, so a missing, malformed or future-versioned
context never fails a request — unknown fields are ignored (forward
compatibility) and a request without one simply gets a server-generated
trace id.

**Canonical JSON.** Query payloads contain sets, tuples and int-keyed
dicts; :func:`canonicalize` maps them onto plain JSON (sorted lists,
lists, string keys) deterministically, and :func:`payload_digest` hashes
that canonical form — two runs returning the same answer produce the
same digest regardless of thread interleaving, which is how the serve
benchmark proves concurrent results match the serial run byte-for-byte.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import socket
import struct
from typing import NamedTuple

from repro.errors import ServeError

#: Upper bound on one frame's JSON payload; a peer announcing more is
#: protocol-broken (or hostile) and the connection is dropped.
MAX_FRAME_BYTES = 64 * 1024 * 1024

_HEADER = struct.Struct(">I")

#: Protocol error types (the ``error.type`` field of failure replies).
ERROR_BACKPRESSURE = "backpressure"
ERROR_BAD_REQUEST = "bad_request"
ERROR_SERVER = "server_error"
ERROR_TIMEOUT = "timeout"

#: ``parent`` value meaning "no client-side parent span".
NO_PARENT_SPAN = -1


class TraceContext(NamedTuple):
    """Trace context propagated in a request's ``trace`` section."""

    #: The client's trace id, or None when the request carried none
    #: (the daemon then generates one).
    trace_id: str | None
    #: Client-side parent span id (:data:`NO_PARENT_SPAN` when absent).
    parent: int


def parse_trace_context(request) -> TraceContext:
    """Extract the trace context from a request, leniently.

    Observability metadata must never fail a request: a missing or
    malformed ``trace`` section yields an empty context, and fields this
    protocol version does not know are ignored — a newer client can add
    them without breaking an older daemon.
    """
    raw = request.get("trace") if isinstance(request, dict) else None
    if not isinstance(raw, dict):
        return TraceContext(None, NO_PARENT_SPAN)
    trace_id = raw.get("id")
    if isinstance(trace_id, (str, int)) and not isinstance(trace_id, bool):
        trace_id = str(trace_id)
    else:
        trace_id = None
    parent = raw.get("parent")
    if not isinstance(parent, int) or isinstance(parent, bool):
        parent = NO_PARENT_SPAN
    return TraceContext(trace_id, parent)


def parse_deadline_ms(request) -> float | None:
    """Extract and validate a request's ``deadline_ms`` field.

    Returns the budget in milliseconds, or None when the request carries
    no deadline.  Unlike trace context this is parsed *strictly* — a
    deadline changes what the daemon does, so a non-numeric or negative
    value raises :class:`ServeError` (mapped to ``bad_request``).
    """
    raw = request.get("deadline_ms") if isinstance(request, dict) else None
    if raw is None:
        return None
    if isinstance(raw, bool) or not isinstance(raw, (int, float)):
        raise ServeError(
            f"deadline_ms must be a number of milliseconds, got {raw!r}"
        )
    if raw < 0:
        raise ServeError(f"deadline_ms must be >= 0, got {raw!r}")
    return float(raw)


def canonicalize(value):
    """Map a query payload onto deterministic plain-JSON values.

    Sets become sorted lists, tuples become lists, non-string dict keys
    become strings (entries sorted by that string key).  The result
    round-trips through ``json`` unchanged, so digests computed on
    either side of the wire agree.
    """
    if isinstance(value, dict):
        items = [(str(key), canonicalize(item)) for key, item in value.items()]
        items.sort(key=lambda kv: kv[0])
        if len({key for key, _ in items}) != len(items):
            raise ServeError("payload dict keys collide after stringification")
        return dict(items)
    if isinstance(value, (set, frozenset)):
        return sorted(canonicalize(item) for item in value)
    if isinstance(value, (list, tuple)):
        return [canonicalize(item) for item in value]
    if isinstance(value, bool) or value is None:
        return value
    if isinstance(value, (int, float, str)):
        return value
    raise ServeError(f"cannot canonicalize payload value of type {type(value).__name__}")


def canonical_json(value) -> str:
    """Deterministic JSON text of ``value`` (after :func:`canonicalize`)."""
    return json.dumps(
        canonicalize(value), sort_keys=True, separators=(",", ":")
    )


def payload_digest(value) -> str:
    """sha256 hex digest of the canonical JSON form of ``value``."""
    return hashlib.sha256(canonical_json(value).encode("utf-8")).hexdigest()


def encode_frame(message) -> bytes:
    """One wire frame: length header + canonical JSON payload."""
    payload = canonical_json(message).encode("utf-8")
    if len(payload) > MAX_FRAME_BYTES:
        raise ServeError(
            f"frame of {len(payload)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte protocol limit"
        )
    return _HEADER.pack(len(payload)) + payload


def decode_payload(payload: bytes):
    """Parse one frame payload; raises :class:`ServeError` on bad JSON."""
    try:
        return json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ServeError(f"malformed frame payload: {exc}") from exc


# -- asyncio side (daemon) --------------------------------------------------


async def read_frame_raw(reader: asyncio.StreamReader) -> bytes | None:
    """Read one frame's payload bytes; None on clean EOF before a header.

    Split from :func:`read_frame` so the daemon can time the decode
    phase separately from the socket read.
    """
    try:
        header = await reader.readexactly(_HEADER.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ServeError("connection closed mid-header") from exc
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ServeError(
            f"peer announced a {length}-byte frame (limit {MAX_FRAME_BYTES})"
        )
    try:
        return await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise ServeError("connection closed mid-frame") from exc


async def read_frame(reader: asyncio.StreamReader):
    """Read one frame; returns None on clean EOF before a header."""
    payload = await read_frame_raw(reader)
    if payload is None:
        return None
    return decode_payload(payload)


async def write_frame(writer: asyncio.StreamWriter, message) -> None:
    """Write one frame and drain the transport."""
    writer.write(encode_frame(message))
    await writer.drain()


# -- blocking-socket side (clients) -----------------------------------------


def _recv_exactly(sock: socket.socket, length: int) -> bytes:
    chunks = []
    remaining = length
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            raise ServeError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def send_frame(sock: socket.socket, message) -> None:
    """Blocking-socket frame send (load generator / CLI client)."""
    sock.sendall(encode_frame(message))


def recv_frame(sock: socket.socket):
    """Blocking-socket frame receive; None on clean EOF before a header."""
    first = sock.recv(_HEADER.size)
    if not first:
        return None
    header = first + (
        _recv_exactly(sock, _HEADER.size - len(first))
        if len(first) < _HEADER.size
        else b""
    )
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ServeError(
            f"peer announced a {length}-byte frame (limit {MAX_FRAME_BYTES})"
        )
    return decode_payload(_recv_exactly(sock, length))


def error_reply(
    request_id, error_type: str, message: str, server: dict | None = None
) -> dict:
    """A failure reply frame (``server`` echoes the request telemetry)."""
    reply = {
        "id": request_id,
        "ok": False,
        "error": {"type": error_type, "message": message},
    }
    if server is not None:
        reply["server"] = server
    return reply


def ok_reply(request_id, result, server: dict | None = None) -> dict:
    """A success reply frame (``server`` echoes the request telemetry)."""
    reply = {"id": request_id, "ok": True, "result": result}
    if server is not None:
        reply["server"] = server
    return reply
