"""Live serving telemetry: request lifecycle records -> windowed views.

The daemon measures every request as a :class:`RequestRecord` — request
id, op, outcome, per-phase timings and the session counter deltas the
request caused — and feeds it to one shared :class:`ServeTelemetry`,
which maintains:

* **windowed aggregates** (:mod:`repro.obs.windowed`): per-op and
  per-phase latency histograms plus per-outcome counters, all rotated on
  one injectable clock, so ``metrics`` reports p99 *over the last
  windows*, not over the process lifetime;
* **cumulative aggregates**: the same histograms' lifetime view (the two
  are conserved by construction — see ``WindowedHistogram``);
* **structured logs** (:mod:`repro.obs.accesslog`): a sampled, bounded
  access log and an always-on slow-query log, both carrying the request
  id so a slow entry joins back to its phase breakdown;
* **per-connection counters** for live connections (requests by outcome,
  attributable I/O via the connection's metrics session).

The request lifecycle and its phase spans::

    accept ──▶ decode ──▶ queue-wait ──▶ execute ──▶ encode ──▶ reply
          decode_s     queue_wait_s   execute_s    encode_s   reply_s

``accept`` is the boundary event (the frame's last byte arrived; its
wall-clock time is the record's ``unix`` stamp); each arrow is a
measured span and their sum is the server-side latency ``server_s`` —
which the daemon echoes in every reply, so a client can subtract it from
its own measurement and attribute the difference to the network.

:func:`render_prometheus` turns a snapshot into the Prometheus text
exposition format for scrape-style integration.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable

from repro.obs.accesslog import AccessLog, SlowQueryLog
from repro.obs.windowed import (
    DEFAULT_WINDOW_SECONDS,
    DEFAULT_WINDOWS,
    WindowedCounter,
    WindowedHistogramSet,
)

#: The request outcomes of the serving protocol, in reporting order.
OUTCOMES = (
    "ok",
    "backpressure",
    "bad_request",
    "server_error",
    "degraded",
    "timeout",
)

#: The measured phase spans, in lifecycle order.
PHASES = ("decode", "queue_wait", "execute", "encode", "reply")

#: Session counters attributed per request (deltas of the connection's
#: metrics session around the execute phase).  This is the complete set
#: of counters sessions accumulate, so summing the per-request deltas
#: over a connection's requests reproduces its session totals exactly —
#: the conservation identity the serve benchmark gates.
DELTA_COUNTERS = (
    "buffer_hits",
    "buffer_pinned_hits",
    "buffer_misses",
    "disk_seeks",
    "bytes_read",
    "loads",
    "intranode_loads",
    "superedge_loads",
    "degraded_reads",
)


@dataclass
class RequestRecord:
    """One measured request, as fed to :meth:`ServeTelemetry.record`."""

    rid: str
    client: str
    op: str
    outcome: str
    #: Wall-clock (unix) time of the accept boundary.
    unix: float
    #: Phase name -> seconds; missing phases did not happen (a shed
    #: request has no execute span).
    phases: dict[str, float] = field(default_factory=dict)
    #: Session counter growth caused by this request (hits/misses/seeks).
    counters: dict[str, int] = field(default_factory=dict)
    error: str | None = None
    #: Trace id: the client's propagated id, else daemon-generated.
    trace: str = ""
    #: Client-side parent span id from the trace context (-1 = none).
    parent: int = -1
    #: Span records (stable-id dicts) from the request-scoped tracer;
    #: start times are relative to the execute phase.
    spans: list = field(default_factory=list)

    @property
    def server_s(self) -> float:
        """Server-side latency: the sum of the measured phase spans."""
        return sum(self.phases.values())

    def reply_view(self) -> dict:
        """The ``server`` section echoed to the client in the reply.

        Built *before* the encode/reply spans run (they are measured
        around the reply itself), so it carries the phases known at
        encode time; the full record — including encode/reply — goes to
        the logs and histograms.
        """
        return {
            "rid": self.rid,
            "trace": self.trace,
            "outcome": self.outcome,
            "phases_us": {
                name: round(seconds * 1e6)
                for name, seconds in sorted(self.phases.items())
            },
            "counters": dict(sorted(self.counters.items())),
        }

    def log_view(self) -> dict:
        """The JSONL form written to the access / slow-query logs."""
        return {
            "rid": self.rid,
            "trace": self.trace,
            "client": self.client,
            "op": self.op,
            "outcome": self.outcome,
            "unix": self.unix,
            "server_us": round(self.server_s * 1e6),
            "phases_us": {
                name: round(seconds * 1e6)
                for name, seconds in sorted(self.phases.items())
            },
            "counters": dict(sorted(self.counters.items())),
            **({"error": self.error} if self.error else {}),
        }

    def trace_view(self) -> dict:
        """The complete trace document fed to the flight recorder.

        Everything :meth:`log_view` carries plus the trace-context link
        and the span tree — the unit :func:`repro.obs.flightrecorder.
        render_waterfall` renders and debug bundles retain.
        """
        doc = self.log_view()
        doc["parent"] = self.parent
        doc["spans"] = self.spans
        return doc


class ServeTelemetry:
    """Shared aggregation point for every request the daemon serves."""

    def __init__(
        self,
        window_seconds: float = DEFAULT_WINDOW_SECONDS,
        windows: int = DEFAULT_WINDOWS,
        clock: Callable[[], float] = time.monotonic,
        wall_clock: Callable[[], float] = time.time,
        access_log: AccessLog | None = None,
        slow_log: SlowQueryLog | None = None,
    ) -> None:
        self.clock = clock
        self.wall_clock = wall_clock
        self.started = clock()
        self.started_unix = wall_clock()
        self.access_log = access_log if access_log is not None else AccessLog()
        self.slow_log = slow_log if slow_log is not None else SlowQueryLog()
        #: Per-op server latency (one histogram per op name) and
        #: per-phase spans (under ``phase:<name>``), windowed + cumulative.
        self.latency = WindowedHistogramSet(
            window_seconds=window_seconds, windows=windows, clock=clock
        )
        #: Per-outcome windowed counters (ok / backpressure / ...).
        self.outcomes = {
            outcome: WindowedCounter(
                window_seconds=window_seconds, windows=windows, clock=clock
            )
            for outcome in OUTCOMES
        }
        #: Per-op windowed request counters (rates per op).
        self._op_counts: dict[str, WindowedCounter] = {}
        self._window_seconds = window_seconds
        self._windows = windows
        self._lock = threading.Lock()
        #: Live connections: label -> {"requests": n, "<outcome>": n, ...}.
        self._connections: dict[str, dict[str, int]] = {}

    # -- connection lifecycle ------------------------------------------------

    def connection_opened(self, client: str) -> None:
        """Register a live connection under its label."""
        with self._lock:
            self._connections[client] = {"requests": 0}

    def connection_closed(self, client: str) -> None:
        """Drop a connection's live entry (its requests stay aggregated)."""
        with self._lock:
            self._connections.pop(client, None)

    # -- recording -----------------------------------------------------------

    def record(self, record: RequestRecord) -> None:
        """Fold one finished request into every aggregate and log."""
        if record.outcome not in self.outcomes:
            raise ValueError(f"unknown outcome {record.outcome!r}")
        server_s = record.server_s
        # The trace id rides along as the histogram bucket's exemplar, so
        # a p99 bucket in `repro top` names a concrete witness request.
        exemplar = record.trace or record.rid or None
        self.latency.observe(record.op, server_s, exemplar)
        for phase, seconds in record.phases.items():
            self.latency.observe(f"phase:{phase}", seconds, exemplar)
        self.outcomes[record.outcome].add()
        with self._lock:
            counter = self._op_counts.get(record.op)
            if counter is None:
                counter = WindowedCounter(
                    window_seconds=self._window_seconds,
                    windows=self._windows,
                    clock=self.clock,
                )
                self._op_counts[record.op] = counter
            connection = self._connections.get(record.client)
        counter.add()
        if connection is not None:
            with self._lock:
                connection["requests"] = connection.get("requests", 0) + 1
                connection[record.outcome] = connection.get(record.outcome, 0) + 1
        entry = record.log_view()
        self.access_log.log(entry)
        self.slow_log.observe(server_s, entry)

    # -- exposition ----------------------------------------------------------

    @property
    def uptime_seconds(self) -> float:
        """Seconds since this telemetry (the daemon) started."""
        return self.clock() - self.started

    def requests_total(self) -> int:
        """Requests recorded across every outcome (lifetime)."""
        return sum(counter.total for counter in self.outcomes.values())

    def snapshot(
        self, gauges: dict | None = None, storage: dict | None = None
    ) -> dict:
        """The ``metrics`` op's JSON document (windowed + cumulative).

        ``gauges`` carries the daemon's instantaneous values (in-flight,
        queue depth, connections) — they belong to the daemon, not the
        telemetry, and are merged in verbatim.  ``storage`` carries the
        storage-layer resilience counters (``io_retries``, injected
        ``fault_*`` tallies) summed over the shared stores, so transient
        I/O errors absorbed below the request layer stay visible.
        """
        per_op = {}
        for name in self.latency.names():
            histogram = self.latency.get(name)
            per_op[name] = histogram.to_dict()
            count = self._op_counts.get(name)
            if count is not None:
                per_op[name]["requests"] = count.to_dict()
        with self._lock:
            connections = {
                client: dict(counts)
                for client, counts in sorted(self._connections.items())
            }
        return {
            "uptime_seconds": self.uptime_seconds,
            "started_unix": self.started_unix,
            "window_seconds": self._window_seconds,
            "windows": self._windows,
            "outcomes": {
                outcome: counter.to_dict()
                for outcome, counter in self.outcomes.items()
            },
            "ops": per_op,
            "connections": connections,
            "gauges": dict(gauges or {}),
            "storage": dict(storage or {}),
            "access_log": self.access_log.to_dict(),
            "slow_queries": self.slow_log.to_dict(),
        }


def _fmt(value: float) -> str:
    """Prometheus sample value: repr keeps full float precision."""
    return repr(float(value))


def render_prometheus(snapshot: dict, prefix: str = "repro") -> str:
    """Prometheus text exposition of a :meth:`ServeTelemetry.snapshot`.

    Windowed percentiles render as summary-style quantile samples (the
    decaying view an alerting rule wants); lifetime counts render as
    counters; daemon gauges as gauges.
    """
    lines: list[str] = []

    def header(name: str, kind: str, help_text: str) -> None:
        lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {kind}")

    header(f"{prefix}_uptime_seconds", "gauge", "Daemon uptime.")
    lines.append(
        f"{prefix}_uptime_seconds {_fmt(snapshot['uptime_seconds'])}"
    )

    header(
        f"{prefix}_requests_total",
        "counter",
        "Requests by outcome (lifetime).",
    )
    for outcome, counter in sorted(snapshot["outcomes"].items()):
        lines.append(
            f'{prefix}_requests_total{{outcome="{outcome}"}} '
            f"{_fmt(counter['total'])}"
        )

    header(
        f"{prefix}_request_rate",
        "gauge",
        "Requests per second by outcome (windowed).",
    )
    for outcome, counter in sorted(snapshot["outcomes"].items()):
        lines.append(
            f'{prefix}_request_rate{{outcome="{outcome}"}} '
            f"{_fmt(counter['per_second'])}"
        )

    header(
        f"{prefix}_request_seconds",
        "summary",
        "Server-side request latency by op (windowed quantiles, "
        "lifetime count/sum).",
    )
    for op, data in sorted(snapshot["ops"].items()):
        windowed = data["windowed"]
        cumulative = data["cumulative"]
        for quantile, key in (("0.5", "p50"), ("0.9", "p90"), ("0.99", "p99")):
            lines.append(
                f'{prefix}_request_seconds{{op="{op}",quantile="{quantile}"}} '
                f"{_fmt(windowed[key])}"
            )
        lines.append(
            f'{prefix}_request_seconds_count{{op="{op}"}} '
            f"{_fmt(cumulative['count'])}"
        )
        lines.append(
            f'{prefix}_request_seconds_sum{{op="{op}"}} '
            f"{_fmt(cumulative['sum'])}"
        )

    gauges = snapshot.get("gauges", {})
    if gauges:
        header(f"{prefix}_gauge", "gauge", "Daemon instantaneous values.")
        for name, value in sorted(gauges.items()):
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            lines.append(f'{prefix}_gauge{{name="{name}"}} {_fmt(value)}')

    storage = snapshot.get("storage", {})
    if storage:
        header(
            f"{prefix}_storage_total",
            "counter",
            "Storage-layer resilience counters (retries, injected "
            "faults) over the shared stores (lifetime).",
        )
        for name, value in sorted(storage.items()):
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            lines.append(
                f'{prefix}_storage_total{{counter="{name}"}} {_fmt(value)}'
            )

    slow = snapshot.get("slow_queries", {})
    if slow:
        header(
            f"{prefix}_slow_queries_total",
            "counter",
            "Requests at or above the slow-query threshold (lifetime).",
        )
        lines.append(f"{prefix}_slow_queries_total {_fmt(slow['slow'])}")

    return "\n".join(lines) + "\n"
