"""Load generator for the graph query daemon.

Drives the Figure 11 query mix at a configurable concurrency: N client
threads, each with its own connection, each issuing its share of
requests *sequentially* (so concurrency == open connections, the way a
fleet of analysis frontends would drive the daemon).  The query for
client ``i``'s ``j``-th request is ``MIX[(i + j) % 6]`` — a fixed,
deterministic assignment, so two runs issue exactly the same multiset of
queries and the result digests are comparable across runs and against a
serial baseline.

Backpressure is part of the protocol, not an error: a ``backpressure``
reply is retried with linear backoff until the daemon admits the
request.  Every request therefore eventually succeeds (or fails hard),
which keeps ``requests_ok`` deterministic even when the daemon sheds
most of the offered load.

Every request carries a deterministic request id (``lg<client>-<j>``,
kept across backpressure retries of the same logical request) which the
daemon echoes in its reply's ``server`` section and writes to its access
and slow-query logs — so a load-generator request can be joined to its
server-side phase breakdown.  The echoed ``counters`` (the request's
session I/O delta) accumulate per query name into
:meth:`LoadResult.attribution`, the client-side half of the
attribution-conservation check.  From that section the generator also
collects the **server-measured** latency next to its own
client-measured one: the difference is network plus reply transit, and
under overload the ``queue_wait`` phase explains most of the gap between
a quiet daemon's latency and a saturated one's.

Requests also propagate a **trace context** (``lgt<client>-<j>``, again
stable across retries): the daemon adopts it as the request's trace id,
echoes it in the ``server`` section (the generator verifies the echo —
``traces_propagated`` in the summary) and files the request's full
span tree under it in the flight recorder, so ``repro trace`` can
explain any load-generator request by its trace id.
"""

from __future__ import annotations

import socket
import threading
import time
from dataclasses import dataclass, field

from repro.errors import ServeError
from repro.obs.histogram import LatencyHistogram
from repro.query.workload import PAPER_QUERIES
from repro.serve import protocol

#: The Figure 11 mix, in paper order.
DEFAULT_MIX = tuple(name for name, _fn in PAPER_QUERIES)

#: Base backoff after a backpressure reply (grows linearly per retry).
BACKPRESSURE_BACKOFF_S = 0.002
#: Hard cap on backpressure retries per request — the load generator
#: gives up (and reports a failure) rather than spinning forever against
#: a daemon that never admits anything.
MAX_BACKPRESSURE_RETRIES = 10_000


class ServeClient:
    """Blocking-socket client speaking the daemon's frame protocol."""

    def __init__(self, host: str, port: int, timeout: float = 60.0) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._next_id = 0

    def request(self, op: str, **fields):
        """Send one request; returns the raw reply frame."""
        request_id = self._next_id
        self._next_id += 1
        protocol.send_frame(
            self._sock, {"id": request_id, "op": op, **fields}
        )
        reply = protocol.recv_frame(self._sock)
        if reply is None:
            raise ServeError("daemon closed the connection mid-request")
        return reply

    def request_ok(self, op: str, **fields):
        """Send one request; returns ``result`` or raises on any error."""
        reply = self.request(op, **fields)
        if not reply.get("ok"):
            error = reply.get("error", {})
            raise ServeError(
                f"{op} failed: {error.get('type')}: {error.get('message')}"
            )
        return reply["result"]

    def ping(self) -> bool:
        """Round-trip liveness check."""
        return bool(self.request_ok("ping").get("pong"))

    def stats(self) -> dict:
        """The daemon's stats view for this connection."""
        return self.request_ok("stats")

    def metrics(self, fmt: str | None = None) -> dict:
        """The daemon's metrics snapshot (JSON or Prometheus text)."""
        fields = {"format": fmt} if fmt is not None else {}
        return self.request_ok("metrics", **fields)

    def debug(self) -> dict:
        """The daemon's flight-recorder dump (traces + stats + config)."""
        return self.request_ok("debug")

    def close(self) -> None:
        """Close the connection (ends the daemon-side session)."""
        self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


@dataclass
class ClientResult:
    """One load-generator client's outcome."""

    client_index: int
    requests_ok: int = 0
    requests_failed: int = 0
    shed_retries: int = 0
    latencies_s: list[float] = field(default_factory=list)
    #: Server-measured latency per successful request (sum of the phase
    #: spans echoed in the reply's ``server`` section), aligned with
    #: :attr:`latencies_s`.
    server_latencies_s: list[float] = field(default_factory=list)
    #: Server-measured queue-wait per successful request.
    queue_waits_s: list[float] = field(default_factory=list)
    #: query name -> digest(s) observed (must be a singleton per name).
    digests: dict[str, set[str]] = field(default_factory=dict)
    #: The daemon-side per-client io stats (final ``stats`` request).
    io_stats: dict = field(default_factory=dict)
    #: query name -> summed server-attributed counters (the per-request
    #: session deltas echoed in each ok reply's ``server.counters``).
    op_counters: dict[str, dict[str, int]] = field(default_factory=dict)
    #: False if any reply failed to echo the propagated trace id.
    traces_echoed: bool = True
    error: str | None = None


@dataclass
class LoadResult:
    """Aggregated load-generator outcome."""

    concurrency: int
    requests_per_client: int
    wall_seconds: float
    clients: list[ClientResult] = field(default_factory=list)

    @property
    def requests_ok(self) -> int:
        """Successfully answered query requests."""
        return sum(client.requests_ok for client in self.clients)

    @property
    def requests_failed(self) -> int:
        """Query requests that failed hard (non-backpressure)."""
        return sum(client.requests_failed for client in self.clients)

    @property
    def shed_retries(self) -> int:
        """Backpressure replies received (each was retried)."""
        return sum(client.shed_retries for client in self.clients)

    @property
    def throughput_qps(self) -> float:
        """Answered queries per wall-clock second."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.requests_ok / self.wall_seconds

    def latency_histogram(self) -> LatencyHistogram:
        """Distribution over every successful request's latency."""
        histogram = LatencyHistogram()
        for client in self.clients:
            histogram.record_many(client.latencies_s)
        return histogram

    def server_latency_histogram(self) -> LatencyHistogram:
        """Distribution over the server-measured latencies."""
        histogram = LatencyHistogram()
        for client in self.clients:
            histogram.record_many(client.server_latencies_s)
        return histogram

    def queue_wait_histogram(self) -> LatencyHistogram:
        """Distribution over the server-measured queue waits."""
        histogram = LatencyHistogram()
        for client in self.clients:
            histogram.record_many(client.queue_waits_s)
        return histogram

    def summary(self) -> dict:
        """Client-side summary document (the ``repro loadgen --json`` body).

        Percentiles use the serialized placeholder convention: 0.0 with
        ``count`` 0 when nothing succeeded.
        """
        client_hist = self.latency_histogram()
        server_hist = self.server_latency_histogram()
        queue_hist = self.queue_wait_histogram()

        def _ms(histogram: LatencyHistogram, accessor: str) -> float:
            if histogram.count == 0:
                return 0.0
            return getattr(histogram, accessor) * 1000.0

        return {
            "concurrency": self.concurrency,
            "requests_per_client": self.requests_per_client,
            "requests_sent": self.concurrency * self.requests_per_client,
            "requests_ok": self.requests_ok,
            "requests_failed": self.requests_failed,
            "backpressure_retries": self.shed_retries,
            "throughput_qps": self.throughput_qps,
            "consistent": self.consistent(),
            "traces_propagated": self.traces_propagated(),
            "client_latency": {
                "latency_ms_p50": _ms(client_hist, "p50"),
                "latency_ms_p90": _ms(client_hist, "p90"),
                "latency_ms_p99": _ms(client_hist, "p99"),
                "latency_ms_max": client_hist.max * 1000.0,
            },
            # Server-measured spend on the same requests; the p50 gap to
            # client_latency is network + reply transit, and queue_wait
            # is the admission-queue share of the server time.
            "server_latency": {
                "latency_ms_p50": _ms(server_hist, "p50"),
                "latency_ms_p99": _ms(server_hist, "p99"),
                "queue_wait_ms_p50": _ms(queue_hist, "p50"),
                "queue_wait_ms_p99": _ms(queue_hist, "p99"),
            },
            "errors": [
                client.error for client in self.clients if client.error
            ],
        }

    def digests(self) -> dict[str, set[str]]:
        """query name -> all digests observed across clients."""
        merged: dict[str, set[str]] = {}
        for client in self.clients:
            for name, digests in client.digests.items():
                merged.setdefault(name, set()).update(digests)
        return merged

    def consistent(self) -> bool:
        """True when every query name produced exactly one digest."""
        return all(len(digests) == 1 for digests in self.digests().values())

    def traces_propagated(self) -> bool:
        """True when every reply echoed its propagated trace id."""
        return all(client.traces_echoed for client in self.clients)

    def attribution(self) -> dict[str, dict[str, int]]:
        """query name -> server-attributed counter sums, over all clients.

        Each ok reply's ``server.counters`` section is that request's
        exact session counter delta, so these sums are the per-op share
        of the I/O the whole run caused — the serve benchmark checks
        they reproduce the session totals bit-for-bit.
        """
        merged: dict[str, dict[str, int]] = {}
        for client in self.clients:
            for name, counters in client.op_counters.items():
                sums = merged.setdefault(name, {})
                for counter, value in counters.items():
                    sums[counter] = sums.get(counter, 0) + value
        return merged

    def attributed_totals(self) -> dict[str, int]:
        """Server-attributed counters summed over every op."""
        totals: dict[str, int] = {}
        for counters in self.attribution().values():
            for counter, value in counters.items():
                totals[counter] = totals.get(counter, 0) + value
        return totals


def _client_worker(
    host: str,
    port: int,
    client_index: int,
    requests_per_client: int,
    mix: tuple[str, ...],
    barrier: threading.Barrier,
    result: ClientResult,
) -> None:
    try:
        client = ServeClient(host, port)
    except OSError as exc:
        result.error = f"connect failed: {exc}"
        barrier.wait()
        return
    try:
        barrier.wait()
        for j in range(requests_per_client):
            name = mix[(client_index + j) % len(mix)]
            rid = f"lg{client_index}-{j}"
            trace_id = f"lgt{client_index}-{j}"
            retries = 0
            while True:
                start = time.perf_counter()
                reply = client.request(
                    "query", name=name, rid=rid, trace={"id": trace_id}
                )
                elapsed = time.perf_counter() - start
                if reply.get("ok"):
                    result.requests_ok += 1
                    result.latencies_s.append(elapsed)
                    server = reply.get("server", {})
                    if server.get("trace") != trace_id:
                        result.traces_echoed = False
                    phases_us = server.get("phases_us", {})
                    result.server_latencies_s.append(
                        sum(phases_us.values()) / 1e6
                    )
                    result.queue_waits_s.append(
                        phases_us.get("queue_wait", 0) / 1e6
                    )
                    sums = result.op_counters.setdefault(name, {})
                    for counter, value in server.get("counters", {}).items():
                        sums[counter] = sums.get(counter, 0) + int(value)
                    payload = reply["result"]
                    result.digests.setdefault(name, set()).add(
                        payload["digest"]
                    )
                    break
                error = reply.get("error", {})
                if error.get("type") == protocol.ERROR_BACKPRESSURE:
                    result.shed_retries += 1
                    retries += 1
                    if retries > MAX_BACKPRESSURE_RETRIES:
                        result.requests_failed += 1
                        result.error = "backpressure retry limit exceeded"
                        break
                    time.sleep(BACKPRESSURE_BACKOFF_S * min(retries, 50))
                    continue
                result.requests_failed += 1
                result.error = (
                    f"{name}: {error.get('type')}: {error.get('message')}"
                )
                break
        result.io_stats = client.stats().get("client", {})
    except (ServeError, OSError) as exc:
        result.error = str(exc)
    finally:
        client.close()


def run_load(
    host: str,
    port: int,
    concurrency: int = 8,
    requests_per_client: int = 12,
    mix: tuple[str, ...] = DEFAULT_MIX,
) -> LoadResult:
    """Drive the daemon with ``concurrency`` clients; blocks until done.

    All clients connect first, then start issuing requests together (a
    barrier), so the daemon sees the full offered concurrency from the
    first request on.
    """
    if concurrency < 1:
        raise ServeError(f"concurrency must be >= 1, got {concurrency}")
    results = [ClientResult(client_index=i) for i in range(concurrency)]
    # +1: the main thread releases the barrier, so the wall clock starts
    # when every client is connected and ready.
    barrier = threading.Barrier(concurrency + 1)
    threads = [
        threading.Thread(
            target=_client_worker,
            args=(host, port, i, requests_per_client, mix, barrier, results[i]),
            name=f"loadgen-{i}",
        )
        for i in range(concurrency)
    ]
    for thread in threads:
        thread.start()
    barrier.wait()
    start = time.perf_counter()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - start
    return LoadResult(
        concurrency=concurrency,
        requests_per_client=requests_per_client,
        wall_seconds=wall,
        clients=results,
    )
