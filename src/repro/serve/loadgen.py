"""Load generator for the graph query daemon.

Drives the Figure 11 query mix at a configurable concurrency: N client
threads, each with its own connection, each issuing its share of
requests *sequentially* (so concurrency == open connections, the way a
fleet of analysis frontends would drive the daemon).  The query for
client ``i``'s ``j``-th request is ``MIX[(i + j) % 6]`` — a fixed,
deterministic assignment, so two runs issue exactly the same multiset of
queries and the result digests are comparable across runs and against a
serial baseline.

Backpressure is part of the protocol, not an error: a ``backpressure``
reply is retried under the shared :class:`~repro.serve.retry.RetryPolicy`
(seeded decorrelated jitter, per-request attempt cap, optional shared
retry budget) until the daemon admits the request.  Every request
therefore eventually succeeds (or fails hard), which keeps
``requests_ok`` deterministic even when the daemon sheds most of the
offered load.

**Deadlines.**  ``run_load(..., deadline_ms=250, deadline_every=3)``
attaches a deadline to every third logical request; the daemon answers
each such request either normally or with a typed ``timeout`` reply.
Timed-out requests are *not* retried (the work was abandoned
server-side) and are accounted separately (``requests_timeout``).  The
generator checks the contract from the client side: a deadline request's
final reply must arrive within ``deadline + DEADLINE_GRACE_S`` — any
later reply is a ``deadline_violation`` and ``deadline_honored`` in the
summary flips false.

**Degradation.**  A reply served from quarantined regions comes back
``ok`` on the wire but with ``server.outcome == "degraded"``; the
generator counts it under ``requests_degraded`` (not ``requests_ok``)
and keeps its digest out of the consistency check, since a degraded
answer is by definition not the whole answer.

Every request carries a deterministic request id (``lg<client>-<j>``,
kept across backpressure retries of the same logical request) which the
daemon echoes in its reply's ``server`` section and writes to its access
and slow-query logs — so a load-generator request can be joined to its
server-side phase breakdown.  The echoed ``counters`` (the request's
session I/O delta) accumulate per query name into
:meth:`LoadResult.attribution`, the client-side half of the
attribution-conservation check.  From that section the generator also
collects the **server-measured** latency next to its own
client-measured one: the difference is network plus reply transit, and
under overload the ``queue_wait`` phase explains most of the gap between
a quiet daemon's latency and a saturated one's.

Requests also propagate a **trace context** (``lgt<client>-<j>``, again
stable across retries): the daemon adopts it as the request's trace id,
echoes it in the ``server`` section (the generator verifies the echo —
``traces_propagated`` in the summary) and files the request's full
span tree under it in the flight recorder, so ``repro trace`` can
explain any load-generator request by its trace id.
"""

from __future__ import annotations

import socket
import threading
import time
from dataclasses import dataclass, field

from repro.errors import ServeError
from repro.obs.histogram import LatencyHistogram
from repro.query.workload import PAPER_QUERIES
from repro.serve import protocol
from repro.serve.retry import RetryBudget, RetryPolicy

#: The Figure 11 mix, in paper order.
DEFAULT_MIX = tuple(name for name, _fn in PAPER_QUERIES)

#: Client-side slack on the deadline contract: the daemon promises the
#: typed ``timeout`` reply within one scheduling quantum of the
#: deadline, and the reply still has to cross the loopback.  Half a
#: second absorbs a CI runner's worst scheduling hiccup while staying
#: far below any latency that would mean the contract is actually
#: broken.
DEADLINE_GRACE_S = 0.5

#: Stride between per-client retry-jitter seeds (a prime, so seeds
#: never collide across any realistic concurrency).
_RETRY_SEED_STRIDE = 7919


class ServeClient:
    """Blocking-socket client speaking the daemon's frame protocol."""

    def __init__(self, host: str, port: int, timeout: float = 60.0) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._next_id = 0

    @classmethod
    def connect(
        cls,
        host: str,
        port: int,
        policy: RetryPolicy | None = None,
        timeout: float = 60.0,
    ) -> "ServeClient":
        """Connect, retrying refused/reset connects under ``policy``.

        With no policy this is a single attempt (exactly
        ``ServeClient(host, port)``).  With one, each ``OSError`` burns
        one schedule slot and sleeps its jittered delay — the path
        ``repro top`` and ``repro trace`` use to ride out a daemon
        restart.
        """
        schedule = policy.for_request() if policy is not None else None
        while True:
            try:
                return cls(host, port, timeout=timeout)
            except OSError as exc:
                delay = schedule.next_delay() if schedule is not None else None
                if delay is None:
                    raise ServeError(
                        f"connect to {host}:{port} failed: {exc}"
                    ) from exc
                time.sleep(delay)

    def request(self, op: str, **fields):
        """Send one request; returns the raw reply frame."""
        request_id = self._next_id
        self._next_id += 1
        protocol.send_frame(
            self._sock, {"id": request_id, "op": op, **fields}
        )
        reply = protocol.recv_frame(self._sock)
        if reply is None:
            raise ServeError("daemon closed the connection mid-request")
        return reply

    def request_ok(self, op: str, **fields):
        """Send one request; returns ``result`` or raises on any error."""
        reply = self.request(op, **fields)
        if not reply.get("ok"):
            error = reply.get("error", {})
            raise ServeError(
                f"{op} failed: {error.get('type')}: {error.get('message')}"
            )
        return reply["result"]

    def ping(self) -> bool:
        """Round-trip liveness check."""
        return bool(self.request_ok("ping").get("pong"))

    def stats(self) -> dict:
        """The daemon's stats view for this connection."""
        return self.request_ok("stats")

    def metrics(self, fmt: str | None = None) -> dict:
        """The daemon's metrics snapshot (JSON or Prometheus text)."""
        fields = {"format": fmt} if fmt is not None else {}
        return self.request_ok("metrics", **fields)

    def debug(self) -> dict:
        """The daemon's flight-recorder dump (traces + stats + config)."""
        return self.request_ok("debug")

    def swap(self, workdir: str) -> dict:
        """Hot-swap the daemon onto the store pair under ``workdir``."""
        return self.request_ok("swap", workdir=workdir)

    def add_edges(self, edges) -> dict:
        """Durably add edges (``[[source, target], ...]``) to the graph.

        Non-idempotent: a lost reply must not be blind-retried (the op
        is deliberately outside the retry policy's idempotent set).
        """
        return self.request_ok("add_edges", edges=list(edges))

    def remove_edges(self, edges) -> dict:
        """Durably remove edges from the graph (non-idempotent)."""
        return self.request_ok("remove_edges", edges=list(edges))

    def compact(self, workdir: str) -> dict:
        """Fold the WAL into a fresh build under ``workdir`` and swap to it."""
        return self.request_ok("compact", workdir=workdir)

    def close(self) -> None:
        """Close the connection (ends the daemon-side session)."""
        self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


@dataclass
class ClientResult:
    """One load-generator client's outcome."""

    client_index: int
    requests_ok: int = 0
    requests_failed: int = 0
    #: Answered, but served from quarantined regions (``degraded``).
    requests_degraded: int = 0
    #: Typed ``timeout`` replies (the deadline expired server-side).
    requests_timeout: int = 0
    shed_retries: int = 0
    #: Logical requests that carried a ``deadline_ms``.
    deadline_requests: int = 0
    #: Deadline requests whose final reply broke the client-side
    #: contract (later than deadline + :data:`DEADLINE_GRACE_S`).
    deadline_violations: int = 0
    latencies_s: list[float] = field(default_factory=list)
    #: Server-measured latency per successful request (sum of the phase
    #: spans echoed in the reply's ``server`` section), aligned with
    #: :attr:`latencies_s`.
    server_latencies_s: list[float] = field(default_factory=list)
    #: Server-measured queue-wait per successful request.
    queue_waits_s: list[float] = field(default_factory=list)
    #: query name -> digest(s) observed (must be a singleton per name).
    digests: dict[str, set[str]] = field(default_factory=dict)
    #: The daemon-side per-client io stats (final ``stats`` request).
    io_stats: dict = field(default_factory=dict)
    #: query name -> summed server-attributed counters (the per-request
    #: session deltas echoed in each ok reply's ``server.counters``).
    op_counters: dict[str, dict[str, int]] = field(default_factory=dict)
    #: False if any reply failed to echo the propagated trace id.
    traces_echoed: bool = True
    error: str | None = None


@dataclass
class LoadResult:
    """Aggregated load-generator outcome."""

    concurrency: int
    requests_per_client: int
    wall_seconds: float
    clients: list[ClientResult] = field(default_factory=list)

    @property
    def requests_ok(self) -> int:
        """Successfully answered query requests (served whole)."""
        return sum(client.requests_ok for client in self.clients)

    @property
    def requests_failed(self) -> int:
        """Query requests that failed hard (non-backpressure)."""
        return sum(client.requests_failed for client in self.clients)

    @property
    def requests_degraded(self) -> int:
        """Answered requests served from quarantined regions."""
        return sum(client.requests_degraded for client in self.clients)

    @property
    def requests_timeout(self) -> int:
        """Requests that came back as typed ``timeout`` replies."""
        return sum(client.requests_timeout for client in self.clients)

    @property
    def shed_retries(self) -> int:
        """Backpressure replies received (each was retried)."""
        return sum(client.shed_retries for client in self.clients)

    @property
    def deadline_requests(self) -> int:
        """Logical requests that carried a deadline."""
        return sum(client.deadline_requests for client in self.clients)

    @property
    def deadline_violations(self) -> int:
        """Deadline requests answered later than deadline + grace."""
        return sum(client.deadline_violations for client in self.clients)

    def deadline_honored(self) -> bool:
        """True when no deadline request broke the client-side contract."""
        return self.deadline_violations == 0

    @property
    def throughput_qps(self) -> float:
        """Answered queries per wall-clock second."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.requests_ok / self.wall_seconds

    def latency_histogram(self) -> LatencyHistogram:
        """Distribution over every successful request's latency."""
        histogram = LatencyHistogram()
        for client in self.clients:
            histogram.record_many(client.latencies_s)
        return histogram

    def server_latency_histogram(self) -> LatencyHistogram:
        """Distribution over the server-measured latencies."""
        histogram = LatencyHistogram()
        for client in self.clients:
            histogram.record_many(client.server_latencies_s)
        return histogram

    def queue_wait_histogram(self) -> LatencyHistogram:
        """Distribution over the server-measured queue waits."""
        histogram = LatencyHistogram()
        for client in self.clients:
            histogram.record_many(client.queue_waits_s)
        return histogram

    def summary(self) -> dict:
        """Client-side summary document (the ``repro loadgen --json`` body).

        Percentiles use the serialized placeholder convention: 0.0 with
        ``count`` 0 when nothing succeeded.
        """
        client_hist = self.latency_histogram()
        server_hist = self.server_latency_histogram()
        queue_hist = self.queue_wait_histogram()

        def _ms(histogram: LatencyHistogram, accessor: str) -> float:
            if histogram.count == 0:
                return 0.0
            return getattr(histogram, accessor) * 1000.0

        return {
            "concurrency": self.concurrency,
            "requests_per_client": self.requests_per_client,
            "requests_sent": self.concurrency * self.requests_per_client,
            "requests_ok": self.requests_ok,
            "requests_failed": self.requests_failed,
            "requests_degraded": self.requests_degraded,
            "requests_timeout": self.requests_timeout,
            "backpressure_retries": self.shed_retries,
            "deadline_requests": self.deadline_requests,
            "deadline_violations": self.deadline_violations,
            "deadline_honored": self.deadline_honored(),
            "throughput_qps": self.throughput_qps,
            "consistent": self.consistent(),
            "traces_propagated": self.traces_propagated(),
            "client_latency": {
                "latency_ms_p50": _ms(client_hist, "p50"),
                "latency_ms_p90": _ms(client_hist, "p90"),
                "latency_ms_p99": _ms(client_hist, "p99"),
                "latency_ms_max": client_hist.max * 1000.0,
            },
            # Server-measured spend on the same requests; the p50 gap to
            # client_latency is network + reply transit, and queue_wait
            # is the admission-queue share of the server time.
            "server_latency": {
                "latency_ms_p50": _ms(server_hist, "p50"),
                "latency_ms_p99": _ms(server_hist, "p99"),
                "queue_wait_ms_p50": _ms(queue_hist, "p50"),
                "queue_wait_ms_p99": _ms(queue_hist, "p99"),
            },
            "errors": [
                client.error for client in self.clients if client.error
            ],
        }

    def digests(self) -> dict[str, set[str]]:
        """query name -> all digests observed across clients."""
        merged: dict[str, set[str]] = {}
        for client in self.clients:
            for name, digests in client.digests.items():
                merged.setdefault(name, set()).update(digests)
        return merged

    def consistent(self) -> bool:
        """True when every query name produced exactly one digest."""
        return all(len(digests) == 1 for digests in self.digests().values())

    def traces_propagated(self) -> bool:
        """True when every reply echoed its propagated trace id."""
        return all(client.traces_echoed for client in self.clients)

    def attribution(self) -> dict[str, dict[str, int]]:
        """query name -> server-attributed counter sums, over all clients.

        Each answered reply's ``server.counters`` section is that
        request's exact session counter delta, so these sums are the
        per-op share of the I/O the whole run caused — the serve
        benchmark checks they reproduce the session totals bit-for-bit.
        """
        merged: dict[str, dict[str, int]] = {}
        for client in self.clients:
            for name, counters in client.op_counters.items():
                sums = merged.setdefault(name, {})
                for counter, value in counters.items():
                    sums[counter] = sums.get(counter, 0) + value
        return merged

    def attributed_totals(self) -> dict[str, int]:
        """Server-attributed counters summed over every op."""
        totals: dict[str, int] = {}
        for counters in self.attribution().values():
            for counter, value in counters.items():
                totals[counter] = totals.get(counter, 0) + value
        return totals


def _client_worker(
    host: str,
    port: int,
    client_index: int,
    requests_per_client: int,
    mix: tuple[str, ...],
    barrier: threading.Barrier,
    result: ClientResult,
    policy: RetryPolicy,
    deadline_ms: float | None,
    deadline_every: int,
) -> None:
    try:
        client = ServeClient(host, port)
    except OSError as exc:
        result.error = f"connect failed: {exc}"
        barrier.wait()
        return
    try:
        barrier.wait()
        for j in range(requests_per_client):
            name = mix[(client_index + j) % len(mix)]
            rid = f"lg{client_index}-{j}"
            trace_id = f"lgt{client_index}-{j}"
            fields: dict = {"name": name, "rid": rid, "trace": {"id": trace_id}}
            # Deterministic deadline placement: with deadline_every=k,
            # every k-th logical request (in the same (i + j) phase the
            # mix uses) carries the deadline; with k<=0, all do.
            with_deadline = deadline_ms is not None and (
                deadline_every <= 0
                or (client_index + j) % deadline_every == 0
            )
            if with_deadline:
                fields["deadline_ms"] = deadline_ms
                result.deadline_requests += 1
            schedule = policy.for_request()
            while True:
                start = time.perf_counter()
                reply = client.request("query", **fields)
                elapsed = time.perf_counter() - start
                error = {} if reply.get("ok") else reply.get("error", {})
                if error.get("type") == protocol.ERROR_BACKPRESSURE:
                    result.shed_retries += 1
                    delay = schedule.next_delay()
                    if delay is None:
                        result.requests_failed += 1
                        result.error = "backpressure retry budget exhausted"
                        break
                    time.sleep(delay)
                    continue
                # Any other reply terminates the logical request; check
                # the deadline contract on it (per attempt, because the
                # daemon anchors the deadline at its accept boundary).
                if with_deadline and elapsed > (
                    deadline_ms / 1000.0 + DEADLINE_GRACE_S
                ):
                    result.deadline_violations += 1
                server = reply.get("server", {})
                if server.get("trace") != trace_id:
                    result.traces_echoed = False
                if not reply.get("ok"):
                    if error.get("type") == protocol.ERROR_TIMEOUT:
                        # The daemon abandoned the work; re-sending
                        # would double-spend the worker pool.
                        result.requests_timeout += 1
                    else:
                        result.requests_failed += 1
                        result.error = (
                            f"{name}: {error.get('type')}: "
                            f"{error.get('message')}"
                        )
                    break
                degraded = server.get("outcome") == "degraded"
                if degraded:
                    result.requests_degraded += 1
                else:
                    result.requests_ok += 1
                result.latencies_s.append(elapsed)
                phases_us = server.get("phases_us", {})
                result.server_latencies_s.append(
                    sum(phases_us.values()) / 1e6
                )
                result.queue_waits_s.append(
                    phases_us.get("queue_wait", 0) / 1e6
                )
                sums = result.op_counters.setdefault(name, {})
                for counter, value in server.get("counters", {}).items():
                    sums[counter] = sums.get(counter, 0) + int(value)
                if not degraded:
                    # A degraded answer is not the whole answer — its
                    # digest must not enter the consistency check.
                    payload = reply["result"]
                    result.digests.setdefault(name, set()).add(
                        payload["digest"]
                    )
                break
        result.io_stats = client.stats().get("client", {})
    except (ServeError, OSError) as exc:
        result.error = str(exc)
    finally:
        client.close()


def run_load(
    host: str,
    port: int,
    concurrency: int = 8,
    requests_per_client: int = 12,
    mix: tuple[str, ...] = DEFAULT_MIX,
    deadline_ms: float | None = None,
    deadline_every: int = 0,
    retry_seed: int = 0,
    retry_budget: int | RetryBudget | None = None,
) -> LoadResult:
    """Drive the daemon with ``concurrency`` clients; blocks until done.

    All clients connect first, then start issuing requests together (a
    barrier), so the daemon sees the full offered concurrency from the
    first request on.  Each client retries backpressure under its own
    seeded :class:`~repro.serve.retry.RetryPolicy` (seed ``retry_seed +
    index * stride``, so jitter streams are disjoint but reproducible);
    ``retry_budget`` (a token count or a prebuilt
    :class:`~repro.serve.retry.RetryBudget`) is shared across all of
    them and bounds the run's total retry volume.
    """
    if concurrency < 1:
        raise ServeError(f"concurrency must be >= 1, got {concurrency}")
    if deadline_ms is not None and deadline_ms <= 0:
        raise ServeError(f"deadline_ms must be > 0, got {deadline_ms}")
    if isinstance(retry_budget, int):
        retry_budget = RetryBudget(retry_budget)
    policies = [
        RetryPolicy(
            seed=retry_seed + i * _RETRY_SEED_STRIDE, budget=retry_budget
        )
        for i in range(concurrency)
    ]
    results = [ClientResult(client_index=i) for i in range(concurrency)]
    # +1: the main thread releases the barrier, so the wall clock starts
    # when every client is connected and ready.
    barrier = threading.Barrier(concurrency + 1)
    threads = [
        threading.Thread(
            target=_client_worker,
            args=(
                host,
                port,
                i,
                requests_per_client,
                mix,
                barrier,
                results[i],
                policies[i],
                deadline_ms,
                deadline_every,
            ),
            name=f"loadgen-{i}",
        )
        for i in range(concurrency)
    ]
    for thread in threads:
        thread.start()
    barrier.wait()
    start = time.perf_counter()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - start
    return LoadResult(
        concurrency=concurrency,
        requests_per_client=requests_per_client,
        wall_seconds=wall,
        clients=results,
    )
