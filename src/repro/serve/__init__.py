"""Concurrent query serving: daemon, wire protocol, load generator.

The serving subsystem turns the single-caller query stack into a
multi-client daemon: one shared S-Node store pair (lock-striped buffer
pool, pinned supernode graphs) serves any number of TCP clients, each
with its own metrics session, behind explicit admission control.

* :mod:`repro.serve.protocol` — length-prefixed JSON frames, canonical
  payload encoding, result digests;
* :mod:`repro.serve.daemon` — :class:`~repro.serve.daemon.ServeContext`
  (shared stores + indexes), :class:`~repro.serve.daemon.GraphQueryDaemon`
  (asyncio frontend, worker pool, backpressure) and
  :class:`~repro.serve.daemon.DaemonHandle` (own-thread lifecycle);
* :mod:`repro.serve.loadgen` — :class:`~repro.serve.loadgen.ServeClient`
  and :func:`~repro.serve.loadgen.run_load`, the Figure 11 mix driver
  behind ``repro loadgen`` and the ``serve`` benchmark;
* :mod:`repro.serve.retry` — :class:`~repro.serve.retry.RetryPolicy`,
  the seeded decorrelated-jitter backoff (with shared
  :class:`~repro.serve.retry.RetryBudget` and idempotency gating)
  every daemon client retries through;
* :mod:`repro.serve.telemetry` — per-request lifecycle records
  (:class:`~repro.serve.telemetry.RequestRecord`) aggregated by
  :class:`~repro.serve.telemetry.ServeTelemetry` into windowed
  histograms, outcome rates, access/slow-query logs and the
  ``metrics`` op's JSON + Prometheus expositions.
"""

from repro.serve.daemon import (
    DaemonHandle,
    GraphQueryDaemon,
    ServeContext,
)
from repro.serve.loadgen import LoadResult, ServeClient, run_load
from repro.serve.retry import RetryBudget, RetryPolicy
from repro.serve.telemetry import (
    RequestRecord,
    ServeTelemetry,
    render_prometheus,
)

__all__ = [
    "DaemonHandle",
    "GraphQueryDaemon",
    "LoadResult",
    "RequestRecord",
    "RetryBudget",
    "RetryPolicy",
    "ServeClient",
    "ServeContext",
    "ServeTelemetry",
    "render_prometheus",
    "run_load",
]
