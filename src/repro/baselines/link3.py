"""The Connectivity Server "Link3" scheme (Randall et al., DCC 2002).

Reimplemented from the published description:

* pages are renumbered in **URL-lexicographic order**, so most links point
  to nearby ids (locality) and consecutive pages have similar lists;
* an adjacency list may be **delta-encoded against one of the previous
  eight lists**: the row header stores the reference offset (0 = none),
  followed by a deletion bit vector over the referenced list and the added
  entries;
* added entries / plain rows are stored as **nybble-coded gaps**, the
  first relative to the source id (zig-zag signed), the rest ascending;
* rows are grouped into fixed-count **blocks**; each block restarts the
  reference window, carries a byte offset in a directory, and is the unit
  of disk transfer and of buffer-manager caching.

The block directory and id maps are held in memory (they are small); block
payloads live in a single file read through the shared storage engine (a
counted device behind a :class:`repro.storage.bufferpool.BufferPool` of
raw blocks), so the scheme runs both fully in-memory (Table 2) and under
a bounded buffer against disk (Figure 11) with the same metered cost
model as every other representation.
"""

from __future__ import annotations

from collections.abc import Iterator
from pathlib import Path

from repro.baselines.base import GraphRepresentation
from repro.errors import CorruptionError, GraphError
from repro.graph.digraph import Digraph
from repro.storage import integrity
from repro.storage.atomic import BuildTransaction
from repro.storage.bufferpool import BufferPool
from repro.storage.device import CountedFile
from repro.util.bitio import BitReader, BitWriter
from repro.util.deltacodec import (
    apply_delta,
    decode_delta_row,
    decode_gap_row,
    delta_against,
    encode_delta_row,
    encode_gap_row,
)
from repro.util.varint import decode_nibble, encode_nibble
from repro.webdata.corpus import Repository
from repro.webdata.urls import lexicographic_key

DEFAULT_ROWS_PER_BLOCK = 256
DEFAULT_WINDOW = 8
#: The Link Database bounds how many references may chain before a plain
#: row is forced, keeping random access fast; 4 is in the range Randall et
#: al. discuss.
DEFAULT_MAX_CHAIN = 4
DEFAULT_BUFFER_BYTES = 8 * 1024 * 1024

_ROW_COST = 4
_EDGE_COST = 8

# The row codecs moved to repro.util.deltacodec (the WAL and delta
# overlay reuse them); the output here is byte-identical.
_encode_plain = encode_gap_row
_decode_plain = decode_gap_row


class Link3Representation(GraphRepresentation):
    """Block-structured Link3 adjacency storage over one Web graph."""

    name = "link3"

    def __init__(
        self,
        repository: Repository,
        root: Path | str,
        graph: Digraph | None = None,
        rows_per_block: int = DEFAULT_ROWS_PER_BLOCK,
        window: int = DEFAULT_WINDOW,
        max_chain: int = DEFAULT_MAX_CHAIN,
        buffer_bytes: int = DEFAULT_BUFFER_BYTES,
    ) -> None:
        self._root = Path(root)
        self._root.mkdir(parents=True, exist_ok=True)
        self._rows_per_block = rows_per_block
        self._window = window
        self._max_chain = max_chain
        graph = graph if graph is not None else repository.graph
        n = graph.num_vertices
        if n != repository.num_pages:
            raise GraphError("graph and repository disagree on page count")
        # URL-lexicographic renumbering.
        order = sorted(
            range(n), key=lambda p: lexicographic_key(repository.page(p).url)
        )
        self._new_to_old = order
        self._old_to_new = [0] * n
        for new, old in enumerate(order):
            self._old_to_new[old] = new
        self._num_pages = n
        self._num_edges = graph.num_edges
        self._block_offsets: list[int] = []
        # Per-node bit offset of each row inside its block's bit stream —
        # the "starts" structure of the real Link Database, which makes
        # random access decode only the row and its reference chain rather
        # than a whole block.  Its (delta-compressed) size is part of the
        # published bits/link figures, and of ours.
        self._row_bit_offsets: list[int] = []
        self._block_checksums: list[int] = []
        self._write_blocks(graph)
        self._file = CountedFile(self._payload_path, registry=self.metrics)
        self._pool = BufferPool(buffer_bytes, registry=self.metrics)

    @property
    def _payload_path(self) -> Path:
        return self._root / "link3.dat"

    @property
    def _sidecar_path(self) -> Path:
        return integrity.sidecar_path(self._payload_path)

    # -- build ----------------------------------------------------------------

    def _write_blocks(self, graph: Digraph) -> None:
        payload = bytearray()
        self._block_offsets = []
        block_rows: list[list[int]] = []
        block_depths: list[int] = []  # reference-chain depth of each row
        writer = BitWriter()

        def flush() -> None:
            nonlocal writer
            if not block_rows:
                return
            self._block_offsets.append(len(payload))
            payload.extend(writer.to_bytes())
            block_rows.clear()
            block_depths.clear()
            writer = BitWriter()

        for new_page in range(self._num_pages):
            old_page = self._new_to_old[new_page]
            row = sorted(
                self._old_to_new[int(t)] for t in graph.successors(old_page)
            )
            self._row_bit_offsets.append(len(writer))
            used_offset = self._encode_row(writer, new_page, row, block_rows, block_depths)
            block_rows.append(row)
            block_depths.append(
                0 if used_offset == 0 else block_depths[len(block_rows) - 1 - used_offset] + 1
            )
            if len(block_rows) == self._rows_per_block:
                flush()
        flush()
        self._block_offsets.append(len(payload))
        # One CRC32 per block — the unit of disk transfer is the unit of
        # verification, checked every time a block misses the cache.
        self._block_checksums = [
            integrity.crc32(bytes(payload[start:end]))
            for start, end in zip(self._block_offsets, self._block_offsets[1:])
        ]
        with BuildTransaction(self._root) as transaction:
            transaction.write_file(self._payload_path.name, bytes(payload))
            transaction.write_file(
                self._sidecar_path.name,
                integrity.encode_page_checksums(self._block_checksums),
            )
            transaction.write_manifest(
                {
                    "scheme": self.name,
                    "num_pages": self._num_pages,
                    "num_edges": self._num_edges,
                    "rows_per_block": self._rows_per_block,
                }
            )
            transaction.commit()

    def _encode_row(
        self,
        writer: BitWriter,
        source: int,
        row: list[int],
        block_rows: list[list[int]],
        block_depths: list[int],
    ) -> int:
        """Pick the cheapest of plain or window-referenced encodings.

        Returns the reference offset used (0 = plain) so the caller can
        track chain depths; rows whose chain would exceed the configured
        maximum are not eligible as references.
        """
        best_cost = None
        best_choice: tuple[int, list[int], list[int]] | None = None
        probe = BitWriter()
        _encode_plain(probe, source, row)
        best_cost = len(probe)
        start = max(0, len(block_rows) - self._window)
        for index in range(start, len(block_rows)):
            reference = block_rows[index]
            if not reference:
                continue
            if block_depths[index] + 1 > self._max_chain:
                continue
            offset = len(block_rows) - index  # 1..window
            deletions, additions = delta_against(reference, row)
            probe = BitWriter()
            encode_nibble(probe, offset)
            encode_delta_row(probe, source, deletions, additions)
            cost = len(probe)
            if cost < best_cost:
                best_cost = cost
                best_choice = (offset, deletions, additions)
        if best_choice is None:
            encode_nibble(writer, 0)
            _encode_plain(writer, source, row)
            return 0
        offset, deletions, additions = best_choice
        encode_nibble(writer, offset)
        encode_delta_row(writer, source, deletions, additions)
        return offset

    # -- block decode ------------------------------------------------------------

    def _load_block_bytes(self, block: int) -> bytes:
        """Raw block payload via the buffer cache (unit of disk transfer)."""
        start = self._block_offsets[block]
        end = self._block_offsets[block + 1]

        def load() -> bytes:
            data = self._file.read_at(start, end - start)
            actual = integrity.crc32(data)
            if actual != self._block_checksums[block]:
                raise CorruptionError(
                    f"{self._payload_path.name}: block {block} checksum "
                    f"mismatch (stored {self._block_checksums[block]:#010x}, "
                    f"read {actual:#010x})"
                )
            return data

        return self._pool.get_or_load(block, load, kind="block")

    # -- public access ------------------------------------------------------------

    def _decode_row_chain(
        self, block: int, data: bytes, position: int, memo: dict[int, list[int]]
    ) -> list[int]:
        """Decode row ``position`` of a block, resolving references via the
        per-node start offsets (no whole-block decode)."""
        cached = memo.get(position)
        if cached is not None:
            return cached
        source = block * self._rows_per_block + position
        reader = BitReader(data, start_bit=self._row_bit_offsets[source])
        offset = decode_nibble(reader)
        if offset == 0:
            row = _decode_plain(reader, source)
        else:
            reference = self._decode_row_chain(block, data, position - offset, memo)
            deletions, additions = decode_delta_row(reader, source, reference)
            row = apply_delta(reference, deletions, additions)
        memo[position] = row
        return row

    def out_neighbors(self, page: int) -> list[int]:
        if not 0 <= page < self._num_pages:
            raise GraphError(f"page {page} out of range")
        new_page = self._old_to_new[page]
        block, position = divmod(new_page, self._rows_per_block)
        row = self._decode_row_chain(block, self._load_block_bytes(block), position, {})
        return sorted(self._new_to_old[t] for t in row)

    def iterate_all(self) -> Iterator[tuple[int, list[int]]]:
        for block in range(len(self._block_offsets) - 1):
            data = self._load_block_bytes(block)
            first_page = block * self._rows_per_block
            count = min(self._rows_per_block, self._num_pages - first_page)
            memo: dict[int, list[int]] = {}
            for position in range(count):
                row = self._decode_row_chain(block, data, position, memo)
                old = self._new_to_old[first_page + position]
                yield old, sorted(self._new_to_old[t] for t in row)

    def size_bytes(self) -> int:
        """Payload + block directory + per-node starts + block checksums.

        The starts array is what the Link Database's published bits/link
        figures include for random access, so we include ours too; the
        per-block CRC sidecar is part of the stored representation.
        """
        from repro.util.varint import delta_cost

        payload = self._payload_path.stat().st_size
        payload += self._sidecar_path.stat().st_size
        directory = 8 * len(self._block_offsets)
        starts_bits = 0
        previous_offset = 0
        previous_block = 0
        for source, offset in enumerate(self._row_bit_offsets):
            block = source // self._rows_per_block
            if block != previous_block:
                previous_offset = 0
                previous_block = block
            starts_bits += delta_cost(offset - previous_offset)
            previous_offset = offset
        return payload + directory + (starts_bits + 7) // 8

    @property
    def num_pages(self) -> int:
        return self._num_pages

    @property
    def num_edges(self) -> int:
        return self._num_edges

    def drop_caches(self) -> None:
        self._pool.clear(record=False)
        self._file.forget_position()

    def set_buffer_bytes(self, buffer_bytes: int) -> None:
        """Reconfigure the block cache budget."""
        self._pool.set_buffer_bytes(buffer_bytes)
        self._file.forget_position()

    def buffer_stats(self) -> dict[str, int]:
        """Block-cache counters."""
        return self._pool.stats()

    def close(self) -> None:
        self._file.close()
