"""The "Plain Huffman" representation (paper section 4).

Pages with high in-degree appear most often inside adjacency lists, so
they get the shortest codes; each adjacency list is stored as a gamma-coded
degree followed by the Huffman codes of its targets.  A per-page bit-offset
directory (delta-coded in its serialized form) provides random access.

This is the same scheme the paper uses to compress the supernode graph —
here applied to the whole Web graph as the baseline it is compared with.
The paper evaluates it purely in memory (Tables 1 and 2); this class keeps
the encoded stream in memory accordingly.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.baselines.base import GraphRepresentation
from repro.errors import GraphError
from repro.graph.digraph import Digraph
from repro.util.bitio import BitReader, BitWriter
from repro.util.huffman import HuffmanCodec
from repro.util.varint import decode_gamma, delta_cost, encode_gamma


class HuffmanRepresentation(GraphRepresentation):
    """In-memory Huffman-coded adjacency lists with in-degree codes."""

    name = "plain-huffman"

    def __init__(self, graph: Digraph) -> None:
        n = graph.num_vertices
        frequencies = {page: 0 for page in range(n)}
        for target in graph.targets:
            frequencies[int(target)] += 1
        self._codec = HuffmanCodec.from_frequencies(frequencies) if n else None
        writer = BitWriter()
        offsets: list[int] = []
        for page in range(n):
            offsets.append(len(writer))
            row = graph.successors(page)
            encode_gamma(writer, len(row))
            for target in row:
                self._codec.encode_symbol(writer, int(target))
        offsets.append(len(writer))
        self._payload = writer.to_bytes()
        self._offsets = offsets
        self._num_pages = n
        self._num_edges = graph.num_edges
        # Code-table size: the canonical lengths serialization.
        table_writer = BitWriter()
        if self._codec is not None:
            self._codec.serialize_lengths(table_writer)
        self._table_bits = len(table_writer)

    # -- access -----------------------------------------------------------

    def out_neighbors(self, page: int) -> list[int]:
        if not 0 <= page < self._num_pages:
            raise GraphError(f"page {page} out of range")
        reader = BitReader(self._payload, start_bit=self._offsets[page])
        degree = decode_gamma(reader)
        row = [self._codec.decode_symbol(reader) for _ in range(degree)]
        row.sort()
        return row

    def iterate_all(self) -> Iterator[tuple[int, list[int]]]:
        reader = BitReader(self._payload)
        for page in range(self._num_pages):
            degree = decode_gamma(reader)
            row = [self._codec.decode_symbol(reader) for _ in range(degree)]
            row.sort()
            yield page, row

    # -- size accounting -----------------------------------------------------

    def size_bytes(self) -> int:
        """Payload + code table + delta-coded offset directory."""
        offset_bits = 0
        previous = 0
        for offset in self._offsets[1:]:
            offset_bits += delta_cost(offset - previous)
            previous = offset
        total_bits = len(self._payload) * 8 + self._table_bits + offset_bits
        return (total_bits + 7) // 8

    @property
    def num_pages(self) -> int:
        return self._num_pages

    @property
    def num_edges(self) -> int:
        return self._num_edges
